//! Machine-readable diagnostics: every finding carries a lint id, a
//! severity, and a `file:line` location. Deny-level findings gate the
//! build (the binary exits non-zero); warn-level findings inform.

use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Informational: reported, never gates.
    Warn,
    /// A violated invariant: the analyzer exits non-zero unless the site
    /// is allowlisted with a justification.
    Deny,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Warn => write!(f, "warn"),
            Level::Deny => write!(f, "deny"),
        }
    }
}

/// One finding at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint identifier (e.g. `panic-free-hot-path`).
    pub lint: &'static str,
    /// Severity.
    pub level: Level,
    /// Path relative to the analysis root, forward slashes.
    pub file: String,
    /// 1-based line (0 for file-level findings such as a missing file).
    pub line: usize,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl Diagnostic {
    /// Renders the canonical single-line form:
    /// `file:line: level [lint] message`.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} [{}] {}",
            self.file, self.line, self.level, self.lint, self.message
        )
    }

    /// Renders the finding as one JSON object (hand-rolled — the analyzer
    /// is dependency-free) for `--json` consumers.
    #[must_use]
    pub fn render_json(&self) -> String {
        format!(
            "{{\"lint\":\"{}\",\"level\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape_json(self.lint),
            self.level,
            escape_json(&self.file),
            self.line,
            escape_json(&self.message)
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_grep_friendly() {
        let d = Diagnostic {
            lint: "unsafe-confinement",
            level: Level::Deny,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            message: "`unsafe` outside the ISA kernel modules".into(),
        };
        assert_eq!(
            d.render(),
            "crates/x/src/lib.rs:7: deny [unsafe-confinement] `unsafe` outside the ISA kernel modules"
        );
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic {
            lint: "x",
            level: Level::Warn,
            file: "a.rs".into(),
            line: 1,
            message: "say \"hi\"\nline2".into(),
        };
        assert!(d.render_json().contains("say \\\"hi\\\"\\nline2"));
    }
}
