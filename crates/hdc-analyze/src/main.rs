//! The `hdc-analyze` binary: runs every workspace lint and exits
//! non-zero when a deny-level finding survives `analyze.allow`.
//!
//! ```text
//! cargo run -p hdc-analyze [-- --root <dir>] [--json]
//! ```
//!
//! * `--root <dir>` — analysis root (default: the nearest ancestor of the
//!   current directory containing `Cargo.toml`).
//! * `--json` — emit one JSON object per finding instead of the
//!   `file:line: level [lint] message` text form.
//!
//! Exit codes: `0` clean, `1` deny findings remain, `2` usage or I/O
//! error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use hdc_analyze::analyze;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root requires a directory argument"),
            },
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: hdc-analyze [--root <dir>] [--json]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.or_else(default_root) {
        Some(root) => root,
        None => return usage("no Cargo.toml in any ancestor; pass --root"),
    };

    let report = match analyze(&root) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("hdc-analyze: {message}");
            return ExitCode::from(2);
        }
    };
    for diag in &report.diags {
        if json {
            println!("{}", diag.render_json());
        } else {
            println!("{}", diag.render());
        }
    }
    let deny = report.deny_count();
    let warn = report.diags.len() - deny;
    eprintln!(
        "hdc-analyze: {deny} deny, {warn} warn, {} suppressed by analyze.allow",
        report.suppressed
    );
    if deny > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("hdc-analyze: {message}");
    eprintln!("usage: hdc-analyze [--root <dir>] [--json]");
    ExitCode::from(2)
}

/// The analysis root when `--root` is absent: the outermost ancestor of
/// the current directory whose `Cargo.toml` declares `[workspace]`,
/// falling back to the nearest ancestor with any `Cargo.toml` — so
/// `cargo run -p hdc-analyze` analyzes the whole workspace no matter
/// which crate directory it is invoked from.
fn default_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    let mut nearest_manifest = None;
    let mut workspace_root = None;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            nearest_manifest.get_or_insert_with(|| dir.clone());
            if std::fs::read_to_string(&manifest).is_ok_and(|t| t.contains("[workspace]")) {
                workspace_root = Some(dir.clone());
            }
        }
        if !dir.pop() {
            return workspace_root.or(nearest_manifest);
        }
    }
}
