//! Workspace-native static analysis for the HDC serving stack.
//!
//! `hdc-analyze` is a dependency-free linter that enforces the
//! project-specific invariants the Rust compiler cannot see: `unsafe`
//! confinement to the ISA kernel modules, panic-free serving/durability
//! hot paths, wire-opcode exhaustiveness across encoder + decoder +
//! round-trip test, lock-vs-I/O discipline in the storage crate,
//! `HdcError` variant coverage, bench-result provenance, and crate-root
//! lint hygiene. See [`lints`] for the catalogue.
//!
//! It hand-rolls a small Rust [`lexer`] (strings, raw strings, nested
//! comments, lifetimes) and a `#[cfg(test)]`-aware [`workspace`] walker
//! instead of pulling in `syn`: the analyzer must keep building even
//! while the dependency tree itself is being audited, and the lints only
//! need token streams, not full ASTs.
//!
//! Suppressions live in `analyze.allow` at the workspace root; every
//! entry carries a mandatory written justification and unmatched entries
//! are themselves reported (see [`allow`]).
//!
//! Run it as `cargo run -p hdc-analyze`; the binary exits non-zero when
//! any deny-level finding survives the allowlist, which is what the CI
//! `analyze` job and the tier-1 `analyzer_clean` test assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod workspace;

use std::fs;
use std::path::Path;

use allow::AllowList;
use diag::{Diagnostic, Level};
use workspace::Workspace;

/// The outcome of one analysis run.
#[derive(Debug)]
pub struct Report {
    /// Surviving findings (allowlist applied), plus `stale-allow` /
    /// `allow-parse` meta-findings, sorted by location.
    pub diags: Vec<Diagnostic>,
    /// How many findings `analyze.allow` suppressed.
    pub suppressed: usize,
}

impl Report {
    /// Number of deny-level findings — the build gate.
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.diags.iter().filter(|d| d.level == Level::Deny).count()
    }
}

/// Loads the workspace at `root`, runs every lint, and applies the
/// `analyze.allow` suppressions found at the root (if any).
///
/// # Errors
///
/// Returns a human-readable message when the root is not a readable
/// directory.
pub fn analyze(root: &Path) -> Result<Report, String> {
    let ws = Workspace::load(root)?;
    let raw = lints::run_all(&ws);
    let allow_path = root.join("analyze.allow");
    let allow = match fs::read_to_string(&allow_path) {
        Ok(contents) => AllowList::parse(&contents, "analyze.allow"),
        Err(_) => AllowList::default(),
    };

    let mut used = vec![false; allow.entries.len()];
    let mut suppressed = 0usize;
    let mut diags = Vec::new();
    for diag in raw {
        let line_text = ws.file(&diag.file).map_or("", |f| f.line_text(diag.line));
        match allow
            .entries
            .iter()
            .position(|e| AllowList::matches(e, &diag, line_text))
        {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => diags.push(diag),
        }
    }
    diags.extend(allow.errors);
    for (entry, used) in allow.entries.iter().zip(used) {
        if !used {
            diags.push(Diagnostic {
                lint: "stale-allow",
                level: Level::Warn,
                file: "analyze.allow".to_string(),
                line: entry.source_line,
                message: format!(
                    "entry for `{}` in {} ({}) matched no finding; remove it",
                    entry.lint, entry.file, entry.site
                ),
            });
        }
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(Report { diags, suppressed })
}
