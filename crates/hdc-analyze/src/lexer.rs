//! A lightweight Rust lexer: just enough token structure for invariant
//! linting. Comments and string/char literal *contents* never produce
//! identifier tokens, so a lint matching the `unsafe` keyword cannot be
//! fooled by `// unsafe` or `"unsafe"`. Not a full grammar — no keyword
//! classification, no token trees — the lints work on flat token streams
//! with line numbers.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `unwrap`, `HdcError`, …).
    Ident,
    /// A single punctuation character (`.`, `!`, `{`, …). Multi-character
    /// operators arrive as consecutive punct tokens (`::` is `:`, `:`).
    Punct,
    /// A string literal (regular, raw, byte or raw-byte); `text` is the
    /// literal's *contents* without quotes or hashes.
    Str,
    /// A character or byte literal (contents, unescaped).
    Char,
    /// A numeric literal (integer or float, any base).
    Num,
    /// A lifetime (`'a`, `'static`); `text` excludes the leading quote.
    Lifetime,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The lexeme text (see the per-kind notes on [`TokKind`]).
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: usize,
}

impl Token {
    /// `true` if this token is the identifier `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// `true` if this token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a flat token stream, skipping whitespace and comments
/// (line, block — including nested — and doc comments). Malformed input
/// (an unterminated string, say) never panics: the lexer consumes to end
/// of input and returns what it saw.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line: usize = 1;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                let mut depth = 1;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let (text, next) = lex_string(&chars, i + 1, &mut line);
                tokens.push(Token {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
                i = next;
            }
            'r' | 'b' if starts_raw_or_byte(&chars, i) => {
                let start_line = line;
                let (kind, text, next) = lex_prefixed_literal(&chars, i, &mut line);
                tokens.push(Token {
                    kind,
                    text,
                    line: start_line,
                });
                i = next;
            }
            '\'' => {
                let start_line = line;
                let (kind, text, next) = lex_quote(&chars, i + 1, &mut line);
                tokens.push(Token {
                    kind,
                    text,
                    line: start_line,
                });
                i = next;
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < chars.len() {
                    let d = chars[i];
                    if is_ident_continue(d) {
                        i += 1;
                    } else if d == '.'
                        && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        && chars.get(i.wrapping_sub(1)) != Some(&'.')
                    {
                        // `1.5` continues the number; `0..10` and
                        // `x.0.unwrap()` do not.
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            _ => {
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    tokens
}

/// `true` if position `i` starts `r"`, `r#`, `b"`, `b'`, `br"` or `br#` —
/// i.e. a raw/byte literal rather than an identifier beginning with `r`
/// or `b`.
fn starts_raw_or_byte(chars: &[char], i: usize) -> bool {
    match chars[i] {
        'r' => {
            matches!(chars.get(i + 1), Some('"') | Some('#'))
                && raw_hashes_lead_to_quote(chars, i + 1)
        }
        'b' => match chars.get(i + 1) {
            Some('"') | Some('\'') => true,
            Some('r') => {
                matches!(chars.get(i + 2), Some('"') | Some('#'))
                    && raw_hashes_lead_to_quote(chars, i + 2)
            }
            _ => false,
        },
        _ => false,
    }
}

/// From a position at `"` or the first `#`, checks the hash run ends in
/// `"` (distinguishes `r#"…"#` from the raw identifier `r#match`).
fn raw_hashes_lead_to_quote(chars: &[char], mut i: usize) -> bool {
    while chars.get(i) == Some(&'#') {
        i += 1;
    }
    chars.get(i) == Some(&'"')
}

/// Lexes a regular string body starting just past the opening quote.
fn lex_string(chars: &[char], mut i: usize, line: &mut usize) -> (String, usize) {
    let mut text = String::new();
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // Keep escapes opaque; the contents only matter for
                // snippet matching, never for token identity.
                if let Some(&next) = chars.get(i + 1) {
                    text.push(next);
                    if next == '\n' {
                        *line += 1;
                    }
                }
                i += 2;
            }
            '"' => return (text, i + 1),
            c => {
                if c == '\n' {
                    *line += 1;
                }
                text.push(c);
                i += 1;
            }
        }
    }
    (text, i)
}

/// Lexes `r…`, `b…` and `br…` literals starting at the prefix.
fn lex_prefixed_literal(chars: &[char], i: usize, line: &mut usize) -> (TokKind, String, usize) {
    let mut j = i;
    let mut raw = false;
    while matches!(chars.get(j), Some('r') | Some('b')) {
        raw |= chars[j] == 'r';
        j += 1;
    }
    if chars.get(j) == Some(&'\'') {
        let (kind, text, next) = lex_quote(chars, j + 1, line);
        return (kind, text, next);
    }
    if !raw {
        let (text, next) = lex_string(chars, j + 1, line);
        return (TokKind::Str, text, next);
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let start = j;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (TokKind::Str, chars[start..j].iter().collect(), k);
            }
        }
        j += 1;
    }
    (TokKind::Str, chars[start..j].iter().collect(), j)
}

/// Lexes what follows a single quote: a lifetime or a char literal.
fn lex_quote(chars: &[char], i: usize, line: &mut usize) -> (TokKind, String, usize) {
    match chars.get(i) {
        Some('\\') => {
            // Escaped char literal: consume to the closing quote.
            let mut j = i;
            let mut text = String::new();
            while j < chars.len() {
                if chars[j] == '\\' {
                    if let Some(&next) = chars.get(j + 1) {
                        text.push(next);
                    }
                    j += 2;
                } else if chars[j] == '\'' {
                    return (TokKind::Char, text, j + 1);
                } else {
                    if chars[j] == '\n' {
                        *line += 1;
                    }
                    text.push(chars[j]);
                    j += 1;
                }
            }
            (TokKind::Char, text, j)
        }
        Some(&c) if is_ident_start(c) && chars.get(i + 1) != Some(&'\'') => {
            // Lifetime: `'a`, `'static`, `'_`.
            let mut j = i;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            (TokKind::Lifetime, chars[i..j].iter().collect(), j)
        }
        Some(&c) => {
            // Plain char literal `'x'`.
            let close = if chars.get(i + 1) == Some(&'\'') {
                i + 2
            } else {
                i + 1
            };
            (TokKind::Char, c.to_string(), close)
        }
        None => (TokKind::Char, String::new(), i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_identifiers() {
        let src = r##"
            // unsafe in a line comment
            /* unsafe /* nested unsafe */ still a comment */
            let x = "unsafe in a string";
            let y = r#"unsafe in a raw string"#;
            let z = b"unsafe bytes";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }

    #[test]
    fn escaped_chars_and_quotes() {
        let toks = lex("let q = '\\''; let s = \"a\\\"b\";");
        assert!(toks.iter().any(|t| t.kind == TokKind::Char));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "a\"b"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "line1();\n/* block\nspanning\nlines */\nline5();";
        let toks = lex(src);
        let line5 = toks.iter().find(|t| t.is_ident("line5")).unwrap();
        assert_eq!(line5.line, 5);
    }

    #[test]
    fn numbers_stop_before_method_calls_and_ranges() {
        let ids = idents("x.0.unwrap(); for i in 0..10 {}");
        assert!(ids.contains(&"unwrap".to_string()));
        let toks = lex("let f = 1.5e3; let h = 0xFF;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5e3"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "0xFF"));
    }

    #[test]
    fn raw_identifiers_do_not_start_raw_strings() {
        // `r#match` is a raw identifier, not an unterminated raw string.
        let toks = lex("let r#match = 1; let s = r#\"text\"#;");
        assert!(toks.iter().any(|t| t.is_ident("match")));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "text"));
    }
}
