//! Workspace discovery and per-file preprocessing: walks the repository
//! tree for Rust sources and bench-result JSON, lexes each source file,
//! and marks the token spans that live under `#[cfg(test)]` so lints can
//! restrict themselves to shipping code.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};

/// Directory names the walker never descends into: build output, vendored
/// dependency stand-ins (not workspace code), VCS metadata, and the
/// analyzer's own known-violation fixture trees.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// One lexed Rust source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analysis root, with forward slashes.
    pub rel: String,
    /// The raw source text.
    pub text: String,
    /// The flat token stream (see [`crate::lexer`]).
    pub tokens: Vec<Token>,
    /// `in_test[i]` is `true` when `tokens[i]` is inside a
    /// `#[cfg(test)]` item (or a file under an inner `#![cfg(test)]`).
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// The 1-based source line's text, or `""` past end of file.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        self.text.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

/// The loaded analysis subject: every Rust source plus the bench-result
/// JSON files under `results/`.
#[derive(Debug)]
pub struct Workspace {
    /// The analysis root (usually the repository root).
    pub root: PathBuf,
    /// Every `.rs` file found, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// `(relative path, contents)` of every `results/BENCH_*.json`.
    pub bench_jsons: Vec<(String, String)>,
}

impl Workspace {
    /// Walks `root` and loads every analyzable file.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the root is unreadable;
    /// individual unreadable files are skipped (they cannot hold
    /// violations the compiler would accept either).
    pub fn load(root: &Path) -> Result<Self, String> {
        if !root.is_dir() {
            return Err(format!(
                "analysis root {} is not a directory",
                root.display()
            ));
        }
        let mut rs_paths = Vec::new();
        walk(root, root, &mut rs_paths)?;
        rs_paths.sort();
        let mut files = Vec::with_capacity(rs_paths.len());
        for rel in rs_paths {
            let Ok(text) = fs::read_to_string(root.join(&rel)) else {
                continue;
            };
            let tokens = lex(&text);
            let in_test = test_regions(&tokens);
            files.push(SourceFile {
                rel,
                text,
                tokens,
                in_test,
            });
        }
        let mut bench_jsons = Vec::new();
        let results = root.join("results");
        if let Ok(entries) = fs::read_dir(&results) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.starts_with("BENCH_") && name.ends_with(".json") {
                    if let Ok(contents) = fs::read_to_string(entry.path()) {
                        bench_jsons.push((format!("results/{name}"), contents));
                    }
                }
            }
        }
        bench_jsons.sort();
        Ok(Self {
            root: root.to_path_buf(),
            files,
            bench_jsons,
        })
    }

    /// The file at exactly this relative path, if it was loaded.
    #[must_use]
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Recursively collects relative `.rs` paths, skipping [`SKIP_DIRS`].
fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("reading directory {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel_string(rel));
            }
        }
    }
    Ok(())
}

fn rel_string(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Marks the token spans that are test-only: items annotated
/// `#[cfg(test)]` (the attribute, any stacked attributes after it, and
/// the item body through its matching brace or terminating semicolon),
/// and everything after an inner `#![cfg(test)]`.
#[must_use]
pub fn test_regions(tokens: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        let inner = tokens.get(j).is_some_and(|t| t.is_punct('!'));
        if inner {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let close = match matching_bracket(tokens, j) {
            Some(close) => close,
            None => break,
        };
        let is_cfg_test = attr_mentions_cfg_test(&tokens[j..=close]);
        if !is_cfg_test {
            i = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the rest of the enclosing scope — for our
            // purposes, the rest of the file — is test-only.
            for flag in in_test.iter_mut().skip(attr_start) {
                *flag = true;
            }
            return in_test;
        }
        let end = item_end(tokens, close + 1).unwrap_or(tokens.len() - 1);
        for flag in in_test.iter_mut().take(end + 1).skip(attr_start) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// `true` when an attribute token span (from `[` to `]`) contains both
/// `cfg` and `test` identifiers — covers `#[cfg(test)]` and compositions
/// like `#[cfg(all(test, feature = "x"))]`.
fn attr_mentions_cfg_test(span: &[Token]) -> bool {
    let has = |name: &str| span.iter().any(|t| t.is_ident(name));
    has("cfg") && has("test")
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, token) in tokens.iter().enumerate().skip(open) {
        if token.is_punct('[') {
            depth += 1;
        } else if token.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Finds the end of the item starting at `start` (just past a
/// `#[cfg(test)]` attribute): skips stacked attributes, then runs to the
/// matching `}` of the first body brace, or to a `;` at bracket depth
/// zero for body-less items (`mod tests;`).
fn item_end(tokens: &[Token], mut start: usize) -> Option<usize> {
    // Skip any further attributes stacked on the same item.
    while tokens.get(start).is_some_and(|t| t.is_punct('#')) {
        let open = start + 1;
        if !tokens.get(open).is_some_and(|t| t.is_punct('[')) {
            break;
        }
        start = matching_bracket(tokens, open)? + 1;
    }
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut bracket = 0i32;
    for (k, token) in tokens.iter().enumerate().skip(start) {
        if token.kind != TokKind::Punct {
            continue;
        }
        match token.text.as_bytes().first() {
            Some(b'{') => brace += 1,
            Some(b'}') => {
                brace -= 1;
                if brace == 0 {
                    return Some(k);
                }
            }
            Some(b'(') => paren += 1,
            Some(b')') => paren -= 1,
            Some(b'[') => bracket += 1,
            Some(b']') => bracket -= 1,
            Some(b';') if brace == 0 && paren == 0 && bracket == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(src: &str) -> Vec<(String, bool)> {
        let tokens = lex(src);
        let in_test = test_regions(&tokens);
        tokens
            .into_iter()
            .zip(in_test)
            .filter(|(t, _)| t.kind == TokKind::Ident)
            .map(|(t, f)| (t.text, f))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn shipping() {}\n#[cfg(test)]\nmod tests {\n fn inner() { helper(); }\n}\nfn also_shipping() {}";
        let f = flags(src);
        let get = |name: &str| f.iter().find(|(t, _)| t == name).unwrap().1;
        assert!(!get("shipping"));
        assert!(get("inner"));
        assert!(get("helper"));
        assert!(!get("also_shipping"));
    }

    #[test]
    fn stacked_attributes_stay_inside_the_test_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn test_only() { x(); }\nfn live() {}";
        let f = flags(src);
        assert!(f.iter().find(|(t, _)| t == "x").unwrap().1);
        assert!(!f.iter().find(|(t, _)| t == "live").unwrap().1);
    }

    #[test]
    fn inner_cfg_test_marks_the_rest_of_the_file() {
        let src = "#![cfg(test)]\nfn everything() { here(); }";
        let f = flags(src);
        assert!(f.iter().all(|(_, in_test)| *in_test));
    }

    #[test]
    fn semicolon_items_and_array_types_terminate_correctly() {
        let src = "#[cfg(test)]\nmod tests;\nfn live(x: [u8; 4]) { real(); }";
        let f = flags(src);
        assert!(!f.iter().find(|(t, _)| t == "real").unwrap().1);
    }

    #[test]
    fn non_test_attributes_do_not_mark() {
        let src = "#[derive(Debug)]\nstruct S { field: u8 }";
        let f = flags(src);
        assert!(f.iter().all(|(_, in_test)| !*in_test));
    }
}
