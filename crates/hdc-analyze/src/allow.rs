//! The `analyze.allow` file: per-site suppressions, each carrying a
//! written justification. A deny-level finding matching an entry is
//! suppressed; entries that match nothing are reported as `stale-allow`
//! warnings so dead suppressions cannot accumulate silently.
//!
//! # Format
//!
//! One entry per line; blank lines and `#` comments are ignored:
//!
//! ```text
//! <lint-id> <path>[:<line>] -- <justification>
//! <lint-id> <path> "<snippet>" -- <justification>
//! ```
//!
//! * `lint-id path -- why` suppresses every finding of that lint in the
//!   file (use sparingly).
//! * `lint-id path:17 -- why` suppresses line 17 exactly (brittle across
//!   edits; prefer snippets).
//! * `lint-id path "never poisons" -- why` suppresses findings on any
//!   line whose source text contains the snippet — the recommended form:
//!   it names the invariant and survives unrelated edits.
//!
//! The justification is mandatory: an entry without ` -- reason` is
//! itself a deny-level `allow-parse` finding.

use std::fmt;

use crate::diag::{Diagnostic, Level};

/// Where an entry applies within its file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Site {
    /// Every finding in the file.
    WholeFile,
    /// Exactly this 1-based line.
    Line(usize),
    /// Any line whose source text contains this snippet.
    Snippet(String),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::WholeFile => write!(f, "whole file"),
            Site::Line(n) => write!(f, "line {n}"),
            Site::Snippet(s) => write!(f, "snippet \"{s}\""),
        }
    }
}

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// The lint this entry suppresses.
    pub lint: String,
    /// Path relative to the analysis root.
    pub file: String,
    /// Which sites in the file it covers.
    pub site: Site,
    /// The mandatory written justification.
    pub reason: String,
    /// 1-based line in `analyze.allow` (for stale-entry reporting).
    pub source_line: usize,
}

/// The parsed allowlist plus any parse failures (reported as deny-level
/// findings — a malformed suppression must not silently suppress
/// nothing).
#[derive(Debug, Default)]
pub struct AllowList {
    /// Every well-formed entry.
    pub entries: Vec<AllowEntry>,
    /// Parse failures as ready-to-report diagnostics.
    pub errors: Vec<Diagnostic>,
}

impl AllowList {
    /// Parses the contents of an `analyze.allow` file. `origin` is the
    /// path diagnostics should cite (usually `analyze.allow`).
    #[must_use]
    pub fn parse(contents: &str, origin: &str) -> Self {
        let mut list = AllowList::default();
        for (index, raw) in contents.lines().enumerate() {
            let line_no = index + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_entry(line, line_no) {
                Ok(entry) => list.entries.push(entry),
                Err(message) => list.errors.push(Diagnostic {
                    lint: "allow-parse",
                    level: Level::Deny,
                    file: origin.to_string(),
                    line: line_no,
                    message,
                }),
            }
        }
        list
    }

    /// `true` if `entry` covers the diagnostic at `(file, line)` whose
    /// source line reads `line_text`.
    #[must_use]
    pub fn matches(entry: &AllowEntry, diag: &Diagnostic, line_text: &str) -> bool {
        if entry.lint != diag.lint || entry.file != diag.file {
            return false;
        }
        match &entry.site {
            Site::WholeFile => true,
            Site::Line(n) => *n == diag.line,
            Site::Snippet(s) => line_text.contains(s.as_str()),
        }
    }
}

fn parse_entry(line: &str, source_line: usize) -> Result<AllowEntry, String> {
    let (spec, reason) = line
        .split_once(" -- ")
        .ok_or_else(|| "missing ` -- justification` separator".to_string())?;
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty justification after ` -- `".to_string());
    }
    let spec = spec.trim();
    let (lint, rest) = spec
        .split_once(char::is_whitespace)
        .ok_or_else(|| "expected `<lint-id> <path>` before ` -- `".to_string())?;
    let rest = rest.trim();
    // Optional trailing snippet: `path "snippet"`.
    let (path_part, site) = if let Some(quote_at) = rest.find(" \"") {
        let (path, quoted) = rest.split_at(quote_at);
        let snippet = quoted
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| "unterminated snippet quote".to_string())?;
        if snippet.is_empty() {
            return Err("empty snippet".to_string());
        }
        (path.trim(), Site::Snippet(snippet.to_string()))
    } else {
        // Optional `:line` suffix. A Windows-style `C:` prefix is not a
        // concern: paths are workspace-relative with forward slashes.
        match rest.rsplit_once(':') {
            Some((path, digits))
                if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) =>
            {
                let n: usize = digits
                    .parse()
                    .map_err(|_| format!("line number `{digits}` out of range"))?;
                (path, Site::Line(n))
            }
            _ => (rest, Site::WholeFile),
        }
    };
    if path_part.is_empty() {
        return Err("empty path".to_string());
    }
    Ok(AllowEntry {
        lint: lint.to_string(),
        file: path_part.to_string(),
        site,
        reason: reason.to_string(),
        source_line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &'static str, file: &str, line: usize) -> Diagnostic {
        Diagnostic {
            lint,
            level: Level::Deny,
            file: file.into(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn parses_all_three_site_forms() {
        let src = "\
# comment
panic-free-hot-path crates/a.rs -- whole file is exempt
panic-free-hot-path crates/b.rs:17 -- line form
lock-across-io crates/c.rs \"guard held\" -- snippet form
";
        let list = AllowList::parse(src, "analyze.allow");
        assert!(list.errors.is_empty());
        assert_eq!(list.entries.len(), 3);
        assert_eq!(list.entries[0].site, Site::WholeFile);
        assert_eq!(list.entries[1].site, Site::Line(17));
        assert_eq!(list.entries[2].site, Site::Snippet("guard held".into()));
        assert_eq!(list.entries[2].source_line, 4);
    }

    #[test]
    fn missing_reason_is_a_parse_error() {
        let list = AllowList::parse("panic-free-hot-path crates/a.rs:3", "analyze.allow");
        assert!(list.entries.is_empty());
        assert_eq!(list.errors.len(), 1);
        assert_eq!(list.errors[0].lint, "allow-parse");
    }

    #[test]
    fn matching_respects_site_kinds() {
        let list = AllowList::parse(
            "x a.rs:5 -- why\nx a.rs \"expect(\" -- why\nx b.rs -- why",
            "analyze.allow",
        );
        let d5 = diag("x", "a.rs", 5);
        let d9 = diag("x", "a.rs", 9);
        assert!(AllowList::matches(&list.entries[0], &d5, "anything"));
        assert!(!AllowList::matches(&list.entries[0], &d9, "anything"));
        assert!(AllowList::matches(
            &list.entries[1],
            &d9,
            "  .expect(\"ok\")"
        ));
        assert!(!AllowList::matches(&list.entries[1], &d9, "  .unwrap()"));
        assert!(AllowList::matches(
            &list.entries[2],
            &diag("x", "b.rs", 1),
            ""
        ));
        assert!(!AllowList::matches(
            &list.entries[2],
            &diag("y", "b.rs", 1),
            ""
        ));
    }
}
