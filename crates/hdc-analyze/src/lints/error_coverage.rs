//! `error-variant-coverage`: every `HdcError` variant must be (a)
//! rendered by the `Display` impl and (b) actually used somewhere outside
//! its declaration file. A variant nobody constructs is dead API surface;
//! a variant `Display` forgets renders as nothing useful at the one
//! moment — an operator reading a log line — it exists for.

use crate::diag::{Diagnostic, Level};
use crate::lints::{fn_body_span, matching_brace};
use crate::workspace::{SourceFile, Workspace};

/// The file declaring the workspace error enum.
const ERROR_FILE: &str = "crates/hdc-core/src/error.rs";
/// The enum under audit.
const ENUM_NAME: &str = "HdcError";

/// Runs the lint when the workspace contains the error module.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(error_file) = ws.file(ERROR_FILE) else {
        return;
    };
    let variants = enum_variants(error_file, ENUM_NAME);
    if variants.is_empty() {
        return;
    }
    let display_span = display_impl_span(error_file, ENUM_NAME);
    for (variant, line) in &variants {
        let rendered = display_span.is_some_and(|(open, close)| {
            error_file.tokens[open..=close]
                .iter()
                .any(|t| t.is_ident(variant))
        });
        if !rendered {
            diags.push(Diagnostic {
                lint: "error-variant-coverage",
                level: Level::Deny,
                file: error_file.rel.clone(),
                line: *line,
                message: format!(
                    "variant `{ENUM_NAME}::{variant}` is not rendered by the \
                     `Display` impl; every error must print its cause"
                ),
            });
        }
        let constructed = ws
            .files
            .iter()
            .any(|file| file.rel != ERROR_FILE && references_variant(file, variant));
        if !constructed {
            diags.push(Diagnostic {
                lint: "error-variant-coverage",
                level: Level::Deny,
                file: error_file.rel.clone(),
                line: *line,
                message: format!(
                    "variant `{ENUM_NAME}::{variant}` is never used outside its \
                     declaration; wire it up or delete it"
                ),
            });
        }
    }
}

/// `(name, line)` of each variant of `enum name { .. }`.
fn enum_variants(file: &SourceFile, name: &str) -> Vec<(String, usize)> {
    let tokens = &file.tokens;
    let mut out = Vec::new();
    let Some(open) = tokens
        .windows(2)
        .position(|w| w[0].is_ident("enum") && w[1].is_ident(name))
    else {
        return out;
    };
    let Some(brace) = (open..tokens.len()).find(|&k| tokens[k].is_punct('{')) else {
        return out;
    };
    let Some(close) = matching_brace(tokens, brace) else {
        return out;
    };
    let mut depth = (0i32, 0i32, 0i32); // brace, paren, bracket beyond the enum's own
    let mut expecting = true;
    for token in &tokens[brace + 1..close] {
        if let Some(&b) = token.text.as_bytes().first() {
            match b {
                b'{' => depth.0 += 1,
                b'}' => depth.0 -= 1,
                b'(' => depth.1 += 1,
                b')' => depth.1 -= 1,
                b'[' => depth.2 += 1,
                b']' => depth.2 -= 1,
                _ => {}
            }
        }
        if depth != (0, 0, 0) {
            continue;
        }
        if token.is_punct(',') {
            expecting = true;
        } else if expecting && token.kind == crate::lexer::TokKind::Ident {
            out.push((token.text.clone(), token.line));
            expecting = false;
        }
    }
    out
}

/// Token span of `impl .. Display for <name> { .. }`, more precisely of
/// its `fmt` body when present (falls back to the whole impl block).
fn display_impl_span(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("Display") {
            continue;
        }
        // `impl fmt::Display for HdcError {`
        let found = (i + 1..tokens.len().min(i + 4)).any(|k| {
            tokens[k].is_ident("for") && tokens.get(k + 1).is_some_and(|t| t.is_ident(name))
        });
        if !found {
            continue;
        }
        let brace = (i..tokens.len()).find(|&k| tokens[k].is_punct('{'))?;
        let close = matching_brace(tokens, brace)?;
        return Some((brace, close));
    }
    // No dedicated impl header found: a derive-based Display (not used in
    // this workspace) would make the `fmt` body the right span.
    fn_body_span(file, "fmt")
}

/// `true` when the file mentions `HdcError::<variant>` (construction or
/// pattern match — both count as "used").
fn references_variant(file: &SourceFile, variant: &str) -> bool {
    let tokens = &file.tokens;
    tokens.iter().enumerate().any(|(i, t)| {
        t.is_ident(ENUM_NAME)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|t| t.is_ident(variant))
    })
}
