//! `unsafe-confinement`: the `unsafe` keyword may appear only in the ISA
//! kernel modules (`kernels/x86.rs`, `kernels/neon.rs`), where it wraps
//! intrinsics behind runtime CPU-feature detection. Everywhere else —
//! including test code — `unsafe` is a deny finding: the rest of the
//! workspace is supposed to stay `#![forbid(unsafe_code)]`-clean.

use crate::diag::{Diagnostic, Level};
use crate::workspace::Workspace;

/// File suffixes (relative-path endings) where `unsafe` is permitted.
const UNSAFE_ALLOWED_SUFFIXES: &[&str] = &["kernels/x86.rs", "kernels/neon.rs"];

/// Runs the lint over every loaded source file.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if UNSAFE_ALLOWED_SUFFIXES
            .iter()
            .any(|suffix| file.rel.ends_with(suffix))
        {
            continue;
        }
        // The analyzer's own lexer names the keyword in string fixtures;
        // the lexer already strips strings and comments, so any `unsafe`
        // token left is the real keyword.
        for token in file.tokens.iter().filter(|t| t.is_ident("unsafe")) {
            diags.push(Diagnostic {
                lint: "unsafe-confinement",
                level: Level::Deny,
                file: file.rel.clone(),
                line: token.line,
                message: "`unsafe` outside the ISA kernel modules (kernels/{x86,neon}.rs); \
                          keep intrinsics behind the dispatch boundary"
                    .to_string(),
            });
        }
    }
}
