//! `panic-free-hot-path`: the serving and durability hot paths must not
//! contain reachable panics in shipping code. A panic in the dispatcher
//! or the WAL flusher takes down the whole shard, so `unwrap`/`expect`
//! calls and `panic!`-family macros outside `#[cfg(test)]` regions are
//! deny findings. Sites whose panic-freedom rests on a real invariant
//! (e.g. fail-stop poisoning propagation) are allowlisted in
//! `analyze.allow` with the invariant written down.

use crate::diag::{Diagnostic, Level};
use crate::lints::is_method_call;
use crate::workspace::Workspace;

/// The hot-path files (workspace-relative). Request dispatch, WAL
/// append/replay, group-commit flushing, cluster fan-out, and the paged
/// item store.
const HOT_PATH_FILES: &[&str] = &[
    "crates/hdc-serve/src/runtime.rs",
    "crates/hdc-serve/src/cluster.rs",
    "crates/hdc-store/src/wal.rs",
    "crates/hdc-store/src/group_commit.rs",
    "crates/hdc-store/src/paged.rs",
];

/// Method calls that panic on the error/none path.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that panic unconditionally when reached.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the lint over the hot-path files.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for rel in HOT_PATH_FILES {
        let Some(file) = ws.file(rel) else { continue };
        for (i, token) in file.tokens.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let finding = if PANICKY_METHODS.iter().any(|m| token.is_ident(m))
                && is_method_call(&file.tokens, i)
            {
                Some(format!(
                    "`.{}()` on a hot path; return `HdcError` instead \
                     (or allowlist with the invariant that makes it unreachable)",
                    token.text
                ))
            } else if PANICKY_MACROS.iter().any(|m| token.is_ident(m))
                && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                Some(format!(
                    "`{}!` on a hot path; panics here take down the shard",
                    token.text
                ))
            } else {
                None
            };
            if let Some(message) = finding {
                diags.push(Diagnostic {
                    lint: "panic-free-hot-path",
                    level: Level::Deny,
                    file: file.rel.clone(),
                    line: token.line,
                    message,
                });
            }
        }
    }
}
