//! `crate-hygiene`: every crate root (`src/lib.rs`) must pin the
//! workspace lint posture with inner attributes — `unsafe_code` at
//! `forbid` (or `deny`, for the one crate whose kernel modules opt back
//! in module-locally) and `missing_docs` at `warn` or stronger. This is
//! what keeps [`super::unsafe_confinement`] honest: the compiler enforces
//! the same boundary the analyzer audits.

use crate::diag::{Diagnostic, Level};
use crate::lexer::Token;
use crate::workspace::Workspace;

/// Runs the lint over every crate root.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !(file.rel.ends_with("src/lib.rs") || file.rel == "src/lib.rs") {
            continue;
        }
        let attrs = inner_attrs(&file.tokens);
        let has = |level: &[&str], lint: &str| {
            attrs.iter().any(|span| {
                level.iter().any(|l| span.iter().any(|t| t.is_ident(l)))
                    && span.iter().any(|t| t.is_ident(lint))
            })
        };
        if !has(&["forbid", "deny"], "unsafe_code") {
            diags.push(Diagnostic {
                lint: "crate-hygiene",
                level: Level::Deny,
                file: file.rel.clone(),
                line: 1,
                message: "crate root lacks `#![forbid(unsafe_code)]` (or `deny` where \
                          kernel modules opt back in locally)"
                    .to_string(),
            });
        }
        if !has(&["warn", "deny", "forbid"], "missing_docs") {
            diags.push(Diagnostic {
                lint: "crate-hygiene",
                level: Level::Deny,
                file: file.rel.clone(),
                line: 1,
                message: "crate root lacks `#![warn(missing_docs)]`".to_string(),
            });
        }
    }
}

/// The token spans of every inner attribute (`#![...]`) in the file.
fn inner_attrs(tokens: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < tokens.len() {
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('!') && tokens[i + 2].is_punct('[') {
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < tokens.len() {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            out.push(&tokens[i + 2..tokens.len().min(j + 1)]);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}
