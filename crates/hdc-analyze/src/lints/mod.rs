//! The lint passes. Each lint is one module with a single
//! `run(&Workspace, &mut Vec<Diagnostic>)` entry point; [`run_all`]
//! executes every pass and returns the findings sorted by location.
//!
//! | id | level | invariant |
//! |----|-------|-----------|
//! | `unsafe-confinement` | deny | `unsafe` only in the ISA kernel modules |
//! | `panic-free-hot-path` | deny | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test hot-path code |
//! | `wire-opcode-exhaustive` | deny | every `OP_*`/`RESP_*` constant appears in both wire codec directions and the round-trip test |
//! | `lock-across-io` | deny | no mutex guard live across a blocking I/O call in `hdc-store` |
//! | `error-variant-coverage` | deny | every `HdcError` variant is rendered by `Display` and used outside its declaration |
//! | `bench-provenance` | deny | every `results/BENCH_*.json` records host provenance |
//! | `crate-hygiene` | deny | every crate root pins `unsafe_code` and `missing_docs` lint levels |

pub mod bench_provenance;
pub mod crate_hygiene;
pub mod error_coverage;
pub mod lock_across_io;
pub mod panic_free;
pub mod unsafe_confinement;
pub mod wire_opcodes;

use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::workspace::{SourceFile, Workspace};

/// Runs every lint pass over the workspace, returning findings sorted by
/// file, line, then lint id.
#[must_use]
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    unsafe_confinement::run(ws, &mut diags);
    panic_free::run(ws, &mut diags);
    wire_opcodes::run(ws, &mut diags);
    lock_across_io::run(ws, &mut diags);
    error_coverage::run(ws, &mut diags);
    bench_provenance::run(ws, &mut diags);
    crate_hygiene::run(ws, &mut diags);
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    diags
}

/// Index of the `}` matching the `{` at `open`.
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    matching_pair(tokens, open, '{', '}')
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    matching_pair(tokens, open, '(', ')')
}

fn matching_pair(tokens: &[Token], open: usize, lhs: char, rhs: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, token) in tokens.iter().enumerate().skip(open) {
        if token.is_punct(lhs) {
            depth += 1;
        } else if token.is_punct(rhs) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Token span `(open_brace, close_brace)` of the body of the first
/// `fn name` in the file, skipping generics/parameters/return type.
pub(crate) fn fn_body_span(file: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        if !(tokens[i].is_ident("fn") && tokens.get(i + 1).is_some_and(|t| t.is_ident(name))) {
            continue;
        }
        let mut paren = 0i32;
        let mut bracket = 0i32;
        for (k, token) in tokens.iter().enumerate().skip(i + 2) {
            if token.kind != TokKind::Punct {
                continue;
            }
            match token.text.as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') if paren == 0 && bracket == 0 => {
                    return matching_brace(tokens, k).map(|close| (k, close));
                }
                // Body-less declaration (trait method): keep looking for a
                // later definition with the same name.
                Some(b';') if paren == 0 && bracket == 0 => break,
                _ => {}
            }
        }
    }
    None
}

/// `depths[i]` is the brace depth *before* token `i` (so a `}` at index
/// `j` closes the block whose interior ran at `depths[j]`).
pub(crate) fn brace_depths(tokens: &[Token]) -> Vec<i32> {
    let mut depths = Vec::with_capacity(tokens.len());
    let mut depth = 0i32;
    for token in tokens {
        depths.push(depth);
        if token.is_punct('{') {
            depth += 1;
        } else if token.is_punct('}') {
            depth -= 1;
        }
    }
    depths
}

/// `true` when `tokens[i]` is a method-call receiver position:
/// `. name (`.
pub(crate) fn is_method_call(tokens: &[Token], i: usize) -> bool {
    i > 0 && tokens[i - 1].is_punct('.') && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}
