//! `lock-across-io`: in the storage crate, no mutex guard may be live
//! across a blocking I/O call. Holding the WAL lock through an
//! `fdatasync` stalls every appender for the duration of the disk flush
//! — the exact pathology the group-commit flusher exists to avoid (it
//! duplicates the file handle and syncs *off* the lock).
//!
//! The analysis is intra-file and token-level:
//!
//! * A **live guard** is a `let g = <lock-expr>;` binding whose
//!   right-hand side is lock-shaped — a `lock(...)` / `.lock()` call
//!   followed only by `?`, `.unwrap()`, or `.expect(..)` before the
//!   `;`. The guard dies when its enclosing block closes or at an
//!   explicit `drop(g)`.
//! * A **temporary guard** is any other lock call (`m.lock()?.f()`,
//!   `match m.lock() { .. }`, `if let Ok(g) = m.lock() { .. }`); it is
//!   live to the end of the enclosing statement or block arm.
//!
//! Any I/O-shaped method call (`.sync_data()`, `.write_all()`,
//! `.send()`, ...) inside a live range is a deny finding. `let .. else`
//! guards are a known blind spot (they outlive the heuristic's range).

use crate::diag::{Diagnostic, Level};
use crate::lexer::Token;
use crate::lints::{brace_depths, is_method_call, matching_paren};
use crate::workspace::{SourceFile, Workspace};

/// Only the storage crate is in scope: it is the only crate that mixes
/// mutexes with disk I/O on purpose.
const SCOPE_PREFIX: &str = "crates/hdc-store/src/";

/// Method names that block on I/O (file syncs, writes, channel ops).
const IO_CALLS: &[&str] = &[
    "sync",
    "sync_data",
    "sync_all",
    "sync_files",
    "fdatasync",
    "write_all",
    "flush",
    "send",
    "recv",
];

/// Runs the lint over the storage crate.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for file in ws.files.iter().filter(|f| f.rel.starts_with(SCOPE_PREFIX)) {
        check_file(file, diags);
    }
}

fn check_file(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    let tokens = &file.tokens;
    let depths = brace_depths(tokens);
    // (guard name, registered-at index, registration depth, lock line)
    let mut guards: Vec<(String, usize, i32, usize)> = Vec::new();

    for i in 0..tokens.len() {
        if file.in_test[i] || !tokens[i].is_ident("lock") {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue; // `fn lock<..>` declaration or a bare mention
        }
        let Some(close) = matching_paren(tokens, i + 1) else {
            continue;
        };
        let tail_end = guardish_tail_end(tokens, close + 1);
        if tokens.get(tail_end).is_some_and(|t| t.is_punct(';')) {
            // Statement-final lock expression: a live guard if let-bound.
            if let Some(name) = let_binding_name(tokens, i) {
                guards.push((name, tail_end, depths[i], tokens[i].line));
            }
        } else {
            // Temporary guard: live to the end of the enclosing
            // statement (or block, for match/if-let shapes).
            let span_end = statement_end(tokens, &depths, tail_end, depths[i]);
            report_io_calls(
                file,
                i + 1,
                span_end,
                &format!("a temporary lock guard from line {}", tokens[i].line),
                diags,
            );
        }
    }

    // Second pass: I/O while a let-bound guard is live.
    for (name, reg, reg_depth, lock_line) in guards {
        let mut end = tokens.len();
        for j in (reg + 1)..tokens.len() {
            if tokens[j].is_punct('}') && depths[j] <= reg_depth {
                end = j;
                break;
            }
            if tokens[j].is_ident("drop")
                && tokens.get(j + 1).is_some_and(|t| t.is_punct('('))
                && tokens.get(j + 2).is_some_and(|t| t.is_ident(&name))
            {
                end = j;
                break;
            }
        }
        report_io_calls(
            file,
            reg + 1,
            end,
            &format!("mutex guard `{name}` (locked at line {lock_line})"),
            diags,
        );
    }
}

/// Index just past a run of `?` / `.unwrap()` / `.expect(..)` starting
/// at `from` — the trailing forms that still yield a bare guard.
fn guardish_tail_end(tokens: &[Token], mut from: usize) -> usize {
    loop {
        if tokens.get(from).is_some_and(|t| t.is_punct('?')) {
            from += 1;
            continue;
        }
        if tokens.get(from).is_some_and(|t| t.is_punct('.'))
            && tokens
                .get(from + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            && tokens.get(from + 2).is_some_and(|t| t.is_punct('('))
        {
            match matching_paren(tokens, from + 2) {
                Some(close) => {
                    from = close + 1;
                    continue;
                }
                None => return from,
            }
        }
        return from;
    }
}

/// The binding name when the statement containing token `at` is a
/// `let [mut] name = ...` (scanning back to the previous statement
/// boundary).
fn let_binding_name(tokens: &[Token], at: usize) -> Option<String> {
    let mut j = at;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return None;
        }
        if t.is_ident("let") {
            let mut k = j + 1;
            if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            let name_tok = tokens.get(k)?;
            // Destructuring patterns (`let Ok(g) = ..`) never yield a
            // bare guard binding the heuristic can track.
            if tokens.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                return None;
            }
            return Some(name_tok.text.clone());
        }
    }
    None
}

/// First index at or after `from` that ends the statement begun at brace
/// depth `depth`: a `;` or `}` back at (or shallower than) that depth.
fn statement_end(tokens: &[Token], depths: &[i32], from: usize, depth: i32) -> usize {
    for j in from..tokens.len() {
        if (tokens[j].is_punct(';') || tokens[j].is_punct('}')) && depths[j] <= depth {
            return j;
        }
    }
    tokens.len()
}

/// Reports every I/O-shaped method call in `span` as a deny finding.
fn report_io_calls(
    file: &SourceFile,
    start: usize,
    end: usize,
    held: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for k in start..end.min(file.tokens.len()) {
        let token = &file.tokens[k];
        if file.in_test[k] {
            continue;
        }
        if IO_CALLS.iter().any(|m| token.is_ident(m)) && is_method_call(&file.tokens, k) {
            diags.push(Diagnostic {
                lint: "lock-across-io",
                level: Level::Deny,
                file: file.rel.clone(),
                line: token.line,
                message: format!(
                    "blocking I/O call `.{}()` while {held} is held; \
                     drop the guard (or duplicate the handle) before I/O",
                    token.text
                ),
            });
        }
    }
}
