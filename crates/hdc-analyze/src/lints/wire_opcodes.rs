//! `wire-opcode-exhaustive`: every wire opcode constant (`OP_*` for
//! requests, `RESP_*` for responses) declared in the wire module must be
//! referenced in *both* codec directions — the encoder and the decoder —
//! and pinned by the integration round-trip test. Adding an opcode to
//! `write_request` without a `read_request` arm (or without a round-trip
//! test) is exactly the bug class this lint exists to catch.

use crate::diag::{Diagnostic, Level};
use crate::lints::fn_body_span;
use crate::workspace::{SourceFile, Workspace};

/// The wire codec module.
const WIRE_FILE: &str = "crates/hdc-serve/src/wire.rs";
/// The integration test that round-trips every frame shape.
const ROUNDTRIP_FILE: &str = "tests/wire_roundtrip.rs";

/// `(prefix, encoder fn, decoder fn)` for each opcode family.
const FAMILIES: &[(&str, &str, &str)] = &[
    ("OP_", "write_request", "read_request"),
    ("RESP_", "write_response", "read_response"),
];

/// Runs the lint when the workspace contains the wire module.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    let Some(wire) = ws.file(WIRE_FILE) else {
        return;
    };
    let consts = opcode_consts(wire);
    if consts.is_empty() {
        diags.push(Diagnostic {
            lint: "wire-opcode-exhaustive",
            level: Level::Deny,
            file: wire.rel.clone(),
            line: 1,
            message: "no `OP_*`/`RESP_*` opcode constants declared; the wire \
                      format must name its opcodes so exhaustiveness is checkable"
                .to_string(),
        });
        return;
    }
    let roundtrip = ws.file(ROUNDTRIP_FILE);
    if roundtrip.is_none() {
        diags.push(Diagnostic {
            lint: "wire-opcode-exhaustive",
            level: Level::Deny,
            file: ROUNDTRIP_FILE.to_string(),
            line: 0,
            message: "missing round-trip integration test for the wire format".to_string(),
        });
    }
    for (name, line) in &consts {
        let Some(&(_, encoder, decoder)) = FAMILIES
            .iter()
            .find(|(prefix, _, _)| name.starts_with(prefix))
        else {
            continue;
        };
        for fn_name in [encoder, decoder] {
            match fn_body_span(wire, fn_name) {
                None => diags.push(Diagnostic {
                    lint: "wire-opcode-exhaustive",
                    level: Level::Deny,
                    file: wire.rel.clone(),
                    line: *line,
                    message: format!("`{name}` declared but `fn {fn_name}` not found"),
                }),
                Some((open, close)) => {
                    let referenced = wire.tokens[open..=close].iter().any(|t| t.is_ident(name));
                    if !referenced {
                        diags.push(Diagnostic {
                            lint: "wire-opcode-exhaustive",
                            level: Level::Deny,
                            file: wire.rel.clone(),
                            line: *line,
                            message: format!(
                                "opcode `{name}` is not referenced in `fn {fn_name}`; \
                                 encoder and decoder must both handle every opcode"
                            ),
                        });
                    }
                }
            }
        }
        if let Some(rt) = roundtrip {
            if !rt.tokens.iter().any(|t| t.is_ident(name)) {
                diags.push(Diagnostic {
                    lint: "wire-opcode-exhaustive",
                    level: Level::Deny,
                    file: wire.rel.clone(),
                    line: *line,
                    message: format!(
                        "opcode `{name}` is not pinned by {ROUNDTRIP_FILE}; \
                         add it to the opcode-stability test"
                    ),
                });
            }
        }
    }
}

/// `(name, line)` of every `const OP_*` / `const RESP_*` declaration
/// outside test regions.
fn opcode_consts(file: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, token) in file.tokens.iter().enumerate() {
        if file.in_test[i] || !token.is_ident("const") {
            continue;
        }
        let Some(name_tok) = file.tokens.get(i + 1) else {
            continue;
        };
        if name_tok.text.starts_with("OP_") || name_tok.text.starts_with("RESP_") {
            out.push((name_tok.text.clone(), name_tok.line));
        }
    }
    out
}
