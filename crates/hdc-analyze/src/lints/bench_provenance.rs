//! `bench-provenance`: every committed benchmark result
//! (`results/BENCH_*.json`) must record where it was measured. A number
//! without its host, thread-pool width, and kernel backend cannot be
//! compared against a rerun, which makes it noise with a filename.

use crate::diag::{Diagnostic, Level};
use crate::workspace::Workspace;

/// Keys every bench-result file must carry (the `host` object with its
/// `minipool_threads` and `kernel_backend` fields).
const REQUIRED_KEYS: &[&str] = &["host", "minipool_threads", "kernel_backend"];

/// Runs the lint over every `results/BENCH_*.json`.
pub fn run(ws: &Workspace, diags: &mut Vec<Diagnostic>) {
    for (rel, contents) in &ws.bench_jsons {
        for key in REQUIRED_KEYS {
            let needle = format!("\"{key}\"");
            if !contents.contains(&needle) {
                diags.push(Diagnostic {
                    lint: "bench-provenance",
                    level: Level::Deny,
                    file: rel.clone(),
                    line: 1,
                    message: format!(
                        "bench result is missing the `{key}` provenance key; \
                         results without host provenance are not comparable"
                    ),
                });
            }
        }
    }
}
