// Fixture: wire-opcode-exhaustive violations. OP_ONLY_ENCODED is missing
// from the decoder; OP_UNTESTED is in both directions but not in the
// round-trip test; RESP_OK is fully covered (no finding).

pub const OP_ONLY_ENCODED: u8 = 1; // line 5: deny (missing in read_request)
pub const OP_UNTESTED: u8 = 2; // line 6: deny (missing in wire_roundtrip)
pub const RESP_OK: u8 = 1;

pub fn write_request(op: u8) -> u8 {
    match op {
        OP_ONLY_ENCODED => OP_ONLY_ENCODED,
        _ => OP_UNTESTED,
    }
}

pub fn read_request(op: u8) -> u8 {
    match op {
        OP_UNTESTED => OP_UNTESTED,
        other => other,
    }
}

pub fn write_response(_r: u8) -> u8 {
    RESP_OK
}

pub fn read_response(op: u8) -> u8 {
    if op == RESP_OK {
        RESP_OK
    } else {
        op
    }
}
