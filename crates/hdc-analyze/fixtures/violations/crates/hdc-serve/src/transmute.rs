// Fixture: unsafe-confinement violation — `unsafe` outside the kernel
// modules.

pub fn reinterpret(words: &[u64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(words.as_ptr().cast(), words.len() * 8) } // line 5: deny
}
