// Fixture: panic-free-hot-path violations at known lines, plus test-only
// code that must NOT be flagged.

pub fn dispatch(input: Option<u32>) -> u32 {
    let value = input.unwrap(); // line 5: deny
    if value > 10 {
        panic!("too big"); // line 7: deny
    }
    value
}

pub fn render(name: &str) {
    // The word unwrap in a comment, and "panic!(\"not real\")" in a
    // string, must not trip the lexer-backed lint.
    let _ = format!("{name} says .unwrap() and panic!");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_panics_are_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3); // inside #[cfg(test)]: no finding
    }
}
