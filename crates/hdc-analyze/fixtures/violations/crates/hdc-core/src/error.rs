// Fixture: error-variant-coverage violations. `Unrendered` is used by
// other code but missing from Display; `Unconstructed` is rendered but
// never used outside this file; `Used` is fully covered (no finding).

use std::fmt;

pub enum HdcError {
    Used(String),
    Unrendered, // line 9: deny (not in Display)
    Unconstructed, // line 10: deny (never used elsewhere)
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::Used(m) => write!(f, "used: {m}"),
            HdcError::Unconstructed => write!(f, "unconstructed"),
            _ => write!(f, "unknown"),
        }
    }
}
