// Fixture crate root: carries both hygiene attributes, so the only
// crate-hygiene findings in this tree come from badcrate. Also
// constructs HdcError::Used and matches HdcError::Unrendered so those
// variants count as used outside error.rs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod kernels;

pub fn classify(flag: bool) -> Result<(), error::HdcError> {
    if flag {
        return Err(error::HdcError::Used("flag".to_string()));
    }
    Ok(())
}

pub fn describe(e: &error::HdcError) -> bool {
    matches!(e, crate::error::HdcError::Unrendered)
}
