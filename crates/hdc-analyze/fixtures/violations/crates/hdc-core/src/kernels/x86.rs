// Fixture: `unsafe` in a kernel module is the sanctioned location — the
// unsafe-confinement lint must NOT flag this file.

pub fn popcount_avx2(words: &[u64]) -> u64 {
    unsafe { words.iter().map(|w| w.count_ones() as u64).sum() }
}
