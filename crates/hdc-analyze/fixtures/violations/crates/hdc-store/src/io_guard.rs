// Fixture: lock-across-io violations — a let-bound guard held across a
// write+sync, a temporary guard chained straight into I/O, and a
// drop-before-I/O shape that must NOT be flagged.

use std::io::Write;
use std::sync::Mutex;

pub fn held_across_sync(m: &Mutex<std::fs::File>, buf: &[u8]) -> std::io::Result<()> {
    let mut file = m.lock().unwrap();
    file.write_all(buf)?; // line 10: deny (guard `file` live)
    file.sync_data() // line 11: deny
}

pub fn chained_io(m: &Mutex<std::fs::File>) -> std::io::Result<()> {
    m.lock().unwrap().sync_all() // line 15: deny (temporary guard)
}

pub fn drop_before_io(m: &Mutex<Vec<u8>>, file: &mut std::fs::File) -> std::io::Result<()> {
    let staged = m.lock().unwrap();
    let copy = staged.clone();
    drop(staged);
    file.write_all(&copy) // after drop(): no finding
}
