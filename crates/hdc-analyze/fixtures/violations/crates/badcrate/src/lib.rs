// Fixture: crate-hygiene violations — a crate root with neither
// `#![forbid(unsafe_code)]` nor `#![warn(missing_docs)]`.

pub fn undocumented() -> u32 {
    42
}
