// Fixture round-trip test: pins OP_ONLY_ENCODED and RESP_OK, but NOT
// OP_UNTESTED — so the lint flags OP_UNTESTED alone for test coverage.

#[test]
fn pins_some_opcodes() {
    assert_eq!(OP_ONLY_ENCODED, 1);
    assert_eq!(RESP_OK, 1);
}
