// Fixture: two hot-path violations — one suppressed by the tree's
// analyze.allow (snippet-anchored with a justification), one surviving.

pub fn suppressed_site(input: Option<u32>) -> u32 {
    input.expect("fixture invariant: caller always passes Some") // allowlisted
}

pub fn surviving_site(input: Option<u32>) -> u32 {
    input.unwrap() // line 9: deny survives
}
