//! Integration tests: every lint is proven on a known-violation fixture
//! tree (exact file and line), the sanctioned patterns in the same trees
//! stay clean, the allowlist machinery suppresses/reports correctly —
//! and the real workspace itself analyzes clean, which is the tier-1
//! gate the CI `analyze` job mirrors.

use std::path::PathBuf;

use hdc_analyze::diag::{Diagnostic, Level};
use hdc_analyze::{analyze, Report};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn violations() -> Report {
    analyze(&fixture_root("violations")).expect("fixture tree loads")
}

fn has(report: &Report, lint: &str, file: &str, line: usize) -> bool {
    report
        .diags
        .iter()
        .any(|d| d.lint == lint && d.file == file && d.line == line)
}

fn lint_findings<'a>(report: &'a Report, lint: &str) -> Vec<&'a Diagnostic> {
    report.diags.iter().filter(|d| d.lint == lint).collect()
}

#[test]
fn unsafe_confinement_fires_outside_kernels_only() {
    let report = violations();
    assert!(has(
        &report,
        "unsafe-confinement",
        "crates/hdc-serve/src/transmute.rs",
        5
    ));
    // The kernel module's unsafe is sanctioned.
    assert!(lint_findings(&report, "unsafe-confinement")
        .iter()
        .all(|d| !d.file.contains("kernels")));
}

#[test]
fn panic_free_fires_at_expected_lines_but_not_in_tests() {
    let report = violations();
    let file = "crates/hdc-serve/src/runtime.rs";
    assert!(has(&report, "panic-free-hot-path", file, 5), "unwrap");
    assert!(has(&report, "panic-free-hot-path", file, 7), "panic!");
    // Exactly two: the comment/string mentions and the #[cfg(test)]
    // unwrap must not be flagged.
    assert_eq!(lint_findings(&report, "panic-free-hot-path").len(), 2);
}

#[test]
fn wire_opcode_exhaustiveness_catches_decoder_and_test_gaps() {
    let report = violations();
    let wire = "crates/hdc-serve/src/wire.rs";
    // OP_ONLY_ENCODED is absent from read_request.
    assert!(has(&report, "wire-opcode-exhaustive", wire, 5));
    // OP_UNTESTED is absent from tests/wire_roundtrip.rs.
    assert!(has(&report, "wire-opcode-exhaustive", wire, 6));
    // RESP_OK is fully covered.
    assert!(lint_findings(&report, "wire-opcode-exhaustive")
        .iter()
        .all(|d| !d.message.contains("RESP_OK")));
}

#[test]
fn lock_across_io_fires_for_live_and_temporary_guards() {
    let report = violations();
    let file = "crates/hdc-store/src/io_guard.rs";
    assert!(
        has(&report, "lock-across-io", file, 10),
        "write under guard"
    );
    assert!(has(&report, "lock-across-io", file, 11), "sync under guard");
    assert!(
        has(&report, "lock-across-io", file, 15),
        "chained temporary"
    );
    // The drop-before-I/O function is clean: exactly the three above.
    assert_eq!(lint_findings(&report, "lock-across-io").len(), 3);
}

#[test]
fn error_variant_coverage_checks_display_and_use() {
    let report = violations();
    let file = "crates/hdc-core/src/error.rs";
    let findings = lint_findings(&report, "error-variant-coverage");
    assert!(
        findings
            .iter()
            .any(|d| d.line == 9 && d.message.contains("Unrendered")),
        "Unrendered missing from Display"
    );
    assert!(
        findings
            .iter()
            .any(|d| d.line == 10 && d.message.contains("Unconstructed")),
        "Unconstructed never used"
    );
    // `Used` is rendered and constructed: no third variant flagged.
    assert!(findings.iter().all(|d| d.file == file));
    assert!(findings.iter().all(|d| !d.message.contains("`Used`")));
}

#[test]
fn bench_provenance_requires_host_keys() {
    let report = violations();
    let findings = lint_findings(&report, "bench-provenance");
    assert_eq!(findings.len(), 1, "only minipool_threads is missing");
    assert_eq!(findings[0].file, "results/BENCH_BAD.json");
    assert!(findings[0].message.contains("minipool_threads"));
}

#[test]
fn crate_hygiene_requires_both_attributes() {
    let report = violations();
    let findings = lint_findings(&report, "crate-hygiene");
    assert!(findings
        .iter()
        .any(|d| d.file == "crates/badcrate/src/lib.rs" && d.message.contains("unsafe_code")));
    assert!(findings
        .iter()
        .any(|d| d.file == "crates/badcrate/src/lib.rs" && d.message.contains("missing_docs")));
    // The attributed fixture root is clean.
    assert!(findings
        .iter()
        .all(|d| d.file != "crates/hdc-core/src/lib.rs"));
}

#[test]
fn every_violation_fixture_finding_is_deny_level() {
    let report = violations();
    assert!(report.diags.iter().all(|d| d.level == Level::Deny));
    assert_eq!(report.suppressed, 0, "no allowlist in the violations tree");
}

#[test]
fn allowlist_suppresses_reports_stale_and_rejects_malformed() {
    let report = analyze(&fixture_root("allowed")).expect("fixture tree loads");
    // The justified snippet entry suppressed the expect() site...
    assert_eq!(report.suppressed, 1);
    assert!(!report
        .diags
        .iter()
        .any(|d| d.lint == "panic-free-hot-path" && d.line == 5));
    // ...the unwrap() site survives as deny...
    assert!(has(
        &report,
        "panic-free-hot-path",
        "crates/hdc-serve/src/runtime.rs",
        9
    ));
    // ...the line-999 entry is reported stale (warn, does not gate)...
    let stale = lint_findings(&report, "stale-allow");
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].level, Level::Warn);
    assert_eq!(stale[0].file, "analyze.allow");
    // ...and the justification-less line is a deny-level parse error.
    let parse = lint_findings(&report, "allow-parse");
    assert_eq!(parse.len(), 1);
    assert_eq!(parse[0].level, Level::Deny);
    assert_eq!(parse[0].line, 4);
}

/// The tier-1 gate: the workspace this crate ships in must analyze
/// clean. Any new deny finding (or stale allowlist entry being the only
/// warn class, kept at zero too) fails `cargo test` before CI even runs
/// the dedicated analyze job.
#[test]
fn workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let report = analyze(&root).expect("workspace loads");
    let rendered: Vec<String> = report.diags.iter().map(|d| d.render()).collect();
    assert_eq!(
        report.deny_count(),
        0,
        "workspace has deny findings:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.diags.is_empty(),
        "workspace has stale/warn findings:\n{}",
        rendered.join("\n")
    );
    assert!(report.suppressed > 0, "analyze.allow should be exercised");
}
