//! Evaluation metrics for classification and regression, including the
//! normalized errors the paper plots in Figures 7 and 8.
//!
//! ```
//! use hdc_learn::metrics;
//!
//! let truth = [0usize, 1, 2, 1];
//! let pred = [0usize, 1, 1, 1];
//! assert_eq!(metrics::accuracy(&pred, &truth), 0.75);
//!
//! // Paper §6.3: normalized accuracy error (1 − α)/(1 − ᾱ) against a
//! // reference accuracy ᾱ.
//! let nae = metrics::normalized_accuracy_error(0.9, 0.8);
//! assert!((nae - 0.5).abs() < 1e-12);
//! ```

/// Fraction of predictions matching the ground truth.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "prediction/truth lengths differ"
    );
    assert!(
        !predicted.is_empty(),
        "cannot score an empty prediction set"
    );
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predicted.len() as f64
}

/// The `classes × classes` confusion matrix: `matrix[truth][predicted]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or any label is `>= classes`.
#[must_use]
pub fn confusion_matrix(predicted: &[usize], truth: &[usize], classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "prediction/truth lengths differ"
    );
    let mut matrix = vec![vec![0usize; classes]; classes];
    for (&p, &t) in predicted.iter().zip(truth) {
        assert!(
            p < classes && t < classes,
            "label out of range: predicted {p}, truth {t}"
        );
        matrix[t][p] += 1;
    }
    matrix
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn mse(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "prediction/truth lengths differ"
    );
    assert!(
        !predicted.is_empty(),
        "cannot score an empty prediction set"
    );
    predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predicted.len() as f64
}

/// Root mean squared error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn rmse(predicted: &[f64], truth: &[f64]) -> f64 {
    mse(predicted, truth).sqrt()
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn mae(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "prediction/truth lengths differ"
    );
    assert!(
        !predicted.is_empty(),
        "cannot score an empty prediction set"
    );
    predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Coefficient of determination `R² = 1 − SS_res/SS_tot`. Returns negative
/// values for models worse than predicting the mean; `NaN` if the truth is
/// constant.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn r2(predicted: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "prediction/truth lengths differ"
    );
    assert!(
        !predicted.is_empty(),
        "cannot score an empty prediction set"
    );
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Normalized MSE against a reference model's MSE (paper Figures 7–8 use
/// the random-basis model as reference): `mse / reference_mse`.
///
/// # Panics
///
/// Panics if `reference_mse <= 0`.
#[must_use]
pub fn normalized_mse(mse: f64, reference_mse: f64) -> f64 {
    assert!(reference_mse > 0.0, "reference MSE must be positive");
    mse / reference_mse
}

/// Normalized accuracy error `(1 − α)/(1 − ᾱ)` (paper §6.3), where `α` is a
/// model's accuracy and `ᾱ` the reference accuracy. Values below 1 beat the
/// reference.
///
/// # Panics
///
/// Panics if `reference_accuracy >= 1` (the normalization is undefined for
/// a perfect reference).
#[must_use]
pub fn normalized_accuracy_error(accuracy: f64, reference_accuracy: f64) -> f64 {
    assert!(
        reference_accuracy < 1.0,
        "normalized accuracy error undefined for a perfect reference"
    );
    (1.0 - accuracy) / (1.0 - reference_accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bounds() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[0, 0, 0], &[1, 2, 3]), 0.0);
        assert!((accuracy(&[1, 0], &[1, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn accuracy_empty_panics() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    fn confusion_matrix_counts() {
        let truth = [0, 0, 1, 1, 2];
        let pred = [0, 1, 1, 1, 0];
        let m = confusion_matrix(&pred, &truth, 3);
        assert_eq!(m[0], vec![1, 1, 0]);
        assert_eq!(m[1], vec![0, 2, 0]);
        assert_eq!(m[2], vec![1, 0, 0]);
        // Row sums = class support; total = n.
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn regression_metrics_basics() {
        let truth = [1.0, 2.0, 3.0];
        let pred = [1.0, 2.0, 3.0];
        assert_eq!(mse(&pred, &truth), 0.0);
        assert_eq!(mae(&pred, &truth), 0.0);
        assert_eq!(rmse(&pred, &truth), 0.0);
        assert!((r2(&pred, &truth) - 1.0).abs() < 1e-12);

        let off = [2.0, 3.0, 4.0];
        assert!((mse(&off, &truth) - 1.0).abs() < 1e-12);
        assert!((mae(&off, &truth) - 1.0).abs() < 1e-12);
        assert!((rmse(&off, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        let mean = [2.5; 4];
        assert!(r2(&mean, &truth).abs() < 1e-12);
    }

    #[test]
    fn normalized_metrics() {
        assert!((normalized_mse(50.0, 100.0) - 0.5).abs() < 1e-12);
        assert!((normalized_accuracy_error(0.8, 0.8) - 1.0).abs() < 1e-12);
        // Better than reference → below 1.
        assert!(normalized_accuracy_error(0.95, 0.9) < 1.0);
        // Worse than reference → above 1.
        assert!(normalized_accuracy_error(0.5, 0.9) > 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn normalized_mse_rejects_zero_reference() {
        let _ = normalized_mse(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "undefined for a perfect reference")]
    fn normalized_accuracy_error_rejects_perfect_reference() {
        let _ = normalized_accuracy_error(0.5, 1.0);
    }
}
