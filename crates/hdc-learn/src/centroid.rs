use hdc_core::{
    BinaryHypervector, HdcError, HvRef, HypervectorBatch, MajorityAccumulator, TieBreak,
};
use rand::Rng;

/// Incremental trainer for a [`CentroidClassifier`]: one majority
/// accumulator per class, fed with encoded training samples.
///
/// ```
/// use hdc_core::BinaryHypervector;
/// use hdc_learn::CentroidTrainer;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(11);
/// let mut trainer = CentroidTrainer::new(2, 10_000)?;
/// let a = BinaryHypervector::random(10_000, &mut rng);
/// let b = BinaryHypervector::random(10_000, &mut rng);
/// trainer.observe(&a, 0)?;
/// trainer.observe(&b, 1)?;
/// let model = trainer.finish(&mut rng);
/// assert_eq!(model.predict(&a), 0);
/// # Ok::<(), hdc_learn::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CentroidTrainer {
    accumulators: Vec<MajorityAccumulator>,
    counts: Vec<usize>,
}

impl CentroidTrainer {
    /// Creates a trainer for `classes` classes over `dim`-bit encodings.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `classes == 0` or
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn new(classes: usize, dim: usize) -> Result<Self, HdcError> {
        if classes == 0 {
            return Err(HdcError::InvalidBasisSize {
                requested: 0,
                minimum: 1,
            });
        }
        if dim == 0 {
            return Err(HdcError::InvalidDimension(dim));
        }
        Ok(Self {
            accumulators: (0..classes)
                .map(|_| MajorityAccumulator::new(dim))
                .collect(),
            counts: vec![0; classes],
        })
    }

    /// Reconstructs a trainer from previously captured per-class
    /// accumulators and sample counts — the inverse of reading
    /// [`accumulator`](Self::accumulator) and [`counts`](Self::counts) per
    /// class, used by snapshot restore. The counters are adopted verbatim,
    /// so the restored trainer finalizes bit-identically and resumes
    /// training exactly where the saved one left off.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if no accumulators are
    /// supplied, [`HdcError::BatchLengthMismatch`] if `counts` does not
    /// hold one entry per class, and [`HdcError::DimensionMismatch`] if
    /// the accumulators disagree on dimensionality.
    pub fn from_parts(
        accumulators: Vec<MajorityAccumulator>,
        counts: Vec<usize>,
    ) -> Result<Self, HdcError> {
        let Some(first) = accumulators.first() else {
            return Err(HdcError::InvalidBasisSize {
                requested: 0,
                minimum: 1,
            });
        };
        if counts.len() != accumulators.len() {
            return Err(HdcError::BatchLengthMismatch {
                rows: accumulators.len(),
                labels: counts.len(),
            });
        }
        let dim = first.dim();
        if let Some(other) = accumulators.iter().find(|a| a.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                expected: dim,
                found: other.dim(),
            });
        }
        Ok(Self {
            accumulators,
            counts,
        })
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.accumulators.len()
    }

    /// Adds an encoded training sample for class `label`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::LabelOutOfRange`] for an unknown label.
    ///
    /// # Panics
    ///
    /// Panics if the sample's dimensionality differs from the trainer's.
    pub fn observe(&mut self, sample: &BinaryHypervector, label: usize) -> Result<(), HdcError> {
        self.observe_row(sample.view(), label)
    }

    /// Adds an encoded training sample supplied as a borrowed row view (e.g.
    /// one row of a [`HypervectorBatch`]) — the allocation-free form online
    /// ingestion loops feed observations through.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::LabelOutOfRange`] for an unknown label.
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality differs from the trainer's.
    pub fn observe_row(&mut self, row: HvRef<'_>, label: usize) -> Result<(), HdcError> {
        let classes = self.accumulators.len();
        let acc = self
            .accumulators
            .get_mut(label)
            .ok_or(HdcError::LabelOutOfRange { label, classes })?;
        acc.push_row(row);
        self.counts[label] += 1;
        Ok(())
    }

    /// Merges another trainer's accumulated state into this one by adding
    /// its per-class counters and sample counts — the reduction step of
    /// versioned online refresh, where a *delta* trainer collects live
    /// observations off to the side and is periodically folded into the
    /// base. Counter addition commutes, so the merged state is bit-identical
    /// to having observed every sample on one trainer, in any order.
    ///
    /// # Panics
    ///
    /// Panics if the trainers disagree on class count or dimensionality.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.accumulators.len(),
            other.accumulators.len(),
            "class count mismatch: expected {}, found {}",
            self.accumulators.len(),
            other.accumulators.len()
        );
        for (dst, src) in self.accumulators.iter_mut().zip(&other.accumulators) {
            dst.merge(src);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// The accumulator of one class — the raw counter state a versioned
    /// snapshot is finalized from.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.classes()`.
    #[must_use]
    pub fn accumulator(&self, label: usize) -> &MajorityAccumulator {
        &self.accumulators[label]
    }

    /// Adds a whole batch of encoded samples in one parallel pass: the rows
    /// are partitioned across the worker pool, each worker accumulates into
    /// private per-class partial accumulators, and the partials are merged
    /// in row order. Because counter addition commutes, the resulting
    /// accumulator state is **bit-identical** to observing the samples one
    /// by one.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `labels.len()` differs
    /// from `batch.len()` and [`HdcError::LabelOutOfRange`] for an unknown
    /// label (in which case nothing is accumulated).
    ///
    /// # Panics
    ///
    /// Panics if the batch's dimensionality differs from the trainer's.
    pub fn observe_batch(
        &mut self,
        batch: &HypervectorBatch,
        labels: &[usize],
    ) -> Result<(), HdcError> {
        if batch.len() != labels.len() {
            return Err(HdcError::BatchLengthMismatch {
                rows: batch.len(),
                labels: labels.len(),
            });
        }
        let classes = self.accumulators.len();
        if let Some(&label) = labels.iter().find(|&&l| l >= classes) {
            return Err(HdcError::LabelOutOfRange { label, classes });
        }
        let dim = self.accumulators[0].dim();
        assert_eq!(
            dim,
            batch.dim(),
            "dimension mismatch: expected {}, found {}",
            dim,
            batch.dim()
        );
        // Forking pays a per-worker set of `classes` full accumulators plus
        // an O(workers · classes · dim) zero-init and merge, so it only
        // wins when the per-row work clearly exceeds that overhead —
        // roughly rows > workers · classes. Below that — or with a single
        // worker — accumulate straight into the trainer (same counter
        // arithmetic, so still bit-identical).
        let workers = minipool::max_threads();
        if workers <= 1 || batch.len() < workers.saturating_mul(classes.max(4)) {
            for (i, &label) in labels.iter().enumerate() {
                self.accumulators[label].push_row(batch.row(i));
                self.counts[label] += 1;
            }
            return Ok(());
        }
        let partials = minipool::par_fold_ranges(
            batch.len(),
            |range| {
                let mut accumulators: Vec<MajorityAccumulator> = (0..classes)
                    .map(|_| MajorityAccumulator::new(dim))
                    .collect();
                let mut counts = vec![0usize; classes];
                for i in range {
                    accumulators[labels[i]].push_row(batch.row(i));
                    counts[labels[i]] += 1;
                }
                (accumulators, counts)
            },
            |(mut accumulators, mut counts), (other_accs, other_counts)| {
                for (a, b) in accumulators.iter_mut().zip(&other_accs) {
                    a.merge(b);
                }
                for (a, b) in counts.iter_mut().zip(&other_counts) {
                    *a += b;
                }
                (accumulators, counts)
            },
        );
        if let Some((accumulators, counts)) = partials {
            for (dst, src) in self.accumulators.iter_mut().zip(&accumulators) {
                dst.merge(src);
            }
            for (dst, src) in self.counts.iter_mut().zip(&counts) {
                *dst += src;
            }
        }
        Ok(())
    }

    /// Number of samples observed per class.
    #[must_use]
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Access to the per-class accumulators (used by
    /// [`AdaptiveClassifier`](crate::AdaptiveClassifier) for retraining).
    #[must_use]
    pub(crate) fn into_accumulators(self) -> Vec<MajorityAccumulator> {
        self.accumulators
    }

    /// Finalizes the per-class majorities into a classifier, breaking
    /// bundling ties randomly.
    #[must_use]
    pub fn finish(&self, rng: &mut impl Rng) -> CentroidClassifier {
        CentroidClassifier {
            class_vectors: self
                .accumulators
                .iter()
                .map(|a| a.finalize_random(rng))
                .collect(),
        }
    }

    /// Finalizes with a deterministic tie-break policy instead of an RNG:
    /// the same accumulated counters always yield the same classifier. This
    /// is what reproducible serving pipelines (`hdc-serve`'s `Model`) use,
    /// so refitting, resharding and replication cannot drift bit-wise.
    #[must_use]
    pub fn finish_deterministic(&self, tie: TieBreak) -> CentroidClassifier {
        CentroidClassifier {
            class_vectors: self.accumulators.iter().map(|a| a.finalize(tie)).collect(),
        }
    }
}

/// The paper's standard classification model (§2.2): one prototype
/// *class-vector* `Mᵢ = ⊕_{ℓ(x)=i} φ(x)` per class; a query is assigned to
/// the class whose vector is nearest in normalized Hamming distance.
///
/// Build it incrementally with [`CentroidTrainer`] or in one call with
/// [`CentroidClassifier::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CentroidClassifier {
    class_vectors: Vec<BinaryHypervector>,
}

impl CentroidClassifier {
    /// Fits a model from an iterator of `(encoded sample, label)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for zero classes/dimension or an out-of-range
    /// label.
    ///
    /// # Panics
    ///
    /// Panics if a sample's dimensionality differs from `dim`.
    pub fn fit<'a, I>(
        samples: I,
        classes: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError>
    where
        I: IntoIterator<Item = (&'a BinaryHypervector, usize)>,
    {
        let mut trainer = CentroidTrainer::new(classes, dim)?;
        for (hv, label) in samples {
            trainer.observe(hv, label)?;
        }
        Ok(trainer.finish(rng))
    }

    /// Fits a model from a contiguous batch of encoded samples in one
    /// parallel pass (see [`CentroidTrainer::observe_batch`]). Produces the
    /// same model as [`fit`](Self::fit) over the same samples and RNG.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for zero classes/dimension, a label count that
    /// differs from the batch length, or an out-of-range label.
    pub fn fit_batch(
        batch: &HypervectorBatch,
        labels: &[usize],
        classes: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        let mut trainer = CentroidTrainer::new(classes, batch.dim())?;
        trainer.observe_batch(batch, labels)?;
        Ok(trainer.finish(rng))
    }

    /// Creates a classifier directly from externally built class-vectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if no class-vectors are supplied.
    pub fn from_class_vectors(class_vectors: Vec<BinaryHypervector>) -> Result<Self, HdcError> {
        if class_vectors.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        Ok(Self { class_vectors })
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.class_vectors.len()
    }

    /// The prototype vector of a class.
    ///
    /// # Panics
    ///
    /// Panics if `label >= self.classes()`.
    #[must_use]
    pub fn class_vector(&self, label: usize) -> &BinaryHypervector {
        &self.class_vectors[label]
    }

    /// Predicts the label of an encoded query: `argmin_i δ(φ(x̂), Mᵢ)`.
    ///
    /// # Panics
    ///
    /// Panics if the query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        hdc_core::similarity::nearest(query, &self.class_vectors)
            .expect("classifier always holds at least one class-vector")
            .0
    }

    /// Predicts and also returns the normalized distance to every
    /// class-vector (useful for confidence/margin analysis).
    ///
    /// # Panics
    ///
    /// Panics if the query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_with_distances(&self, query: &BinaryHypervector) -> (usize, Vec<f64>) {
        let distances = hdc_core::similarity::distances(query, &self.class_vectors);
        let best = distances
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("distances are finite"))
            .expect("non-empty")
            .0;
        (best, distances)
    }

    /// Classifies a batch, returning predicted labels. Serial; prefer
    /// [`predict_batch_par`](Self::predict_batch_par) or
    /// [`predict_rows`](Self::predict_rows) for large batches.
    ///
    /// # Panics
    ///
    /// Panics if any query's dimensionality differs from the model's.
    pub fn predict_batch<'a, I>(&self, queries: I) -> Vec<usize>
    where
        I: IntoIterator<Item = &'a BinaryHypervector>,
    {
        queries.into_iter().map(|q| self.predict(q)).collect()
    }

    /// Classifies a slice of queries in parallel across the worker pool.
    /// Queries are independent, so the labels are bit-identical to (and in
    /// the same order as) the serial [`predict_batch`](Self::predict_batch).
    ///
    /// # Panics
    ///
    /// Panics if any query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_batch_par(&self, queries: &[BinaryHypervector]) -> Vec<usize> {
        if queries.len() < minipool::MIN_PARALLEL_ITEMS {
            return self.predict_batch(queries);
        }
        minipool::par_map_indexed(queries, |_, q| self.predict(q))
    }

    /// Classifies every row of a contiguous [`HypervectorBatch`] in
    /// parallel — the allocation-free end of the batched inference path
    /// (rows are compared against the class-vectors through borrowed
    /// views).
    ///
    /// # Panics
    ///
    /// Panics if the batch's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_rows(&self, batch: &HypervectorBatch) -> Vec<usize> {
        let row_label = |i: usize| {
            hdc_core::similarity::nearest_to_row(batch.row(i), &self.class_vectors)
                .expect("classifier always holds at least one class-vector")
                .0
        };
        if batch.len() < minipool::MIN_PARALLEL_ITEMS {
            return (0..batch.len()).map(row_label).collect();
        }
        minipool::par_generate(batch.len(), row_label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2_468)
    }

    fn noisy_problem(
        rng: &mut StdRng,
        classes: usize,
        per_class: usize,
        noise: f64,
    ) -> (Vec<BinaryHypervector>, Vec<(BinaryHypervector, usize)>) {
        let protos: Vec<_> = (0..classes)
            .map(|_| BinaryHypervector::random(10_000, rng))
            .collect();
        let samples = (0..classes * per_class)
            .map(|i| {
                let c = i % classes;
                (protos[c].corrupt(noise, rng), c)
            })
            .collect();
        (protos, samples)
    }

    #[test]
    fn learns_noisy_prototypes() {
        let mut r = rng();
        let (protos, train) = noisy_problem(&mut r, 5, 20, 0.25);
        let model =
            CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 5, 10_000, &mut r).unwrap();
        let mut correct = 0;
        let total = 200;
        for i in 0..total {
            let c = i % 5;
            let query = protos[c].corrupt(0.25, &mut r);
            if model.predict(&query) == c {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / total as f64 > 0.95,
            "accuracy {correct}/{total}"
        );
    }

    #[test]
    fn class_vector_is_closer_to_own_samples() {
        let mut r = rng();
        let (_, train) = noisy_problem(&mut r, 3, 15, 0.2);
        let model =
            CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000, &mut r).unwrap();
        for (hv, label) in &train {
            let own = model.class_vector(*label).normalized_hamming(hv);
            for other in 0..3 {
                if other != *label {
                    assert!(own < model.class_vector(other).normalized_hamming(hv));
                }
            }
        }
    }

    #[test]
    fn predict_with_distances_is_consistent() {
        let mut r = rng();
        let (_, train) = noisy_problem(&mut r, 4, 10, 0.2);
        let model =
            CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 4, 10_000, &mut r).unwrap();
        let q = &train[0].0;
        let (label, distances) = model.predict_with_distances(q);
        assert_eq!(label, model.predict(q));
        assert_eq!(distances.len(), 4);
        for d in &distances {
            assert!(*d >= distances[label]);
        }
    }

    #[test]
    fn trainer_counts_and_classes() {
        let mut r = rng();
        let mut trainer = CentroidTrainer::new(3, 256).unwrap();
        assert_eq!(trainer.classes(), 3);
        let hv = BinaryHypervector::random(256, &mut r);
        trainer.observe(&hv, 2).unwrap();
        trainer.observe(&hv, 2).unwrap();
        assert_eq!(trainer.counts(), &[0, 0, 2]);
    }

    #[test]
    fn from_parts_round_trips_trainer_state() {
        let mut r = rng();
        let (_, train) = noisy_problem(&mut r, 3, 6, 0.25);
        let mut trainer = CentroidTrainer::new(3, 10_000).unwrap();
        for (hv, label) in &train {
            trainer.observe(hv, *label).unwrap();
        }
        let accumulators: Vec<MajorityAccumulator> =
            (0..3).map(|c| trainer.accumulator(c).clone()).collect();
        let mut restored =
            CentroidTrainer::from_parts(accumulators, trainer.counts().to_vec()).unwrap();
        assert_eq!(restored.counts(), trainer.counts());
        assert_eq!(
            restored.finish_deterministic(TieBreak::Alternate),
            trainer.finish_deterministic(TieBreak::Alternate)
        );
        // Training resumes identically on the restored copy.
        let extra = BinaryHypervector::random(10_000, &mut r);
        restored.observe(&extra, 1).unwrap();
        trainer.observe(&extra, 1).unwrap();
        assert_eq!(
            restored.finish_deterministic(TieBreak::Alternate),
            trainer.finish_deterministic(TieBreak::Alternate)
        );

        // Degenerate reconstructions are refused.
        assert!(CentroidTrainer::from_parts(vec![], vec![]).is_err());
        assert!(
            CentroidTrainer::from_parts(vec![MajorityAccumulator::new(64)], vec![0, 0]).is_err()
        );
        assert!(CentroidTrainer::from_parts(
            vec![MajorityAccumulator::new(64), MajorityAccumulator::new(32)],
            vec![0, 0]
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_range_label() {
        let mut r = rng();
        let mut trainer = CentroidTrainer::new(2, 64).unwrap();
        let hv = BinaryHypervector::random(64, &mut r);
        assert!(matches!(
            trainer.observe(&hv, 2),
            Err(HdcError::LabelOutOfRange {
                label: 2,
                classes: 2
            })
        ));
    }

    #[test]
    fn rejects_degenerate_construction() {
        assert!(CentroidTrainer::new(0, 64).is_err());
        assert!(CentroidTrainer::new(2, 0).is_err());
        assert!(CentroidClassifier::from_class_vectors(vec![]).is_err());
    }

    #[test]
    fn predict_batch_matches_predict() {
        let mut r = rng();
        let (protos, train) = noisy_problem(&mut r, 3, 10, 0.2);
        let model =
            CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000, &mut r).unwrap();
        let queries: Vec<BinaryHypervector> =
            (0..9).map(|i| protos[i % 3].corrupt(0.2, &mut r)).collect();
        let batch = model.predict_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(model.predict(q), *b);
        }
    }

    #[test]
    fn fit_batch_is_bit_identical_to_serial_fit() {
        let mut r = rng();
        let (_, train) = noisy_problem(&mut r, 4, 12, 0.25);
        let hvs: Vec<BinaryHypervector> = train.iter().map(|(h, _)| h.clone()).collect();
        let labels: Vec<usize> = train.iter().map(|(_, l)| *l).collect();
        let batch = HypervectorBatch::from_vectors(&hvs).unwrap();

        // Same RNG seed on both sides: identical counters mean identical
        // tie-break draws, so the models must match bit for bit.
        let mut rng_a = StdRng::seed_from_u64(77);
        let serial =
            CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 4, 10_000, &mut rng_a)
                .unwrap();
        let mut rng_b = StdRng::seed_from_u64(77);
        let batched = CentroidClassifier::fit_batch(&batch, &labels, 4, &mut rng_b).unwrap();
        assert_eq!(serial, batched);
    }

    #[test]
    fn finish_deterministic_is_reproducible_and_matches_counters() {
        let mut r = rng();
        let (_, train) = noisy_problem(&mut r, 3, 9, 0.25);
        let mut trainer = CentroidTrainer::new(3, 10_000).unwrap();
        for (hv, label) in &train {
            trainer.observe(hv, *label).unwrap();
        }
        let a = trainer.finish_deterministic(TieBreak::Alternate);
        let b = trainer.finish_deterministic(TieBreak::Alternate);
        assert_eq!(a, b);
        // Each class vector is the plain deterministic finalize of its
        // accumulator — and an odd per-class sample count leaves no ties, so
        // the random finish agrees too.
        let c = trainer.finish(&mut r);
        assert_eq!(a, c);
    }

    #[test]
    fn parallel_prediction_matches_serial() {
        let mut r = rng();
        let (protos, train) = noisy_problem(&mut r, 3, 10, 0.2);
        let model =
            CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000, &mut r).unwrap();
        let queries: Vec<BinaryHypervector> = (0..23)
            .map(|i| protos[i % 3].corrupt(0.2, &mut r))
            .collect();
        let serial = model.predict_batch(&queries);
        assert_eq!(model.predict_batch_par(&queries), serial);
        let batch = HypervectorBatch::from_vectors(&queries).unwrap();
        assert_eq!(model.predict_rows(&batch), serial);
    }

    #[test]
    fn merge_of_split_trainers_matches_one_pass() {
        let mut r = rng();
        let (_, train) = noisy_problem(&mut r, 3, 8, 0.25);
        let mut whole = CentroidTrainer::new(3, 10_000).unwrap();
        for (hv, label) in &train {
            whole.observe(hv, *label).unwrap();
        }
        // Base sees the first half, a delta trainer collects the rest.
        let mut base = CentroidTrainer::new(3, 10_000).unwrap();
        let mut delta = CentroidTrainer::new(3, 10_000).unwrap();
        let split = train.len() / 2;
        for (hv, label) in &train[..split] {
            base.observe_row(hv.view(), *label).unwrap();
        }
        for (hv, label) in &train[split..] {
            delta.observe_row(hv.view(), *label).unwrap();
        }
        base.merge(&delta);
        assert_eq!(base.counts(), whole.counts());
        for label in 0..3 {
            assert_eq!(
                base.accumulator(label).counts(),
                whole.accumulator(label).counts(),
                "class {label}"
            );
        }
        assert_eq!(
            base.finish_deterministic(TieBreak::Alternate),
            whole.finish_deterministic(TieBreak::Alternate)
        );
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn merge_rejects_class_mismatch() {
        let mut a = CentroidTrainer::new(2, 64).unwrap();
        let b = CentroidTrainer::new(3, 64).unwrap();
        a.merge(&b);
    }

    #[test]
    fn observe_batch_validates_inputs() {
        let mut r = rng();
        let mut trainer = CentroidTrainer::new(2, 64).unwrap();
        let batch =
            HypervectorBatch::from_vectors(&[BinaryHypervector::random(64, &mut r)]).unwrap();
        assert!(matches!(
            trainer.observe_batch(&batch, &[0, 1]),
            Err(HdcError::BatchLengthMismatch { rows: 1, labels: 2 })
        ));
        assert!(matches!(
            trainer.observe_batch(&batch, &[2]),
            Err(HdcError::LabelOutOfRange {
                label: 2,
                classes: 2
            })
        ));
        // A failed call accumulates nothing.
        assert_eq!(trainer.counts(), &[0, 0]);
        trainer.observe_batch(&batch, &[1]).unwrap();
        assert_eq!(trainer.counts(), &[0, 1]);
    }

    #[test]
    fn untrained_class_is_never_catastrophic() {
        // A class that saw no samples gets a tie-broken random vector; it
        // must not absorb other classes' queries.
        let mut r = rng();
        let (protos, train) = noisy_problem(&mut r, 2, 20, 0.2);
        // Train a 3-class model but only feed classes 0 and 1.
        let model =
            CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000, &mut r).unwrap();
        let mut correct = 0;
        for i in 0..100 {
            let c = i % 2;
            if model.predict(&protos[c].corrupt(0.2, &mut r)) == c {
                correct += 1;
            }
        }
        assert!(
            correct > 95,
            "accuracy {correct}/100 with an empty class present"
        );
    }
}
