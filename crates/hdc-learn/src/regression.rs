use hdc_core::{
    kernels, BinaryHypervector, HdcError, HvRef, HypervectorBatch, MajorityAccumulator,
};
use hdc_encode::ScalarEncoder;
use rand::Rng;

/// How a [`RegressionModel`] stores and scores its bundled associations.
///
/// The paper describes bundling as an element-wise majority whose output
/// "represents the mean-vector of its inputs" (§2.1). The two readouts are
/// the two ways of honouring that:
///
/// * [`Readout::Binarized`] — the literal majority bit vector; inference is
///   Hamming distance. Compact (1 bit/dimension), but the sign function
///   discards magnitude. With *correlated* sample encodings (level and
///   circular sets draw each bit from only two span endpoints) the
///   magnitudes carry most of the information, and binarized readout can
///   degenerate to near-constant predictions.
/// * [`Readout::Integer`] — the raw per-dimension counters (the actual
///   mean-vector); inference scores each candidate label by the signed
///   agreement between the counters and `φ(x̂) ⊗ L_j`. Costs 32 bits per
///   dimension but preserves the superposition kernel exactly; this is the
///   readout the paper's regression results are consistent with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Readout {
    /// Majority-binarized model vector, Hamming inference.
    Binarized,
    /// Integer mean-vector, signed-agreement inference (default).
    #[default]
    Integer,
}

/// Incremental trainer for a [`RegressionModel`] (paper §2.3).
///
/// Each training pair `(φ(x), y)` contributes the bound hypervector
/// `φ(x) ⊗ φ_ℓ(y)` to a single bundle. The label encoding `φ_ℓ` must be
/// invertible, so it is a [`ScalarEncoder`] (level hypervectors over the
/// label range).
#[derive(Debug, Clone)]
pub struct RegressionTrainer {
    accumulator: MajorityAccumulator,
    label_encoder: ScalarEncoder,
    observed: usize,
    /// Reusable word buffer for the bound vector `φ(x) ⊗ φ_ℓ(y)` — one
    /// allocation for the trainer's whole lifetime, so the streaming
    /// [`observe_row`](Self::observe_row) path is allocation-free.
    scratch: Vec<u64>,
}

impl RegressionTrainer {
    /// Creates a trainer whose labels are encoded by `label_encoder`.
    #[must_use]
    pub fn new(label_encoder: ScalarEncoder) -> Self {
        let dim = label_encoder.dim();
        Self {
            accumulator: MajorityAccumulator::new(dim),
            label_encoder,
            observed: 0,
            scratch: vec![0u64; dim.div_ceil(64)],
        }
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.label_encoder.dim()
    }

    /// Number of observed training pairs.
    #[must_use]
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Reconstructs a trainer from previously captured state — the inverse
    /// of reading [`accumulator`](Self::accumulator) and
    /// [`observed`](Self::observed), used by snapshot restore. The counters
    /// are adopted verbatim, so the restored trainer finalizes
    /// bit-identically and resumes training where the saved one left off.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the accumulator's
    /// dimensionality differs from the label encoder's.
    pub fn from_parts(
        label_encoder: ScalarEncoder,
        accumulator: MajorityAccumulator,
        observed: usize,
    ) -> Result<Self, HdcError> {
        if accumulator.dim() != label_encoder.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: label_encoder.dim(),
                found: accumulator.dim(),
            });
        }
        let dim = label_encoder.dim();
        Ok(Self {
            accumulator,
            label_encoder,
            observed,
            scratch: vec![0u64; dim.div_ceil(64)],
        })
    }

    /// The label encoder `φ_ℓ`.
    #[must_use]
    pub fn label_encoder(&self) -> &ScalarEncoder {
        &self.label_encoder
    }

    /// The raw bundle accumulator — the counter state a snapshot captures.
    #[must_use]
    pub fn accumulator(&self) -> &MajorityAccumulator {
        &self.accumulator
    }

    /// Adds one `(encoded sample, label)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the sample's dimensionality differs from the label
    /// encoder's.
    pub fn observe(&mut self, sample: &BinaryHypervector, label: f64) {
        self.observe_row(sample.view(), label);
    }

    /// Adds one pair supplied as a borrowed row view (e.g. one row of a
    /// [`HypervectorBatch`]) — the allocation-free form online ingestion
    /// and batched fitting feed observations through. The bound vector
    /// `φ(x) ⊗ φ_ℓ(y)` is computed with one word-wise XOR into the
    /// trainer's reusable scratch buffer, bit-identically to
    /// [`observe`](Self::observe).
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality differs from the label encoder's.
    pub fn observe_row(&mut self, sample: HvRef<'_>, label: f64) {
        let dim = self.label_encoder.dim();
        assert_eq!(
            dim,
            sample.dim(),
            "dimension mismatch: expected {}, found {}",
            dim,
            sample.dim()
        );
        self.scratch.copy_from_slice(sample.as_words());
        kernels::xor_into(
            &mut self.scratch,
            self.label_encoder.encode(label).as_words(),
        );
        self.accumulator.push_row(HvRef::new(dim, &self.scratch));
        self.observed += 1;
    }

    /// Adds a whole batch of `(encoded sample, label)` pairs in one parallel
    /// pass: rows are partitioned across the worker pool, each worker binds
    /// and accumulates into a private partial accumulator, and the partials
    /// are merged in row order. Counter addition commutes, so the resulting
    /// state is **bit-identical** to observing the pairs one by one.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `labels.len()` differs
    /// from `batch.len()` (in which case nothing is accumulated).
    ///
    /// # Panics
    ///
    /// Panics if the batch's dimensionality differs from the label
    /// encoder's (unless the batch is empty).
    pub fn observe_batch(
        &mut self,
        batch: &HypervectorBatch,
        labels: &[f64],
    ) -> Result<(), HdcError> {
        if batch.len() != labels.len() {
            return Err(HdcError::BatchLengthMismatch {
                rows: batch.len(),
                labels: labels.len(),
            });
        }
        if batch.is_empty() {
            return Ok(());
        }
        let dim = self.label_encoder.dim();
        assert_eq!(
            dim,
            batch.dim(),
            "dimension mismatch: expected {}, found {}",
            dim,
            batch.dim()
        );
        // Forking pays a per-worker accumulator plus an O(workers · dim)
        // zero-init and merge; below that, binding straight into the
        // trainer does the same counter arithmetic (still bit-identical).
        let workers = minipool::max_threads();
        if workers <= 1 || batch.len() < workers.max(minipool::MIN_PARALLEL_ITEMS) {
            for (i, &label) in labels.iter().enumerate() {
                self.observe_row(batch.row(i), label);
            }
            return Ok(());
        }
        let label_encoder = &self.label_encoder;
        let partial = minipool::par_fold_ranges(
            batch.len(),
            |range| {
                let mut acc = MajorityAccumulator::new(dim);
                let mut words = vec![0u64; dim.div_ceil(64)];
                let mut observed = 0usize;
                for i in range {
                    words.copy_from_slice(batch.row(i).as_words());
                    kernels::xor_into(&mut words, label_encoder.encode(labels[i]).as_words());
                    acc.push_row(HvRef::new(dim, &words));
                    observed += 1;
                }
                (acc, observed)
            },
            |(mut acc, observed), (other_acc, other_observed)| {
                acc.merge(&other_acc);
                (acc, observed + other_observed)
            },
        );
        if let Some((acc, observed)) = partial {
            self.accumulator.merge(&acc);
            self.observed += observed;
        }
        Ok(())
    }

    /// Finalizes the bundle into a model with the chosen readout
    /// (`rng` is used for majority tie-breaking in the binarized form).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if no pairs were observed.
    pub fn finish_with(
        &self,
        readout: Readout,
        rng: &mut impl Rng,
    ) -> Result<RegressionModel, HdcError> {
        if self.observed == 0 {
            return Err(HdcError::EmptyInput);
        }
        let form = match readout {
            Readout::Binarized => ModelForm::Binary(self.accumulator.finalize_random(rng)),
            Readout::Integer => {
                let counts = self.accumulator.counts().to_vec();
                // Per-label counter sums Σ_{i ∈ ones(L_j)} counts[i] are
                // query-independent; precomputing them here leaves a single
                // intersection walk per (label, query) pair at predict time.
                let label_sums = self
                    .label_encoder
                    .hypervectors()
                    .iter()
                    .map(|label_hv| {
                        let mut sum = 0i64;
                        hdc_core::kernels::for_each_set_bit(label_hv.as_words(), |i| {
                            sum += i64::from(counts[i]);
                        });
                        sum
                    })
                    .collect();
                ModelForm::Counts { counts, label_sums }
            }
        };
        Ok(RegressionModel {
            form,
            label_encoder: self.label_encoder.clone(),
        })
    }

    /// Finalizes with the default [`Readout::Integer`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if no pairs were observed.
    pub fn finish(&self, rng: &mut impl Rng) -> Result<RegressionModel, HdcError> {
        self.finish_with(Readout::Integer, rng)
    }

    /// Finalizes the integer readout **deterministically**: no RNG is
    /// involved (the integer readout never breaks ties bit-wise), so the
    /// same accumulated counters always yield the same model — the property
    /// serving pipelines rely on for replication and snapshot restore.
    ///
    /// Unlike [`finish`](Self::finish) this also accepts an *empty*
    /// trainer: with all-zero counters every label scores zero and
    /// prediction degenerates to a constant grid point, which is the
    /// defined pre-training behaviour of an online-serving pipeline (the
    /// classification analogue finalizes all-zero class-vectors).
    #[must_use]
    pub fn finish_integer(&self) -> RegressionModel {
        let counts = self.accumulator.counts().to_vec();
        let label_sums = self
            .label_encoder
            .hypervectors()
            .iter()
            .map(|label_hv| {
                let mut sum = 0i64;
                kernels::for_each_set_bit(label_hv.as_words(), |i| {
                    sum += i64::from(counts[i]);
                });
                sum
            })
            .collect();
        RegressionModel {
            form: ModelForm::Counts { counts, label_sums },
            label_encoder: self.label_encoder.clone(),
        }
    }
}

/// The paper's regression model (§2.3): a single hypervector
/// `M = ⊕ᵢ φ(xᵢ) ⊗ φ_ℓ(yᵢ)` that *memorizes* sample–label associations in
/// superposition.
///
/// Prediction exploits the self-inverse property of binding:
/// `M ⊗ φ(x̂) ≈ φ_ℓ(ℓ(x̂)) + noise`; the noisy label vector is cleaned up
/// against the label encoder's level set and decoded with `φ_ℓ⁻¹`.
///
/// # Encoding quality matters
///
/// The effective regression kernel is the similarity profile of the *sample*
/// encoding `φ`. A single interpolation-level encoder has only two bit
/// sources per dimension (each level copies its bit from one of the two
/// span endpoints), so superposing many bound pairs degenerates towards the
/// global median. Binding several independently drawn encoders — as the
/// paper's Beijing encoding `Y ⊗ D ⊗ H` does — multiplies their correlation
/// profiles, sharpening the kernel and restoring resolution. Prefer
/// multi-factor sample encodings when accuracy matters.
///
/// # Example
///
/// ```
/// use hdc_encode::ScalarEncoder;
/// use hdc_learn::RegressionTrainer;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(17);
/// // Learn y = x over [0, 1] from 64 samples encoded with 32 input levels.
/// let input = ScalarEncoder::with_levels(0.0, 1.0, 32, 10_000, &mut rng)?;
/// let label = ScalarEncoder::with_levels(0.0, 1.0, 32, 10_000, &mut rng)?;
/// let mut trainer = RegressionTrainer::new(label);
/// for i in 0..64 {
///     let x = i as f64 / 63.0;
///     trainer.observe(input.encode(x), x);
/// }
/// let model = trainer.finish(&mut rng)?;
/// let y = model.predict(input.encode(0.5));
/// assert!((y - 0.5).abs() < 0.15, "predicted {y}");
/// # Ok::<(), hdc_learn::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegressionModel {
    form: ModelForm,
    label_encoder: ScalarEncoder,
}

#[derive(Debug, Clone)]
enum ModelForm {
    Binary(BinaryHypervector),
    Counts {
        counts: Vec<i32>,
        /// `Σ_{i ∈ ones(L_j)} counts[i]` per label — the query-independent
        /// half of the integer-readout score, precomputed at finalize time.
        label_sums: Vec<i64>,
    },
}

impl RegressionModel {
    /// Fits a model in one pass over `(encoded sample, label)` pairs with
    /// the default [`Readout::Integer`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty training set.
    ///
    /// # Panics
    ///
    /// Panics if a sample's dimensionality differs from the label encoder's.
    pub fn fit<'a, I>(
        samples: I,
        label_encoder: ScalarEncoder,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError>
    where
        I: IntoIterator<Item = (&'a BinaryHypervector, f64)>,
    {
        Self::fit_with(samples, label_encoder, Readout::Integer, rng)
    }

    /// Fits a model with an explicit readout.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty training set.
    ///
    /// # Panics
    ///
    /// Panics if a sample's dimensionality differs from the label encoder's.
    pub fn fit_with<'a, I>(
        samples: I,
        label_encoder: ScalarEncoder,
        readout: Readout,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError>
    where
        I: IntoIterator<Item = (&'a BinaryHypervector, f64)>,
    {
        let mut trainer = RegressionTrainer::new(label_encoder);
        for (hv, y) in samples {
            trainer.observe(hv, y);
        }
        trainer.finish_with(readout, rng)
    }

    /// The readout this model was finalized with.
    #[must_use]
    pub fn readout(&self) -> Readout {
        match self.form {
            ModelForm::Binary(_) => Readout::Binarized,
            ModelForm::Counts { .. } => Readout::Integer,
        }
    }

    /// The label encoder `φ_ℓ`.
    #[must_use]
    pub fn label_encoder(&self) -> &ScalarEncoder {
        &self.label_encoder
    }

    /// Predicts the label of an encoded query:
    /// `φ_ℓ⁻¹(argmin_L δ(M ⊗ φ(x̂), L))`, with the distance evaluated
    /// against the binarized or integer model depending on the readout.
    ///
    /// # Panics
    ///
    /// Panics if the query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict(&self, query: &BinaryHypervector) -> f64 {
        self.predict_row(query.view())
    }

    /// [`predict`](Self::predict) over a borrowed row view — the
    /// allocation-light path batched inference uses (no owned copy of the
    /// query is ever made).
    ///
    /// # Panics
    ///
    /// Panics if the view's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_row(&self, query: hdc_core::HvRef<'_>) -> f64 {
        match &self.form {
            ModelForm::Binary(model) => {
                // M ⊗ φ(x̂), computed word-wise into the single owned
                // buffer the decode needs anyway.
                assert_eq!(
                    model.dim(),
                    query.dim(),
                    "dimension mismatch: expected {}, found {}",
                    model.dim(),
                    query.dim()
                );
                let mut words = model.as_words().to_vec();
                hdc_core::kernels::xor_into(&mut words, query.as_words());
                let noisy_label = BinaryHypervector::from_words(model.dim(), words);
                self.label_encoder.decode(&noisy_label)
            }
            ModelForm::Counts { counts, label_sums } => {
                assert_eq!(
                    counts.len(),
                    query.dim(),
                    "dimension mismatch: expected {}, found {}",
                    counts.len(),
                    query.dim()
                );
                // The soft unbinding M ⊗ φ(x̂): XOR with a one-bit inverts
                // the majority bit, i.e. flips the counter's sign.
                // score(L) = Σ_{b ∈ ones(L)} (q_b ? -counts_b : counts_b)
                //          = Σ_{b ∈ ones(L)} counts_b
                //            − 2·Σ_{b ∈ ones(L) ∧ ones(q)} counts_b.
                // The first term is the precomputed `label_sums[j]`, so each
                // label costs exactly one intersection walk and the query
                // needs no flipped-counter buffer — allocation-free.
                let best = self
                    .label_encoder
                    .hypervectors()
                    .iter()
                    .zip(label_sums)
                    .enumerate()
                    .map(|(j, (label_hv, &label_sum))| {
                        let overlap = hdc_core::kernels::masked_sum(
                            counts,
                            label_hv.as_words(),
                            query.as_words(),
                        );
                        (j, label_sum - 2 * overlap)
                    })
                    .max_by_key(|&(_, score)| score)
                    .expect("label encoder holds at least two levels")
                    .0;
                self.label_encoder.value_of(best)
            }
        }
    }

    /// Predicts a batch of encoded queries. Serial; prefer
    /// [`predict_batch_par`](Self::predict_batch_par) or
    /// [`predict_rows`](Self::predict_rows) for large batches.
    ///
    /// # Panics
    ///
    /// Panics if any query's dimensionality differs from the model's.
    pub fn predict_batch<'a, I>(&self, queries: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a BinaryHypervector>,
    {
        queries.into_iter().map(|q| self.predict(q)).collect()
    }

    /// Predicts a slice of queries in parallel across the worker pool.
    /// Queries are independent, so the predictions are bit-identical to
    /// (and in the same order as) the serial
    /// [`predict_batch`](Self::predict_batch).
    ///
    /// # Panics
    ///
    /// Panics if any query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_batch_par(&self, queries: &[BinaryHypervector]) -> Vec<f64> {
        if queries.len() < minipool::MIN_PARALLEL_ITEMS {
            return self.predict_batch(queries);
        }
        minipool::par_map_indexed(queries, |_, q| self.predict(q))
    }

    /// Predicts every row of a contiguous [`HypervectorBatch`](hdc_core::HypervectorBatch)
    /// in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the batch's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_rows(&self, batch: &hdc_core::HypervectorBatch) -> Vec<f64> {
        if batch.len() < minipool::MIN_PARALLEL_ITEMS {
            return batch.rows().map(|row| self.predict_row(row)).collect();
        }
        minipool::par_generate(batch.len(), |i| self.predict_row(batch.row(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(97_531)
    }

    #[test]
    fn memorizes_single_association() {
        let mut r = rng();
        let label_enc = ScalarEncoder::with_levels(0.0, 10.0, 21, 10_000, &mut r).unwrap();
        let x = BinaryHypervector::random(10_000, &mut r);
        let mut trainer = RegressionTrainer::new(label_enc);
        trainer.observe(&x, 7.0);
        let model = trainer.finish(&mut r).unwrap();
        assert!((model.predict(&x) - 7.0).abs() < 0.51);
    }

    /// Two independent level encoders bound together — the multi-factor
    /// pattern the paper's Beijing encoding uses, which sharpens the
    /// regression kernel (see the type-level docs).
    fn two_factor_encoder(r: &mut StdRng) -> impl Fn(f64) -> BinaryHypervector {
        let e1 = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, r).unwrap();
        let e2 = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, r).unwrap();
        move |x: f64| e1.encode(x).bind(e2.encode(x))
    }

    #[test]
    fn learns_identity_function() {
        let mut r = rng();
        let enc = two_factor_encoder(&mut r);
        let label = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..200)
            .map(|i| {
                let x = i as f64 / 199.0;
                (enc(x), x)
            })
            .collect();
        let model =
            RegressionModel::fit(pairs.iter().map(|(h, y)| (h, *y)), label, &mut r).unwrap();
        // The superposition kernel still spans the interval, so edge
        // predictions shrink toward the interior; assert the honest
        // guarantees: a clear monotone trend, interior accuracy, and beating
        // the mean baseline.
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 49.0;
            preds.push(model.predict(&enc(x)));
            truths.push(x);
        }
        assert!(crate::metrics::mae(&preds, &truths) < 0.25);
        assert!(crate::metrics::r2(&preds, &truths) > 0.35);
        assert!(
            preds[44] - preds[5] > 0.15,
            "trend: {} -> {}",
            preds[5],
            preds[44]
        );
        let interior_err = (model.predict(&enc(0.5)) - 0.5).abs();
        assert!(interior_err < 0.2, "interior error {interior_err}");
    }

    #[test]
    fn learns_smooth_nonlinear_function() {
        let mut r = rng();
        let enc = two_factor_encoder(&mut r);
        let label = ScalarEncoder::with_levels(-1.0, 1.0, 48, 10_000, &mut r).unwrap();
        let f = |x: f64| (x * std::f64::consts::TAU).sin();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..300)
            .map(|i| {
                let x = i as f64 / 299.0;
                (enc(x), f(x))
            })
            .collect();
        let model =
            RegressionModel::fit(pairs.iter().map(|(h, y)| (h, *y)), label, &mut r).unwrap();
        let mut sum_sq = 0.0;
        let n = 60;
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let err = model.predict(&enc(x)) - f(x);
            sum_sq += err * err;
        }
        let mse = sum_sq / n as f64;
        // Variance of sin over [0,1] is 0.5; the superposition kernel damps
        // the amplitude, but the model must beat the mean predictor and
        // track the phase.
        assert!(mse < 0.4, "mse = {mse}");
        assert!(
            model.predict(&enc(0.25)) > model.predict(&enc(0.75)),
            "phase must be preserved"
        );
    }

    #[test]
    fn integer_readout_fixes_correlated_encodings() {
        // With a *single* level encoder the binarized readout degenerates
        // (see the Readout docs); the integer readout restores a usable
        // monotone fit. This is the readout ablation in miniature.
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let label_a = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let label_b = label_a.clone();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..200)
            .map(|i| {
                let x = i as f64 / 199.0;
                (input.encode(x).clone(), x)
            })
            .collect();
        let binarized = RegressionModel::fit_with(
            pairs.iter().map(|(h, y)| (h, *y)),
            label_a,
            Readout::Binarized,
            &mut r,
        )
        .unwrap();
        let integer = RegressionModel::fit_with(
            pairs.iter().map(|(h, y)| (h, *y)),
            label_b,
            Readout::Integer,
            &mut r,
        )
        .unwrap();
        assert_eq!(binarized.readout(), Readout::Binarized);
        assert_eq!(integer.readout(), Readout::Integer);
        let spread =
            |m: &RegressionModel| m.predict(input.encode(0.95)) - m.predict(input.encode(0.05));
        assert!(
            spread(&integer) > spread(&binarized) + 0.1,
            "integer {} vs binarized {}",
            spread(&integer),
            spread(&binarized)
        );
        // The integer readout tracks the identity visibly.
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 49.0;
            preds.push(integer.predict(input.encode(x)));
            truths.push(x);
        }
        assert!(crate::metrics::r2(&preds, &truths) > 0.5);
    }

    #[test]
    fn multi_factor_encoding_sharpens_kernel() {
        // Documented behaviour: binding two independent level encoders gives
        // a visibly steeper identity fit than a single encoder.
        let mut r = rng();
        let single = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let label_a = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let model_single = RegressionModel::fit(
            (0..200).map(|i| {
                let x = i as f64 / 199.0;
                (single.encode(x), x)
            }),
            label_a,
            &mut r,
        )
        .unwrap();
        let spread_single =
            model_single.predict(single.encode(1.0)) - model_single.predict(single.encode(0.0));

        let enc = two_factor_encoder(&mut r);
        let label_b = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..200)
            .map(|i| {
                let x = i as f64 / 199.0;
                (enc(x), x)
            })
            .collect();
        let model_pair =
            RegressionModel::fit(pairs.iter().map(|(h, y)| (h, *y)), label_b, &mut r).unwrap();
        let spread_pair = model_pair.predict(&enc(1.0)) - model_pair.predict(&enc(0.0));
        assert!(
            spread_pair > spread_single + 0.1,
            "two-factor spread {spread_pair} vs single {spread_single}"
        );
    }

    #[test]
    fn observe_batch_is_bit_identical_to_serial_observe() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 32, 4_096, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 32, 4_096, &mut r).unwrap();
        let samples: Vec<BinaryHypervector> = (0..67)
            .map(|i| input.encode(i as f64 / 66.0).corrupt(0.02, &mut r))
            .collect();
        let values: Vec<f64> = (0..67).map(|i| i as f64 / 66.0).collect();
        let mut serial = RegressionTrainer::new(label.clone());
        for (hv, &y) in samples.iter().zip(&values) {
            serial.observe(hv, y);
        }
        let mut batched = RegressionTrainer::new(label.clone());
        let arena = HypervectorBatch::from_vectors(&samples).unwrap();
        batched.observe_batch(&arena, &values).unwrap();
        assert_eq!(batched.observed(), serial.observed());
        assert_eq!(batched.accumulator(), serial.accumulator());

        // A length mismatch accumulates nothing.
        let mut untouched = RegressionTrainer::new(label);
        assert!(matches!(
            untouched.observe_batch(&arena, &values[..10]),
            Err(HdcError::BatchLengthMismatch { .. })
        ));
        assert_eq!(untouched.observed(), 0);
        assert!(untouched.accumulator().is_empty());
    }

    #[test]
    fn finish_integer_is_deterministic_and_matches_finish() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 16, 2_048, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, 2_048, &mut r).unwrap();
        let mut trainer = RegressionTrainer::new(label);
        for i in 0..40 {
            let x = i as f64 / 39.0;
            trainer.observe(input.encode(x), x);
        }
        let deterministic = trainer.finish_integer();
        let random = trainer.finish(&mut r).unwrap();
        // The integer readout never consults the RNG, so both forms agree
        // on every query.
        for i in 0..16 {
            let q = input.encode(i as f64 / 15.0);
            assert_eq!(deterministic.predict(q), random.predict(q));
        }
        // An empty trainer finalizes to a constant (defined) predictor
        // instead of erroring — the pre-training state of online serving.
        let empty =
            RegressionTrainer::new(ScalarEncoder::with_levels(0.0, 1.0, 8, 512, &mut r).unwrap())
                .finish_integer();
        let q = BinaryHypervector::random(512, &mut r);
        assert!((0.0..=1.0).contains(&empty.predict(&q)));
        assert_eq!(empty.predict(&q), empty.predict(&q));
    }

    #[test]
    fn from_parts_round_trips_trainer_state() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 16, 1_024, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, 1_024, &mut r).unwrap();
        let mut trainer = RegressionTrainer::new(label.clone());
        for i in 0..20 {
            let x = i as f64 / 19.0;
            trainer.observe(input.encode(x), x);
        }
        let mut restored = RegressionTrainer::from_parts(
            trainer.label_encoder().clone(),
            trainer.accumulator().clone(),
            trainer.observed(),
        )
        .unwrap();
        assert_eq!(restored.observed(), trainer.observed());
        // Training resumes identically, and the finalized models agree.
        restored.observe(input.encode(0.5), 0.5);
        trainer.observe(input.encode(0.5), 0.5);
        assert_eq!(restored.accumulator(), trainer.accumulator());
        let q = input.encode(0.3);
        assert_eq!(
            restored.finish_integer().predict(q),
            trainer.finish_integer().predict(q)
        );
        // A dimension mismatch is refused.
        assert!(matches!(
            RegressionTrainer::from_parts(label, MajorityAccumulator::new(64), 0),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_training_set_is_error() {
        let mut r = rng();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 8, 512, &mut r).unwrap();
        let trainer = RegressionTrainer::new(label);
        assert!(matches!(trainer.finish(&mut r), Err(HdcError::EmptyInput)));
    }

    #[test]
    fn trainer_accessors() {
        let mut r = rng();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 8, 512, &mut r).unwrap();
        let mut trainer = RegressionTrainer::new(label);
        assert_eq!(trainer.dim(), 512);
        assert_eq!(trainer.observed(), 0);
        trainer.observe(&BinaryHypervector::random(512, &mut r), 0.3);
        assert_eq!(trainer.observed(), 1);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 16, 4_096, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, 4_096, &mut r).unwrap();
        let model = RegressionModel::fit(
            (0..40).map(|i| {
                let x = i as f64 / 39.0;
                (input.encode(x), x)
            }),
            label,
            &mut r,
        )
        .unwrap();
        let queries: Vec<BinaryHypervector> = (0..5)
            .map(|i| input.encode(i as f64 / 4.0).clone())
            .collect();
        let batch = model.predict_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(model.predict(q), *b);
        }
        // The parallel forms are bit-identical to the serial loop.
        assert_eq!(model.predict_batch_par(&queries), batch);
        let arena = hdc_core::HypervectorBatch::from_vectors(&queries).unwrap();
        assert_eq!(model.predict_rows(&arena), batch);
    }

    #[test]
    fn model_accessors() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 8, 1_024, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 8, 1_024, &mut r).unwrap();
        let model = RegressionModel::fit([(input.encode(0.5), 0.5)], label, &mut r).unwrap();
        assert_eq!(model.readout(), Readout::Integer);
        assert_eq!(model.label_encoder().levels(), 8);
    }
}
