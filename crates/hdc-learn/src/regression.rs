use hdc_core::{
    kernels, BinaryHypervector, HdcError, HvRef, HypervectorBatch, MajorityAccumulator,
};
use hdc_encode::ScalarEncoder;
use rand::Rng;
use std::ops::Range;

/// How a [`RegressionModel`] stores and scores its bundled associations.
///
/// The paper describes bundling as an element-wise majority whose output
/// "represents the mean-vector of its inputs" (§2.1). The two readouts are
/// the two ways of honouring that:
///
/// * [`Readout::Binarized`] — the literal majority bit vector; inference is
///   Hamming distance. Compact (1 bit/dimension), but the sign function
///   discards magnitude. With *correlated* sample encodings (level and
///   circular sets draw each bit from only two span endpoints) the
///   magnitudes carry most of the information, and binarized readout can
///   degenerate to near-constant predictions.
/// * [`Readout::Integer`] — the raw per-dimension counters (the actual
///   mean-vector); inference scores each candidate label by the signed
///   agreement between the counters and `φ(x̂) ⊗ L_j`. Costs 32 bits per
///   dimension but preserves the superposition kernel exactly; this is the
///   readout the paper's regression results are consistent with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Readout {
    /// Majority-binarized model vector, Hamming inference.
    Binarized,
    /// Integer mean-vector, signed-agreement inference (default).
    #[default]
    Integer,
}

/// Incremental trainer for a [`RegressionModel`] (paper §2.3).
///
/// Each training pair `(φ(x), y)` contributes the bound hypervector
/// `φ(x) ⊗ φ_ℓ(y)` to a single bundle. The label encoding `φ_ℓ` must be
/// invertible, so it is a [`ScalarEncoder`] (level hypervectors over the
/// label range).
#[derive(Debug, Clone)]
pub struct RegressionTrainer {
    accumulator: MajorityAccumulator,
    label_encoder: ScalarEncoder,
    observed: usize,
    /// Reusable word buffer for the bound vector `φ(x) ⊗ φ_ℓ(y)` — one
    /// allocation for the trainer's whole lifetime, so the streaming
    /// [`observe_row`](Self::observe_row) path is allocation-free.
    scratch: Vec<u64>,
}

impl RegressionTrainer {
    /// Creates a trainer whose labels are encoded by `label_encoder`.
    #[must_use]
    pub fn new(label_encoder: ScalarEncoder) -> Self {
        let dim = label_encoder.dim();
        Self {
            accumulator: MajorityAccumulator::new(dim),
            label_encoder,
            observed: 0,
            scratch: vec![0u64; dim.div_ceil(64)],
        }
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.label_encoder.dim()
    }

    /// Number of observed training pairs.
    #[must_use]
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Reconstructs a trainer from previously captured state — the inverse
    /// of reading [`accumulator`](Self::accumulator) and
    /// [`observed`](Self::observed), used by snapshot restore. The counters
    /// are adopted verbatim, so the restored trainer finalizes
    /// bit-identically and resumes training where the saved one left off.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the accumulator's
    /// dimensionality differs from the label encoder's.
    pub fn from_parts(
        label_encoder: ScalarEncoder,
        accumulator: MajorityAccumulator,
        observed: usize,
    ) -> Result<Self, HdcError> {
        if accumulator.dim() != label_encoder.dim() {
            return Err(HdcError::DimensionMismatch {
                expected: label_encoder.dim(),
                found: accumulator.dim(),
            });
        }
        let dim = label_encoder.dim();
        Ok(Self {
            accumulator,
            label_encoder,
            observed,
            scratch: vec![0u64; dim.div_ceil(64)],
        })
    }

    /// The label encoder `φ_ℓ`.
    #[must_use]
    pub fn label_encoder(&self) -> &ScalarEncoder {
        &self.label_encoder
    }

    /// The raw bundle accumulator — the counter state a snapshot captures.
    #[must_use]
    pub fn accumulator(&self) -> &MajorityAccumulator {
        &self.accumulator
    }

    /// Adds one `(encoded sample, label)` pair.
    ///
    /// # Panics
    ///
    /// Panics if the sample's dimensionality differs from the label
    /// encoder's.
    pub fn observe(&mut self, sample: &BinaryHypervector, label: f64) {
        self.observe_row(sample.view(), label);
    }

    /// Adds one pair supplied as a borrowed row view (e.g. one row of a
    /// [`HypervectorBatch`]) — the allocation-free form online ingestion
    /// and batched fitting feed observations through. The bound vector
    /// `φ(x) ⊗ φ_ℓ(y)` is computed with one word-wise XOR into the
    /// trainer's reusable scratch buffer, bit-identically to
    /// [`observe`](Self::observe).
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality differs from the label encoder's.
    pub fn observe_row(&mut self, sample: HvRef<'_>, label: f64) {
        let dim = self.label_encoder.dim();
        assert_eq!(
            dim,
            sample.dim(),
            "dimension mismatch: expected {}, found {}",
            dim,
            sample.dim()
        );
        self.scratch.copy_from_slice(sample.as_words());
        kernels::xor_into(
            &mut self.scratch,
            self.label_encoder.encode(label).as_words(),
        );
        self.accumulator.push_row(HvRef::new(dim, &self.scratch));
        self.observed += 1;
    }

    /// Adds a whole batch of `(encoded sample, label)` pairs in one parallel
    /// pass: rows are partitioned across the worker pool, each worker binds
    /// and accumulates into a private partial accumulator, and the partials
    /// are merged in row order. Counter addition commutes, so the resulting
    /// state is **bit-identical** to observing the pairs one by one.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::BatchLengthMismatch`] if `labels.len()` differs
    /// from `batch.len()` (in which case nothing is accumulated).
    ///
    /// # Panics
    ///
    /// Panics if the batch's dimensionality differs from the label
    /// encoder's (unless the batch is empty).
    pub fn observe_batch(
        &mut self,
        batch: &HypervectorBatch,
        labels: &[f64],
    ) -> Result<(), HdcError> {
        if batch.len() != labels.len() {
            return Err(HdcError::BatchLengthMismatch {
                rows: batch.len(),
                labels: labels.len(),
            });
        }
        if batch.is_empty() {
            return Ok(());
        }
        let dim = self.label_encoder.dim();
        assert_eq!(
            dim,
            batch.dim(),
            "dimension mismatch: expected {}, found {}",
            dim,
            batch.dim()
        );
        // Forking pays a per-worker accumulator plus an O(workers · dim)
        // zero-init and merge; below that, binding straight into the
        // trainer does the same counter arithmetic (still bit-identical).
        let workers = minipool::max_threads();
        if workers <= 1 || batch.len() < workers.max(minipool::MIN_PARALLEL_ITEMS) {
            for (i, &label) in labels.iter().enumerate() {
                self.observe_row(batch.row(i), label);
            }
            return Ok(());
        }
        let label_encoder = &self.label_encoder;
        let partial = minipool::par_fold_ranges(
            batch.len(),
            |range| {
                let mut acc = MajorityAccumulator::new(dim);
                let mut words = vec![0u64; dim.div_ceil(64)];
                let mut observed = 0usize;
                for i in range {
                    words.copy_from_slice(batch.row(i).as_words());
                    kernels::xor_into(&mut words, label_encoder.encode(labels[i]).as_words());
                    acc.push_row(HvRef::new(dim, &words));
                    observed += 1;
                }
                (acc, observed)
            },
            |(mut acc, observed), (other_acc, other_observed)| {
                acc.merge(&other_acc);
                (acc, observed + other_observed)
            },
        );
        if let Some((acc, observed)) = partial {
            self.accumulator.merge(&acc);
            self.observed += observed;
        }
        Ok(())
    }

    /// Finalizes the bundle into a model with the chosen readout
    /// (`rng` is used for majority tie-breaking in the binarized form).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if no pairs were observed.
    pub fn finish_with(
        &self,
        readout: Readout,
        rng: &mut impl Rng,
    ) -> Result<RegressionModel, HdcError> {
        if self.observed == 0 {
            return Err(HdcError::EmptyInput);
        }
        let form = match readout {
            Readout::Binarized => ModelForm::Binary(self.accumulator.finalize_random(rng)),
            Readout::Integer => {
                ModelForm::counts_form(&self.label_encoder, self.accumulator.counts().to_vec())
            }
        };
        Ok(RegressionModel {
            form,
            label_encoder: self.label_encoder.clone(),
        })
    }

    /// Finalizes with the default [`Readout::Integer`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if no pairs were observed.
    pub fn finish(&self, rng: &mut impl Rng) -> Result<RegressionModel, HdcError> {
        self.finish_with(Readout::Integer, rng)
    }

    /// Finalizes the integer readout **deterministically**: no RNG is
    /// involved (the integer readout never breaks ties bit-wise), so the
    /// same accumulated counters always yield the same model — the property
    /// serving pipelines rely on for replication and snapshot restore.
    ///
    /// Unlike [`finish`](Self::finish) this also accepts an *empty*
    /// trainer: with all-zero counters every label scores zero and
    /// prediction degenerates to a constant grid point, which is the
    /// defined pre-training behaviour of an online-serving pipeline (the
    /// classification analogue finalizes all-zero class-vectors).
    #[must_use]
    pub fn finish_integer(&self) -> RegressionModel {
        RegressionModel {
            form: ModelForm::counts_form(&self.label_encoder, self.accumulator.counts().to_vec()),
            label_encoder: self.label_encoder.clone(),
        }
    }
}

/// The paper's regression model (§2.3): a single hypervector
/// `M = ⊕ᵢ φ(xᵢ) ⊗ φ_ℓ(yᵢ)` that *memorizes* sample–label associations in
/// superposition.
///
/// Prediction exploits the self-inverse property of binding:
/// `M ⊗ φ(x̂) ≈ φ_ℓ(ℓ(x̂)) + noise`; the noisy label vector is cleaned up
/// against the label encoder's level set and decoded with `φ_ℓ⁻¹`.
///
/// # Encoding quality matters
///
/// The effective regression kernel is the similarity profile of the *sample*
/// encoding `φ`. A single interpolation-level encoder has only two bit
/// sources per dimension (each level copies its bit from one of the two
/// span endpoints), so superposing many bound pairs degenerates towards the
/// global median. Binding several independently drawn encoders — as the
/// paper's Beijing encoding `Y ⊗ D ⊗ H` does — multiplies their correlation
/// profiles, sharpening the kernel and restoring resolution. Prefer
/// multi-factor sample encodings when accuracy matters.
///
/// # Example
///
/// ```
/// use hdc_encode::ScalarEncoder;
/// use hdc_learn::RegressionTrainer;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(17);
/// // Learn y = x over [0, 1] from 64 samples encoded with 32 input levels.
/// let input = ScalarEncoder::with_levels(0.0, 1.0, 32, 10_000, &mut rng)?;
/// let label = ScalarEncoder::with_levels(0.0, 1.0, 32, 10_000, &mut rng)?;
/// let mut trainer = RegressionTrainer::new(label);
/// for i in 0..64 {
///     let x = i as f64 / 63.0;
///     trainer.observe(input.encode(x), x);
/// }
/// let model = trainer.finish(&mut rng)?;
/// let y = model.predict(input.encode(0.5));
/// assert!((y - 0.5).abs() < 0.15, "predicted {y}");
/// # Ok::<(), hdc_learn::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegressionModel {
    form: ModelForm,
    label_encoder: ScalarEncoder,
}

#[derive(Debug, Clone)]
enum ModelForm {
    Binary(BinaryHypervector),
    Counts {
        counts: Vec<i32>,
        /// `Σ_{i ∈ ones(L_j)} counts[i]` per label — the query-independent
        /// half of the integer-readout score, precomputed at finalize time.
        label_sums: Vec<i64>,
        /// Coarse-to-fine acceleration tables; `None` below the size gate,
        /// in which case prediction always takes the full per-label walk.
        /// Boxed: the table is several `Vec`s wide and would otherwise
        /// dominate the enum's inline size.
        prune: Option<Box<PruneTable>>,
    },
}

impl ModelForm {
    /// Builds the integer-readout form: counters, per-label sums, and (when
    /// the model clears the size gate) the coarse-to-fine tables.
    fn counts_form(label_encoder: &ScalarEncoder, counts: Vec<i32>) -> Self {
        let label_sums: Vec<i64> = label_encoder
            .hypervectors()
            .iter()
            .map(|label_hv| {
                let mut sum = 0i64;
                kernels::for_each_set_bit(label_hv.as_words(), |i| {
                    sum += i64::from(counts[i]);
                });
                sum
            })
            .collect();
        let prune = PruneTable::build(label_encoder, &counts, &label_sums).map(Box::new);
        ModelForm::Counts {
            counts,
            label_sums,
            prune,
        }
    }
}

/// Don't build prune tables below this many packed words (= 1024 bits):
/// tiny models fit in cache and the full walk is already cheap.
const PRUNE_MIN_WORDS: usize = 16;
/// Don't build prune tables below this many label levels: the coarse pass
/// only pays when it can rule out many labels.
const PRUNE_MIN_LEVELS: usize = 4;
/// Shortlists up to this size pay individual exact tail walks; anything
/// larger (an inconclusive margin) falls back to the full-walk path, which
/// scores *every* level exactly via the flip chain.
const PRUNE_SHORTLIST_WALK_MAX: usize = 3;

/// Precomputed, query-independent tables for the coarse-to-fine integer
/// readout (built once at finalize time).
///
/// The exact score of level `j` for query `q` is
/// `score_j = Σ_{i ∈ ones(L_j)} (q_i ? −counts_i : counts_i)`. Splitting the
/// dimensions at word `prefix_words` (`split = prefix_words·64`) gives
/// `score_j = partial_j + tail_j` with
///
/// * `partial_j = prefix_label_sums[j] − 2·masked_sum(counts[..split],
///   L_j[..wc], q[..wc])` — **exact**, one cheap walk over the prefix
///   (1/8 of the vector) per label;
/// * `tail_j = tail_label_sums[j] − 2·tail_masked_j`, which satisfies
///   `|tail_j| ≤ tail_abs_bounds[j] = Σ_{i ∈ tail ones(L_j)} |counts_i|`
///   for **every** query (the bound is the all-signs-align worst case).
///
/// So `score_j ∈ [partial_j − bound_j, partial_j + bound_j]` with certainty,
/// and any level whose upper end sits below `max_k (partial_k − bound_k)`
/// cannot win — the shortlist keeps exactly the levels that still can. The
/// winner is therefore always found among the shortlist, and the selection
/// (including the last-max tie-break of the full walk) is bit-identical.
///
/// When the margin is inconclusive (most models: the worst-case bound is
/// loose), the fallback full walk is itself restructured: level encoders
/// produce label *chains* in which each bit flips only O(1) times from
/// `L_0` to `L_{m−1}`, so the tail masked sums of all `m` levels are
/// reproduced exactly from one full walk of `L_0`'s tail plus the
/// per-transition flip lists (`tail_flips`) — `O(d)` total instead of
/// `O(m·d)`. Integer addition is associative, so the reordered sums are the
/// same exact values the per-label walks produce.
#[derive(Debug, Clone)]
struct PruneTable {
    /// Number of packed words in the coarse prefix (`split = 64·prefix_words`).
    prefix_words: usize,
    /// `Σ_{i ∈ prefix ones(L_j)} counts[i]` per label.
    prefix_label_sums: Vec<i64>,
    /// `Σ_{i ∈ tail ones(L_j)} counts[i]` per label.
    tail_label_sums: Vec<i64>,
    /// `Σ_{i ∈ tail ones(L_j)} |counts[i]|` per label — the worst-case
    /// margin bound on the tail term.
    tail_abs_bounds: Vec<i64>,
    /// Flip events of the label chain within the prefix, grouped per
    /// transition by `prefix_flip_offsets`. The coarse partials are
    /// themselves computed chain-incrementally — one dense masked walk
    /// for `L_0`'s prefix, then these events. Exact i64 sums in a
    /// different association order, so the same integers.
    prefix_flips: SparseWalk,
    /// `prefix_flip_offsets[j]` = end of transition `j → j+1` in
    /// [`prefix_flips`](Self::prefix_flips) (one entry per transition).
    prefix_flip_offsets: Vec<u32>,
    /// Flip events of the label chain within the tail, grouped per
    /// transition by `tail_flip_offsets`.
    tail_flips: SparseWalk,
    /// `tail_flip_offsets[j]` = end of transition `j → j+1` in
    /// [`tail_flips`](Self::tail_flips) (one entry per transition).
    tail_flip_offsets: Vec<u32>,
}

/// A sparse list of bit positions paired with the exact signed counter
/// contribution each adds to the running masked overlap when the query
/// has that bit set: `+counts[idx]` for a 0→1 flip, `−counts[idx]` for a
/// 1→0 flip. Counters are frozen when the table is built, so baking them
/// in here turns the query-time walk into a branchless multiply-accumulate
/// over sequential 8-byte entries. (`build` rejects a counter of
/// `i32::MIN`, whose negation does not fit back in an `i32` — any other
/// value round-trips exactly.)
#[derive(Debug, Clone, Default)]
struct SparseWalk {
    /// Absolute bit indices into the query.
    idx: Vec<u32>,
    /// The signed contribution of each index (`±counts[idx]`).
    signed: Vec<i32>,
}

impl SparseWalk {
    fn push(&mut self, idx: u32, signed: i32) {
        self.idx.push(idx);
        self.signed.push(signed);
    }

    fn len(&self) -> usize {
        self.idx.len()
    }

    /// Adds `Σ signed[k] · q[idx[k]]` over `entries` to `overlap` — the
    /// exact (branchless) replay of one chain segment against the query.
    #[inline]
    fn apply(&self, entries: Range<usize>, overlap: &mut i64, qw: &[u64]) {
        for (&i, &s) in self.idx[entries.clone()].iter().zip(&self.signed[entries]) {
            let bit = (qw[(i >> 6) as usize] >> (i & 63)) & 1;
            *overlap += bit as i64 * i64::from(s);
        }
    }
}

/// Collects the flip events of a label chain over the word range
/// `[word_lo, word_hi)`, grouped per transition (one offsets entry per
/// transition), with their signed counter contributions baked in.
fn chain_flips(
    labels: &[BinaryHypervector],
    counts: &[i32],
    word_lo: usize,
    word_hi: usize,
) -> (SparseWalk, Vec<u32>) {
    let mut flips = SparseWalk::default();
    let mut offsets = Vec::with_capacity(labels.len().saturating_sub(1));
    for j in 1..labels.len() {
        let prev = labels[j - 1].as_words();
        let cur = labels[j].as_words();
        for w in word_lo..word_hi {
            let mut diff = prev[w] ^ cur[w];
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                let idx = w * 64 + bit;
                let c = counts[idx];
                let signed = if (cur[w] >> bit) & 1 == 1 { c } else { -c };
                flips.push(idx as u32, signed);
                diff &= diff - 1;
            }
        }
        offsets.push(flips.len() as u32);
    }
    (flips, offsets)
}

impl PruneTable {
    fn build(label_encoder: &ScalarEncoder, counts: &[i32], label_sums: &[i64]) -> Option<Self> {
        let labels = label_encoder.hypervectors();
        let levels = labels.len();
        let dim = counts.len();
        let words = dim.div_ceil(64);
        if words < PRUNE_MIN_WORDS || levels < PRUNE_MIN_LEVELS {
            return None;
        }
        // A counter of i32::MIN cannot be negated exactly in the packed
        // flip entries; unreachable from real training (counts move by ±1
        // per observation), but a restored snapshot could hold anything.
        if counts.contains(&i32::MIN) {
            return None;
        }
        let prefix_words = words / 8;
        let split = prefix_words * 64;
        // The flip chain only pays if the labels really are chain-like
        // (level/circular sets flip each bit O(1) times end to end; arbitrary
        // label sets would cost O(m·d) again).
        let mut total_flips = 0usize;
        for j in 1..levels {
            total_flips += kernels::hamming(labels[j - 1].as_words(), labels[j].as_words());
            if total_flips > 2 * dim {
                return None;
            }
        }
        let mut prefix_label_sums = Vec::with_capacity(levels);
        let mut tail_abs_bounds = Vec::with_capacity(levels);
        for label_hv in labels {
            let lw = label_hv.as_words();
            let mut pre = 0i64;
            kernels::for_each_set_bit(&lw[..prefix_words], |i| pre += i64::from(counts[i]));
            let mut bound = 0i64;
            kernels::for_each_set_bit(&lw[prefix_words..], |i| {
                bound += i64::from(counts[split + i].unsigned_abs());
            });
            prefix_label_sums.push(pre);
            tail_abs_bounds.push(bound);
        }
        let tail_label_sums: Vec<i64> = label_sums
            .iter()
            .zip(&prefix_label_sums)
            .map(|(&total, &pre)| total - pre)
            .collect();
        let (prefix_flips, prefix_flip_offsets) = chain_flips(labels, counts, 0, prefix_words);
        let (tail_flips, tail_flip_offsets) = chain_flips(labels, counts, prefix_words, words);
        Some(Self {
            prefix_words,
            prefix_label_sums,
            tail_label_sums,
            tail_abs_bounds,
            prefix_flips,
            prefix_flip_offsets,
            tail_flips,
            tail_flip_offsets,
        })
    }
}

impl RegressionModel {
    /// Fits a model in one pass over `(encoded sample, label)` pairs with
    /// the default [`Readout::Integer`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty training set.
    ///
    /// # Panics
    ///
    /// Panics if a sample's dimensionality differs from the label encoder's.
    pub fn fit<'a, I>(
        samples: I,
        label_encoder: ScalarEncoder,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError>
    where
        I: IntoIterator<Item = (&'a BinaryHypervector, f64)>,
    {
        Self::fit_with(samples, label_encoder, Readout::Integer, rng)
    }

    /// Fits a model with an explicit readout.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty training set.
    ///
    /// # Panics
    ///
    /// Panics if a sample's dimensionality differs from the label encoder's.
    pub fn fit_with<'a, I>(
        samples: I,
        label_encoder: ScalarEncoder,
        readout: Readout,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError>
    where
        I: IntoIterator<Item = (&'a BinaryHypervector, f64)>,
    {
        let mut trainer = RegressionTrainer::new(label_encoder);
        for (hv, y) in samples {
            trainer.observe(hv, y);
        }
        trainer.finish_with(readout, rng)
    }

    /// The readout this model was finalized with.
    #[must_use]
    pub fn readout(&self) -> Readout {
        match self.form {
            ModelForm::Binary(_) => Readout::Binarized,
            ModelForm::Counts { .. } => Readout::Integer,
        }
    }

    /// The label encoder `φ_ℓ`.
    #[must_use]
    pub fn label_encoder(&self) -> &ScalarEncoder {
        &self.label_encoder
    }

    /// Predicts the label of an encoded query:
    /// `φ_ℓ⁻¹(argmin_L δ(M ⊗ φ(x̂), L))`, with the distance evaluated
    /// against the binarized or integer model depending on the readout.
    ///
    /// # Panics
    ///
    /// Panics if the query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict(&self, query: &BinaryHypervector) -> f64 {
        self.predict_row(query.view())
    }

    /// [`predict`](Self::predict) over a borrowed row view — the
    /// allocation-light path batched inference uses (no owned copy of the
    /// query is ever made).
    ///
    /// # Panics
    ///
    /// Panics if the view's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_row(&self, query: hdc_core::HvRef<'_>) -> f64 {
        match &self.form {
            ModelForm::Binary(model) => {
                // M ⊗ φ(x̂), computed word-wise into the single owned
                // buffer the decode needs anyway.
                assert_eq!(
                    model.dim(),
                    query.dim(),
                    "dimension mismatch: expected {}, found {}",
                    model.dim(),
                    query.dim()
                );
                let mut words = model.as_words().to_vec();
                hdc_core::kernels::xor_into(&mut words, query.as_words());
                let noisy_label = BinaryHypervector::from_words(model.dim(), words);
                self.label_encoder.decode(&noisy_label)
            }
            ModelForm::Counts {
                counts,
                label_sums,
                prune,
            } => {
                assert_eq!(
                    counts.len(),
                    query.dim(),
                    "dimension mismatch: expected {}, found {}",
                    counts.len(),
                    query.dim()
                );
                let best = match prune {
                    Some(table) => Self::best_level_pruned(
                        self.label_encoder.hypervectors(),
                        table,
                        counts,
                        query,
                    ),
                    None => Self::best_level_full(
                        self.label_encoder.hypervectors(),
                        counts,
                        label_sums,
                        query,
                    ),
                };
                self.label_encoder.value_of(best)
            }
        }
    }

    /// [`predict_row`](Self::predict_row) via the unaccelerated full
    /// per-label walk, ignoring any prune tables — the reference path the
    /// coarse-to-fine readout is proptest-compared against, and the
    /// "before" side of the readout benchmarks. Bit-identical to
    /// [`predict_row`](Self::predict_row) by construction (and by test).
    ///
    /// # Panics
    ///
    /// Panics if the view's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_row_full(&self, query: hdc_core::HvRef<'_>) -> f64 {
        match &self.form {
            ModelForm::Binary(_) => self.predict_row(query),
            ModelForm::Counts {
                counts, label_sums, ..
            } => {
                assert_eq!(
                    counts.len(),
                    query.dim(),
                    "dimension mismatch: expected {}, found {}",
                    counts.len(),
                    query.dim()
                );
                let best = Self::best_level_full(
                    self.label_encoder.hypervectors(),
                    counts,
                    label_sums,
                    query,
                );
                self.label_encoder.value_of(best)
            }
        }
    }

    /// Whether the integer readout carries coarse-to-fine prune tables
    /// (models below the size gate, and binarized models, do not).
    #[must_use]
    pub fn is_pruned(&self) -> bool {
        matches!(&self.form, ModelForm::Counts { prune: Some(_), .. })
    }

    /// The original integer readout: one full intersection walk per label.
    ///
    /// The soft unbinding M ⊗ φ(x̂): XOR with a one-bit inverts the
    /// majority bit, i.e. flips the counter's sign.
    /// score(L) = Σ_{b ∈ ones(L)} (q_b ? -counts_b : counts_b)
    ///          = Σ_{b ∈ ones(L)} counts_b
    ///            − 2·Σ_{b ∈ ones(L) ∧ ones(q)} counts_b.
    /// The first term is the precomputed `label_sums[j]`, so each label
    /// costs exactly one intersection walk and the query needs no
    /// flipped-counter buffer — allocation-free.
    fn best_level_full(
        labels: &[BinaryHypervector],
        counts: &[i32],
        label_sums: &[i64],
        query: hdc_core::HvRef<'_>,
    ) -> usize {
        labels
            .iter()
            .zip(label_sums)
            .enumerate()
            .map(|(j, (label_hv, &label_sum))| {
                let overlap =
                    hdc_core::kernels::masked_sum(counts, label_hv.as_words(), query.as_words());
                (j, label_sum - 2 * overlap)
            })
            .max_by_key(|&(_, score)| score)
            .expect("label encoder holds at least two levels")
            .0
    }

    /// The coarse-to-fine integer readout; returns the same level index as
    /// [`best_level_full`](Self::best_level_full) for every query.
    ///
    /// Coarse pass: exact partial scores over the prefix words for every
    /// label. The precomputed worst-case tail bounds turn each partial into
    /// a certain score interval; levels whose upper end is below the best
    /// lower end cannot win and are pruned. A small surviving shortlist
    /// pays individual exact tail walks; an inconclusive margin falls back
    /// to exact tail sums for *all* levels via the flip chain (see
    /// [`PruneTable`]). Ties resolve to the highest level index in both
    /// paths, exactly like the full walk's `max_by_key`.
    fn best_level_pruned(
        labels: &[BinaryHypervector],
        table: &PruneTable,
        counts: &[i32],
        query: hdc_core::HvRef<'_>,
    ) -> usize {
        let levels = labels.len();
        let qw = query.as_words();
        let wc = table.prefix_words;
        let split = wc * 64;
        // Coarse pass: exact prefix partials for every label, computed
        // chain-incrementally — L_0's prefix overlap once, then each
        // transition's few flip events, instead of one masked walk per
        // label. Exact i64 sums in a different association order: the
        // same integers a per-label walk produces.
        let mut partials = Vec::with_capacity(levels);
        // `L_0`'s base overlap pays one dense masked walk (the dispatched
        // kernel); every other level is a few chain deltas away.
        let mut prefix_overlap =
            kernels::masked_sum(&counts[..split], &labels[0].as_words()[..wc], &qw[..wc]);
        partials.push(table.prefix_label_sums[0] - 2 * prefix_overlap);
        let mut start = 0usize;
        for j in 1..levels {
            let end = table.prefix_flip_offsets[j - 1] as usize;
            table
                .prefix_flips
                .apply(start..end, &mut prefix_overlap, qw);
            start = end;
            partials.push(table.prefix_label_sums[j] - 2 * prefix_overlap);
        }
        let best_lower = partials
            .iter()
            .zip(&table.tail_abs_bounds)
            .map(|(&p, &b)| p - b)
            .max()
            .expect("label encoder holds at least two levels");
        let shortlist: Vec<usize> = (0..levels)
            .filter(|&j| partials[j] + table.tail_abs_bounds[j] >= best_lower)
            .collect();
        if shortlist.len() <= PRUNE_SHORTLIST_WALK_MAX {
            // Fine pass: only the shortlist pays an exact tail walk. Every
            // level that could possibly win is in the shortlist (excluded
            // levels sit strictly below some included level's exact score),
            // so the last-max scan over it reproduces the full argmax.
            let mut best_j = shortlist[0];
            let mut best = i64::MIN;
            for &j in &shortlist {
                let tail_overlap =
                    kernels::masked_sum(&counts[split..], &labels[j].as_words()[wc..], &qw[wc..]);
                let exact = partials[j] + table.tail_label_sums[j] - 2 * tail_overlap;
                if exact >= best {
                    best = exact;
                    best_j = j;
                }
            }
            best_j
        } else {
            // Inconclusive margin: fall back to the full walk, restructured
            // as one exact tail walk of L_0 plus chain deltas — every
            // level's score is computed exactly, none skipped.
            let mut tail_overlap =
                kernels::masked_sum(&counts[split..], &labels[0].as_words()[wc..], &qw[wc..]);
            let mut best = partials[0] + table.tail_label_sums[0] - 2 * tail_overlap;
            let mut best_j = 0;
            let mut start = 0usize;
            for (j, &partial) in partials.iter().enumerate().skip(1) {
                let end = table.tail_flip_offsets[j - 1] as usize;
                table.tail_flips.apply(start..end, &mut tail_overlap, qw);
                start = end;
                let exact = partial + table.tail_label_sums[j] - 2 * tail_overlap;
                if exact >= best {
                    best = exact;
                    best_j = j;
                }
            }
            best_j
        }
    }

    /// Predicts a batch of encoded queries. Serial; prefer
    /// [`predict_batch_par`](Self::predict_batch_par) or
    /// [`predict_rows`](Self::predict_rows) for large batches.
    ///
    /// # Panics
    ///
    /// Panics if any query's dimensionality differs from the model's.
    pub fn predict_batch<'a, I>(&self, queries: I) -> Vec<f64>
    where
        I: IntoIterator<Item = &'a BinaryHypervector>,
    {
        queries.into_iter().map(|q| self.predict(q)).collect()
    }

    /// Predicts a slice of queries in parallel across the worker pool.
    /// Queries are independent, so the predictions are bit-identical to
    /// (and in the same order as) the serial
    /// [`predict_batch`](Self::predict_batch).
    ///
    /// # Panics
    ///
    /// Panics if any query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_batch_par(&self, queries: &[BinaryHypervector]) -> Vec<f64> {
        if queries.len() < minipool::MIN_PARALLEL_ITEMS {
            return self.predict_batch(queries);
        }
        minipool::par_map_indexed(queries, |_, q| self.predict(q))
    }

    /// Predicts every row of a contiguous [`HypervectorBatch`](hdc_core::HypervectorBatch)
    /// in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the batch's dimensionality differs from the model's.
    #[must_use]
    pub fn predict_rows(&self, batch: &hdc_core::HypervectorBatch) -> Vec<f64> {
        if batch.len() < minipool::MIN_PARALLEL_ITEMS {
            return batch.rows().map(|row| self.predict_row(row)).collect();
        }
        minipool::par_generate(batch.len(), |i| self.predict_row(batch.row(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(97_531)
    }

    #[test]
    fn memorizes_single_association() {
        let mut r = rng();
        let label_enc = ScalarEncoder::with_levels(0.0, 10.0, 21, 10_000, &mut r).unwrap();
        let x = BinaryHypervector::random(10_000, &mut r);
        let mut trainer = RegressionTrainer::new(label_enc);
        trainer.observe(&x, 7.0);
        let model = trainer.finish(&mut r).unwrap();
        assert!((model.predict(&x) - 7.0).abs() < 0.51);
    }

    /// Two independent level encoders bound together — the multi-factor
    /// pattern the paper's Beijing encoding uses, which sharpens the
    /// regression kernel (see the type-level docs).
    fn two_factor_encoder(r: &mut StdRng) -> impl Fn(f64) -> BinaryHypervector {
        let e1 = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, r).unwrap();
        let e2 = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, r).unwrap();
        move |x: f64| e1.encode(x).bind(e2.encode(x))
    }

    #[test]
    fn learns_identity_function() {
        let mut r = rng();
        let enc = two_factor_encoder(&mut r);
        let label = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..200)
            .map(|i| {
                let x = i as f64 / 199.0;
                (enc(x), x)
            })
            .collect();
        let model =
            RegressionModel::fit(pairs.iter().map(|(h, y)| (h, *y)), label, &mut r).unwrap();
        // The superposition kernel still spans the interval, so edge
        // predictions shrink toward the interior; assert the honest
        // guarantees: a clear monotone trend, interior accuracy, and beating
        // the mean baseline.
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 49.0;
            preds.push(model.predict(&enc(x)));
            truths.push(x);
        }
        assert!(crate::metrics::mae(&preds, &truths) < 0.25);
        assert!(crate::metrics::r2(&preds, &truths) > 0.35);
        assert!(
            preds[44] - preds[5] > 0.15,
            "trend: {} -> {}",
            preds[5],
            preds[44]
        );
        let interior_err = (model.predict(&enc(0.5)) - 0.5).abs();
        assert!(interior_err < 0.2, "interior error {interior_err}");
    }

    #[test]
    fn learns_smooth_nonlinear_function() {
        let mut r = rng();
        let enc = two_factor_encoder(&mut r);
        let label = ScalarEncoder::with_levels(-1.0, 1.0, 48, 10_000, &mut r).unwrap();
        let f = |x: f64| (x * std::f64::consts::TAU).sin();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..300)
            .map(|i| {
                let x = i as f64 / 299.0;
                (enc(x), f(x))
            })
            .collect();
        let model =
            RegressionModel::fit(pairs.iter().map(|(h, y)| (h, *y)), label, &mut r).unwrap();
        let mut sum_sq = 0.0;
        let n = 60;
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let err = model.predict(&enc(x)) - f(x);
            sum_sq += err * err;
        }
        let mse = sum_sq / n as f64;
        // Variance of sin over [0,1] is 0.5; the superposition kernel damps
        // the amplitude, but the model must beat the mean predictor and
        // track the phase.
        assert!(mse < 0.4, "mse = {mse}");
        assert!(
            model.predict(&enc(0.25)) > model.predict(&enc(0.75)),
            "phase must be preserved"
        );
    }

    #[test]
    fn integer_readout_fixes_correlated_encodings() {
        // With a *single* level encoder the binarized readout degenerates
        // (see the Readout docs); the integer readout restores a usable
        // monotone fit. This is the readout ablation in miniature.
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let label_a = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let label_b = label_a.clone();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..200)
            .map(|i| {
                let x = i as f64 / 199.0;
                (input.encode(x).clone(), x)
            })
            .collect();
        let binarized = RegressionModel::fit_with(
            pairs.iter().map(|(h, y)| (h, *y)),
            label_a,
            Readout::Binarized,
            &mut r,
        )
        .unwrap();
        let integer = RegressionModel::fit_with(
            pairs.iter().map(|(h, y)| (h, *y)),
            label_b,
            Readout::Integer,
            &mut r,
        )
        .unwrap();
        assert_eq!(binarized.readout(), Readout::Binarized);
        assert_eq!(integer.readout(), Readout::Integer);
        let spread =
            |m: &RegressionModel| m.predict(input.encode(0.95)) - m.predict(input.encode(0.05));
        assert!(
            spread(&integer) > spread(&binarized) + 0.1,
            "integer {} vs binarized {}",
            spread(&integer),
            spread(&binarized)
        );
        // The integer readout tracks the identity visibly.
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for i in 0..50 {
            let x = i as f64 / 49.0;
            preds.push(integer.predict(input.encode(x)));
            truths.push(x);
        }
        assert!(crate::metrics::r2(&preds, &truths) > 0.5);
    }

    #[test]
    fn multi_factor_encoding_sharpens_kernel() {
        // Documented behaviour: binding two independent level encoders gives
        // a visibly steeper identity fit than a single encoder.
        let mut r = rng();
        let single = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let label_a = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let model_single = RegressionModel::fit(
            (0..200).map(|i| {
                let x = i as f64 / 199.0;
                (single.encode(x), x)
            }),
            label_a,
            &mut r,
        )
        .unwrap();
        let spread_single =
            model_single.predict(single.encode(1.0)) - model_single.predict(single.encode(0.0));

        let enc = two_factor_encoder(&mut r);
        let label_b = ScalarEncoder::with_levels(0.0, 1.0, 64, 10_000, &mut r).unwrap();
        let pairs: Vec<(BinaryHypervector, f64)> = (0..200)
            .map(|i| {
                let x = i as f64 / 199.0;
                (enc(x), x)
            })
            .collect();
        let model_pair =
            RegressionModel::fit(pairs.iter().map(|(h, y)| (h, *y)), label_b, &mut r).unwrap();
        let spread_pair = model_pair.predict(&enc(1.0)) - model_pair.predict(&enc(0.0));
        assert!(
            spread_pair > spread_single + 0.1,
            "two-factor spread {spread_pair} vs single {spread_single}"
        );
    }

    #[test]
    fn observe_batch_is_bit_identical_to_serial_observe() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 32, 4_096, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 32, 4_096, &mut r).unwrap();
        let samples: Vec<BinaryHypervector> = (0..67)
            .map(|i| input.encode(i as f64 / 66.0).corrupt(0.02, &mut r))
            .collect();
        let values: Vec<f64> = (0..67).map(|i| i as f64 / 66.0).collect();
        let mut serial = RegressionTrainer::new(label.clone());
        for (hv, &y) in samples.iter().zip(&values) {
            serial.observe(hv, y);
        }
        let mut batched = RegressionTrainer::new(label.clone());
        let arena = HypervectorBatch::from_vectors(&samples).unwrap();
        batched.observe_batch(&arena, &values).unwrap();
        assert_eq!(batched.observed(), serial.observed());
        assert_eq!(batched.accumulator(), serial.accumulator());

        // A length mismatch accumulates nothing.
        let mut untouched = RegressionTrainer::new(label);
        assert!(matches!(
            untouched.observe_batch(&arena, &values[..10]),
            Err(HdcError::BatchLengthMismatch { .. })
        ));
        assert_eq!(untouched.observed(), 0);
        assert!(untouched.accumulator().is_empty());
    }

    #[test]
    fn finish_integer_is_deterministic_and_matches_finish() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 16, 2_048, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, 2_048, &mut r).unwrap();
        let mut trainer = RegressionTrainer::new(label);
        for i in 0..40 {
            let x = i as f64 / 39.0;
            trainer.observe(input.encode(x), x);
        }
        let deterministic = trainer.finish_integer();
        let random = trainer.finish(&mut r).unwrap();
        // The integer readout never consults the RNG, so both forms agree
        // on every query.
        for i in 0..16 {
            let q = input.encode(i as f64 / 15.0);
            assert_eq!(deterministic.predict(q), random.predict(q));
        }
        // An empty trainer finalizes to a constant (defined) predictor
        // instead of erroring — the pre-training state of online serving.
        let empty =
            RegressionTrainer::new(ScalarEncoder::with_levels(0.0, 1.0, 8, 512, &mut r).unwrap())
                .finish_integer();
        let q = BinaryHypervector::random(512, &mut r);
        assert!((0.0..=1.0).contains(&empty.predict(&q)));
        assert_eq!(empty.predict(&q), empty.predict(&q));
    }

    #[test]
    fn from_parts_round_trips_trainer_state() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 16, 1_024, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, 1_024, &mut r).unwrap();
        let mut trainer = RegressionTrainer::new(label.clone());
        for i in 0..20 {
            let x = i as f64 / 19.0;
            trainer.observe(input.encode(x), x);
        }
        let mut restored = RegressionTrainer::from_parts(
            trainer.label_encoder().clone(),
            trainer.accumulator().clone(),
            trainer.observed(),
        )
        .unwrap();
        assert_eq!(restored.observed(), trainer.observed());
        // Training resumes identically, and the finalized models agree.
        restored.observe(input.encode(0.5), 0.5);
        trainer.observe(input.encode(0.5), 0.5);
        assert_eq!(restored.accumulator(), trainer.accumulator());
        let q = input.encode(0.3);
        assert_eq!(
            restored.finish_integer().predict(q),
            trainer.finish_integer().predict(q)
        );
        // A dimension mismatch is refused.
        assert!(matches!(
            RegressionTrainer::from_parts(label, MajorityAccumulator::new(64), 0),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_training_set_is_error() {
        let mut r = rng();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 8, 512, &mut r).unwrap();
        let trainer = RegressionTrainer::new(label);
        assert!(matches!(trainer.finish(&mut r), Err(HdcError::EmptyInput)));
    }

    #[test]
    fn trainer_accessors() {
        let mut r = rng();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 8, 512, &mut r).unwrap();
        let mut trainer = RegressionTrainer::new(label);
        assert_eq!(trainer.dim(), 512);
        assert_eq!(trainer.observed(), 0);
        trainer.observe(&BinaryHypervector::random(512, &mut r), 0.3);
        assert_eq!(trainer.observed(), 1);
    }

    #[test]
    fn predict_batch_matches_predict() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 16, 4_096, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, 4_096, &mut r).unwrap();
        let model = RegressionModel::fit(
            (0..40).map(|i| {
                let x = i as f64 / 39.0;
                (input.encode(x), x)
            }),
            label,
            &mut r,
        )
        .unwrap();
        let queries: Vec<BinaryHypervector> = (0..5)
            .map(|i| input.encode(i as f64 / 4.0).clone())
            .collect();
        let batch = model.predict_batch(&queries);
        for (q, b) in queries.iter().zip(&batch) {
            assert_eq!(model.predict(q), *b);
        }
        // The parallel forms are bit-identical to the serial loop.
        assert_eq!(model.predict_batch_par(&queries), batch);
        let arena = hdc_core::HypervectorBatch::from_vectors(&queries).unwrap();
        assert_eq!(model.predict_rows(&arena), batch);
    }

    #[test]
    fn pruned_readout_is_bit_identical_to_full_walk() {
        // Trained models across dimensionalities straddling the prune gate
        // and word boundaries: predict_row must equal predict_row_full on
        // every query, bit for bit.
        let mut r = rng();
        for dim in [1_000usize, 1_024, 2_050, 4_096] {
            let input = ScalarEncoder::with_levels(0.0, 1.0, 32, dim, &mut r).unwrap();
            let label = ScalarEncoder::with_levels(0.0, 1.0, 24, dim, &mut r).unwrap();
            let mut trainer = RegressionTrainer::new(label);
            for i in 0..80 {
                let x = i as f64 / 79.0;
                trainer.observe(&input.encode(x).corrupt(0.05, &mut r), x);
            }
            let model = trainer.finish_integer();
            assert!(model.is_pruned(), "dim={dim} should clear the gate");
            for i in 0..40 {
                let q = input.encode(i as f64 / 39.0).corrupt(0.1, &mut r);
                assert_eq!(
                    model.predict(&q),
                    model.predict_row_full(q.view()),
                    "dim={dim} query {i}"
                );
            }
        }
        // Below the gate no tables are built and both paths are the same code.
        let input = ScalarEncoder::with_levels(0.0, 1.0, 8, 512, &mut r).unwrap();
        let small =
            RegressionModel::fit([(input.encode(0.5), 0.5)], input.clone(), &mut r).unwrap();
        assert!(!small.is_pruned());
        let q = input.encode(0.3);
        assert_eq!(small.predict(q), small.predict_row_full(q.view()));
    }

    #[test]
    fn inconclusive_margin_falls_back_to_exact_full_walk() {
        // All-zero prefix counters make every coarse partial identical, so
        // no level can be ruled out: the margin is inconclusive and the
        // chain fallback must score every level exactly.
        let mut r = rng();
        let dim = 2_048usize;
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, dim, &mut r).unwrap();
        let mut counts_acc = MajorityAccumulator::new(dim);
        let probe = BinaryHypervector::random(dim, &mut r);
        counts_acc.push(&probe);
        counts_acc.push(&BinaryHypervector::random(dim, &mut r));
        counts_acc.push(&BinaryHypervector::random(dim, &mut r));
        let trainer = RegressionTrainer::from_parts(label.clone(), counts_acc, 3).unwrap();
        let model = trainer.finish_integer();
        assert!(model.is_pruned());
        for i in 0..24 {
            let q = BinaryHypervector::random(dim, &mut r);
            assert_eq!(model.predict(&q), model.predict_row_full(q.view()), "q {i}");
        }
        assert_eq!(model.predict(&probe), model.predict_row_full(probe.view()));
        // Now a genuinely flat-prefix model: the bundled vector is zero on
        // the whole prefix region, so every coarse partial ties exactly and
        // the shortlist is all levels — the chain fallback carries alone.
        let words = dim / 64;
        let wc = words / 8;
        let mut tail_only = vec![0u64; words];
        for w in tail_only.iter_mut().skip(wc) {
            *w = 0xA5A5_5A5A_0FF0_F00F;
        }
        let mut acc = MajorityAccumulator::new(dim);
        acc.push(&BinaryHypervector::from_words(dim, tail_only));
        let model_flat = RegressionTrainer::from_parts(label, acc, 1)
            .unwrap()
            .finish_integer();
        assert!(model_flat.is_pruned());
        for i in 0..24 {
            let q = BinaryHypervector::random(dim, &mut r);
            assert_eq!(
                model_flat.predict(&q),
                model_flat.predict_row_full(q.view()),
                "flat q {i}"
            );
        }
    }

    #[test]
    fn conclusive_margin_takes_the_shortlist_path() {
        // Zero tail counters give zero margin bounds, so the coarse pass
        // alone decides: the shortlist collapses to the exact leaders and
        // the tie-break must still match the full walk's last-max rule.
        let mut r = rng();
        let dim = 2_048usize;
        let label = ScalarEncoder::with_levels(0.0, 1.0, 16, dim, &mut r).unwrap();
        let words = dim / 64;
        let wc = words / 8;
        let mut prefix_only = vec![0u64; words];
        for w in prefix_only.iter_mut().take(wc) {
            *w = 0x3C3C_C3C3_1E1E_E1E1;
        }
        let mut acc = MajorityAccumulator::new(dim);
        acc.push(&BinaryHypervector::from_words(dim, prefix_only));
        let model = RegressionTrainer::from_parts(label, acc, 1)
            .unwrap()
            .finish_integer();
        assert!(model.is_pruned());
        for i in 0..32 {
            let q = BinaryHypervector::random(dim, &mut r);
            assert_eq!(model.predict(&q), model.predict_row_full(q.view()), "q {i}");
        }
        // The all-zeros query exercises pure ties: every masked_sum is 0 and
        // scores reduce to the label sums; both paths must pick the same
        // (last-max) level.
        let zero = BinaryHypervector::zeros(dim);
        assert_eq!(model.predict(&zero), model.predict_row_full(zero.view()));
    }

    #[test]
    fn model_accessors() {
        let mut r = rng();
        let input = ScalarEncoder::with_levels(0.0, 1.0, 8, 1_024, &mut r).unwrap();
        let label = ScalarEncoder::with_levels(0.0, 1.0, 8, 1_024, &mut r).unwrap();
        let model = RegressionModel::fit([(input.encode(0.5), 0.5)], label, &mut r).unwrap();
        assert_eq!(model.readout(), Readout::Integer);
        assert_eq!(model.label_encoder().levels(), 8);
    }
}
