use hdc_core::{BinaryHypervector, HdcError, MajorityAccumulator};
use rand::Rng;

use crate::{CentroidClassifier, CentroidTrainer};

/// Retraining (perceptron-style) classifier — the standard accuracy
/// refinement of the HDC literature (often called *AdaptHD* or simply
/// "retraining"), provided as an extension on top of the paper's centroid
/// framework.
///
/// Training starts from centroid accumulation; additional epochs then sweep
/// the training set, and every mispredicted sample is **added** to its true
/// class accumulator and **subtracted** from the wrongly predicted one.
/// During refinement, similarity is evaluated against the *integer*
/// (non-binarized) class accumulators, which avoids quantization noise in
/// the update direction.
///
/// # Example
///
/// ```
/// use hdc_core::BinaryHypervector;
/// use hdc_learn::AdaptiveClassifier;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(21);
/// let protos: Vec<_> = (0..4).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
/// let train: Vec<(BinaryHypervector, usize)> = (0..80)
///     .map(|i| (protos[i % 4].corrupt(0.3, &mut rng), i % 4))
///     .collect();
///
/// let mut model = AdaptiveClassifier::fit(
///     train.iter().map(|(h, l)| (h, *l)), 4, 10_000)?;
/// model.refine(train.iter().map(|(h, l)| (h, *l)), 3);
/// let classifier = model.finish(&mut rng);
/// assert_eq!(classifier.predict(&protos[2].corrupt(0.3, &mut rng)), 2);
/// # Ok::<(), hdc_learn::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveClassifier {
    accumulators: Vec<MajorityAccumulator>,
}

impl AdaptiveClassifier {
    /// Initializes the model with one centroid pass over the training data.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for zero classes/dimension or an out-of-range
    /// label.
    ///
    /// # Panics
    ///
    /// Panics if a sample's dimensionality differs from `dim`.
    pub fn fit<'a, I>(samples: I, classes: usize, dim: usize) -> Result<Self, HdcError>
    where
        I: IntoIterator<Item = (&'a BinaryHypervector, usize)>,
    {
        let mut trainer = CentroidTrainer::new(classes, dim)?;
        for (hv, label) in samples {
            trainer.observe(hv, label)?;
        }
        Ok(Self {
            accumulators: trainer.into_accumulators(),
        })
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.accumulators.len()
    }

    /// Predicts with the current (integer) accumulators: the class whose
    /// accumulator has the largest bipolar dot product with the query.
    ///
    /// # Panics
    ///
    /// Panics if the query's dimensionality differs from the model's.
    #[must_use]
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        self.accumulators
            .iter()
            .enumerate()
            .max_by_key(|(_, acc)| acc.dot_bipolar(query))
            .expect("at least one class")
            .0
    }

    /// Runs `epochs` retraining sweeps, returning the number of updates
    /// (mispredictions) in the final epoch. Zero means the training set is
    /// fully separated by the current model.
    ///
    /// # Panics
    ///
    /// Panics if a sample's dimensionality differs from the model's or a
    /// label is out of range.
    pub fn refine<'a, I>(&mut self, samples: I, epochs: usize) -> usize
    where
        I: IntoIterator<Item = (&'a BinaryHypervector, usize)>,
        I::IntoIter: Clone,
    {
        let iter = samples.into_iter();
        let mut last_errors = 0;
        for _ in 0..epochs {
            last_errors = 0;
            for (hv, label) in iter.clone() {
                assert!(
                    label < self.accumulators.len(),
                    "label {label} out of range"
                );
                let predicted = self.predict(hv);
                if predicted != label {
                    self.accumulators[label].push(hv);
                    self.accumulators[predicted].subtract(hv);
                    last_errors += 1;
                }
            }
            if last_errors == 0 {
                break;
            }
        }
        last_errors
    }

    /// Binarizes the accumulators into a plain [`CentroidClassifier`] for
    /// cheap Hamming-distance inference.
    #[must_use]
    pub fn finish(&self, rng: &mut impl Rng) -> CentroidClassifier {
        CentroidClassifier::from_class_vectors(
            self.accumulators
                .iter()
                .map(|a| a.finalize_random(rng))
                .collect(),
        )
        .expect("at least one class accumulator")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13_579)
    }

    /// A hard problem for plain centroids: class 2's distribution is a
    /// *mixture* whose components are each closer to the prototypes of
    /// classes 0 and 1 than to each other.
    fn mixture_problem(
        rng: &mut StdRng,
    ) -> (Vec<BinaryHypervector>, Vec<(BinaryHypervector, usize)>) {
        let a = BinaryHypervector::random(10_000, rng);
        let b = BinaryHypervector::random(10_000, rng);
        let near_a = a.corrupt(0.15, rng);
        let near_b = b.corrupt(0.15, rng);
        let mut train = Vec::new();
        for _ in 0..30 {
            train.push((a.corrupt(0.1, rng), 0));
            train.push((b.corrupt(0.1, rng), 1));
            train.push((near_a.corrupt(0.05, rng), 2));
            train.push((near_b.corrupt(0.05, rng), 2));
        }
        (vec![a, b, near_a, near_b], train)
    }

    #[test]
    fn refinement_reduces_training_errors() {
        let mut r = rng();
        let (_, train) = mixture_problem(&mut r);
        let mut model =
            AdaptiveClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000).unwrap();
        let initial_errors: usize = train.iter().filter(|(h, l)| model.predict(h) != *l).count();
        let final_errors = model.refine(train.iter().map(|(h, l)| (h, *l)), 10);
        assert!(
            final_errors <= initial_errors,
            "refinement must not increase errors: {initial_errors} -> {final_errors}"
        );
    }

    #[test]
    fn refinement_beats_plain_centroid_on_mixture() {
        let mut r = rng();
        let (protos, train) = mixture_problem(&mut r);
        let centroid =
            crate::CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000, &mut r)
                .unwrap();
        let mut adaptive =
            AdaptiveClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000).unwrap();
        adaptive.refine(train.iter().map(|(h, l)| (h, *l)), 15);
        let adaptive = adaptive.finish(&mut r);

        let mut test = Vec::new();
        for _ in 0..50 {
            test.push((protos[0].corrupt(0.1, &mut r), 0));
            test.push((protos[1].corrupt(0.1, &mut r), 1));
            test.push((protos[2].corrupt(0.05, &mut r), 2));
            test.push((protos[3].corrupt(0.05, &mut r), 2));
        }
        let acc = |m: &crate::CentroidClassifier| {
            test.iter().filter(|(h, l)| m.predict(h) == *l).count() as f64 / test.len() as f64
        };
        let centroid_acc = acc(&centroid);
        let adaptive_acc = acc(&adaptive);
        assert!(
            adaptive_acc >= centroid_acc,
            "adaptive {adaptive_acc} should match or beat centroid {centroid_acc}"
        );
    }

    #[test]
    fn perfectly_separable_data_converges_to_zero_errors() {
        let mut r = rng();
        let protos: Vec<_> = (0..3)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        let train: Vec<(BinaryHypervector, usize)> = (0..30)
            .map(|i| (protos[i % 3].corrupt(0.05, &mut r), i % 3))
            .collect();
        let mut model =
            AdaptiveClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000).unwrap();
        let errors = model.refine(train.iter().map(|(h, l)| (h, *l)), 20);
        assert_eq!(errors, 0);
    }

    #[test]
    fn rejects_bad_construction() {
        let empty: Vec<(&BinaryHypervector, usize)> = vec![];
        assert!(AdaptiveClassifier::fit(empty.iter().copied(), 0, 64).is_err());
        let empty2: Vec<(&BinaryHypervector, usize)> = vec![];
        assert!(AdaptiveClassifier::fit(empty2.iter().copied(), 2, 0).is_err());
    }

    #[test]
    fn classes_accessor() {
        let empty: Vec<(&BinaryHypervector, usize)> = vec![];
        let model = AdaptiveClassifier::fit(empty.iter().copied(), 7, 64).unwrap();
        assert_eq!(model.classes(), 7);
    }
}
