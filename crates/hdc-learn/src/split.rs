//! Deterministic train/test splitting utilities.
//!
//! The paper uses both kinds of split: temporal (first 70% train) for the
//! Beijing series and random 70/30 for Mars Express.
//!
//! ```
//! use hdc_learn::split;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let (train, test) = split::temporal(10, 0.7);
//! assert_eq!(train, (0..7).collect::<Vec<_>>());
//! assert_eq!(test, (7..10).collect::<Vec<_>>());
//!
//! let mut rng = StdRng::seed_from_u64(5);
//! let (train, test) = split::random(10, 0.7, &mut rng);
//! assert_eq!(train.len(), 7);
//! assert_eq!(test.len(), 3);
//! ```

use rand::seq::SliceRandom;
use rand::Rng;

/// Splits indices `0..n` into a leading train block and trailing test block
/// (for time series, where training on the future would leak).
///
/// # Panics
///
/// Panics if `train_fraction` is not within `[0, 1]`.
#[must_use]
pub fn temporal(n: usize, train_fraction: f64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction {train_fraction} must lie in [0, 1]"
    );
    let cut = ((n as f64) * train_fraction).round() as usize;
    ((0..cut).collect(), (cut..n).collect())
}

/// Randomly splits indices `0..n` into train and test sets of sizes
/// `round(n·train_fraction)` and the rest.
///
/// # Panics
///
/// Panics if `train_fraction` is not within `[0, 1]`.
#[must_use]
pub fn random(n: usize, train_fraction: f64, rng: &mut impl Rng) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction {train_fraction} must lie in [0, 1]"
    );
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let cut = ((n as f64) * train_fraction).round() as usize;
    let test = indices.split_off(cut);
    (indices, test)
}

/// Stratified random split: preserves the per-class proportions of `labels`
/// in both halves. Returns `(train_indices, test_indices)`.
///
/// # Panics
///
/// Panics if `train_fraction` is not within `[0, 1]`.
#[must_use]
pub fn stratified(
    labels: &[usize],
    train_fraction: f64,
    rng: &mut impl Rng,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train fraction {train_fraction} must lie in [0, 1]"
    );
    let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for mut members in by_class {
        members.shuffle(rng);
        let cut = ((members.len() as f64) * train_fraction).round() as usize;
        test.extend_from_slice(&members[cut..]);
        members.truncate(cut);
        train.extend_from_slice(&members);
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use std::collections::HashSet;

    #[test]
    fn temporal_is_contiguous() {
        let (train, test) = temporal(100, 0.7);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        assert_eq!(*train.last().unwrap() + 1, test[0]);
    }

    #[test]
    fn temporal_extremes() {
        let (train, test) = temporal(5, 0.0);
        assert!(train.is_empty());
        assert_eq!(test.len(), 5);
        let (train, test) = temporal(5, 1.0);
        assert_eq!(train.len(), 5);
        assert!(test.is_empty());
    }

    #[test]
    fn random_split_partitions() {
        let mut r = StdRng::seed_from_u64(1);
        let (train, test) = random(97, 0.7, &mut r);
        assert_eq!(train.len() + test.len(), 97);
        let all: HashSet<usize> = train.iter().chain(&test).copied().collect();
        assert_eq!(all.len(), 97, "no index lost or duplicated");
    }

    #[test]
    fn random_split_is_deterministic_per_seed() {
        let split1 = random(50, 0.6, &mut StdRng::seed_from_u64(7));
        let split2 = random(50, 0.6, &mut StdRng::seed_from_u64(7));
        assert_eq!(split1, split2);
        let split3 = random(50, 0.6, &mut StdRng::seed_from_u64(8));
        assert_ne!(split1, split3, "different seeds, different shuffles");
    }

    #[test]
    fn stratified_preserves_proportions() {
        let labels: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let mut r = StdRng::seed_from_u64(2);
        let (train, test) = stratified(&labels, 0.75, &mut r);
        // 25 members per class, cut = round(25·0.75) = 19 each.
        assert_eq!(train.len(), 76);
        assert_eq!(test.len(), 24);
        for class in 0..4 {
            let in_train = train.iter().filter(|&&i| labels[i] == class).count();
            let in_test = test.iter().filter(|&&i| labels[i] == class).count();
            assert_eq!(in_train, 19, "class {class}");
            assert_eq!(in_test, 6, "class {class}");
        }
    }

    #[test]
    fn stratified_partitions_without_overlap() {
        let labels = vec![0, 1, 0, 1, 0, 1, 2, 2];
        let mut r = StdRng::seed_from_u64(3);
        let (train, test) = stratified(&labels, 0.5, &mut r);
        let overlap: Vec<_> = train.iter().filter(|i| test.contains(i)).collect();
        assert!(overlap.is_empty());
        assert_eq!(train.len() + test.len(), 8);
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn rejects_bad_fraction() {
        let _ = temporal(10, 1.5);
    }
}
