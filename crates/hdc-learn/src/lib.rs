//! HDC learning frameworks: classification and regression in hyperspace.
//!
//! Implements the paper's two learning settings plus a standard retraining
//! extension:
//!
//! * [`CentroidClassifier`] (§2.2) — one class-vector per class, built by
//!   bundling the encodings of that class's training samples; inference is
//!   nearest class-vector by Hamming distance.
//! * [`AdaptiveClassifier`] — perceptron-style retraining on top of the
//!   centroid model (mispredicted samples are added to the correct class
//!   accumulator and subtracted from the predicted one), the ubiquitous
//!   "retraining"/AdaptHD refinement of the HDC literature.
//! * [`RegressionModel`] (§2.3) — a single model hypervector
//!   `M = ⊕ᵢ φ(xᵢ) ⊗ φ_ℓ(yᵢ)`; prediction unbinds the query and decodes the
//!   nearest label hypervector through the invertible label encoder.
//! * [`metrics`] — accuracy, confusion matrices, MSE/MAE/R², and the
//!   normalized errors used in the paper's Figures 7 and 8.
//! * [`split`] — deterministic random and temporal train/test splits.
//!
//! # Example: 3-class classification
//!
//! ```
//! use hdc_core::BinaryHypervector;
//! use hdc_learn::CentroidClassifier;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(9);
//! // Three class prototypes and noisy observations of them.
//! let protos: Vec<_> = (0..3).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
//! let train: Vec<(BinaryHypervector, usize)> = (0..60)
//!     .map(|i| (protos[i % 3].corrupt(0.2, &mut rng), i % 3))
//!     .collect();
//!
//! let model = CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), 3, 10_000, &mut rng)?;
//! let query = protos[1].corrupt(0.2, &mut rng);
//! assert_eq!(model.predict(&query), 1);
//! # Ok::<(), hdc_learn::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod centroid;
pub mod metrics;
mod regression;
pub mod split;

pub use adaptive::AdaptiveClassifier;
pub use centroid::{CentroidClassifier, CentroidTrainer};
pub use hdc_core::HdcError;
pub use regression::{Readout, RegressionModel, RegressionTrainer};
