//! Hyperdimensional consistent hashing.
//!
//! Circular-hypervectors were originally introduced for *hyperdimensional
//! hashing* (Heddes et al., DAC 2022 — reference 13 of the paper this
//! workspace reproduces): a consistent-hash ring whose positions are
//! hypervectors on a circle. Keys and nodes hash to ring positions; a key is
//! served by the node whose hypervector is most similar to the key's.
//!
//! Because similarity degrades *gracefully* with bit errors, the scheme is
//! robust to memory faults: flipping a moderate fraction of a node
//! hypervector's bits rarely changes any lookup, whereas a single bit flip
//! in a classic ring's 64-bit position teleports the node. This crate
//! implements both:
//!
//! * [`HdcHashRing`] — the hyperdimensional ring,
//! * [`ClassicRing`] — a conventional BTreeMap-based consistent-hash ring
//!   (clockwise-successor rule) as the baseline,
//!
//! plus [`modulo_assign`], the naive `hash % n` strawman that remaps almost
//! everything when `n` changes.
//!
//! # Example
//!
//! ```
//! use hdc_hash::HdcHashRing;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut ring = HdcHashRing::new(64, 10_000, &mut rng)?;
//! ring.add_node("server-a");
//! ring.add_node("server-b");
//! ring.add_node("server-c");
//!
//! let owner = ring.lookup(&"user-42").expect("ring is non-empty");
//! // Deterministic: the same key always lands on the same node.
//! assert_eq!(ring.lookup(&"user-42"), Some(owner));
//! # Ok::<(), hdc_hash::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use hdc_basis::{BasisSet, CircularBasis};
use hdc_core::BinaryHypervector;
use rand::Rng;

pub use hdc_core::HdcError;

fn hash_to_u64<K: Hash>(key: &K) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// A consistent-hash ring whose positions are circular hypervectors.
///
/// The ring is quantized into `positions` sectors backed by a
/// [`CircularBasis`]; nodes and keys hash deterministically to sectors, and
/// a key is served by the node with the most similar hypervector. See the
/// crate docs for the robustness story.
#[derive(Debug, Clone)]
pub struct HdcHashRing<N> {
    basis: CircularBasis,
    replicas: usize,
    nodes: Vec<(N, usize, BinaryHypervector)>, // (node, replica id, hv)
}

impl<N: Hash + Eq + Clone> HdcHashRing<N> {
    /// Creates an empty ring with `positions` sectors of `dim`-bit
    /// hypervectors and one ring point per node.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `positions < 2` or `dim == 0`.
    pub fn new(positions: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        Self::with_replicas(positions, dim, 1, rng)
    }

    /// Creates an empty ring where each node occupies `replicas` *virtual
    /// nodes* (distinct hashed ring points). More replicas smooth the load
    /// distribution, exactly as in classic consistent hashing.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `positions < 2`, `dim == 0` or
    /// `replicas == 0` (reported as an invalid basis size).
    pub fn with_replicas(
        positions: usize,
        dim: usize,
        replicas: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        if replicas == 0 {
            return Err(HdcError::InvalidBasisSize {
                requested: 0,
                minimum: 1,
            });
        }
        Ok(Self {
            basis: CircularBasis::new(positions, dim, rng)?,
            replicas,
            nodes: Vec::new(),
        })
    }

    /// Number of virtual nodes per physical node.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Number of ring sectors.
    #[must_use]
    pub fn positions(&self) -> usize {
        self.basis.len()
    }

    /// Number of registered (physical) nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        let mut count = 0;
        let mut last: Option<&N> = None;
        for (n, _, _) in &self.nodes {
            if last != Some(n) {
                count += 1;
                last = Some(n);
            }
        }
        count
    }

    /// The sector a key hashes to.
    #[must_use]
    pub fn position_of<K: Hash>(&self, key: &K) -> usize {
        (hash_to_u64(key) % self.basis.len() as u64) as usize
    }

    fn replica_position(&self, node: &N, replica: usize) -> usize {
        (hash_to_u64(&(replica as u64, hash_to_u64(node))) % self.basis.len() as u64) as usize
    }

    /// Registers a node (all of its virtual replicas) at its hashed ring
    /// positions. Re-adding an existing node resets its hypervectors
    /// (repairing any injected corruption). Returns the sector of the
    /// node's first replica.
    pub fn add_node(&mut self, node: N) -> usize {
        self.nodes.retain(|(n, _, _)| n != &node);
        let first = self.replica_position(&node, 0);
        for replica in 0..self.replicas {
            let position = self.replica_position(&node, replica);
            self.nodes
                .push((node.clone(), replica, self.basis.get(position).clone()));
        }
        first
    }

    /// Removes a node (all of its replicas); returns `true` if present.
    pub fn remove_node(&mut self, node: &N) -> bool {
        let before = self.nodes.len();
        self.nodes.retain(|(n, _, _)| n != node);
        self.nodes.len() != before
    }

    /// Looks up the owning node for a key: the node owning the virtual
    /// replica whose hypervector is most similar to the key's sector
    /// hypervector. Returns `None` on an empty ring.
    #[must_use]
    pub fn lookup<K: Hash>(&self, key: &K) -> Option<&N> {
        let query = self.basis.get(self.position_of(key));
        hdc_core::similarity::nearest(query, self.nodes.iter().map(|(_, _, hv)| hv))
            .map(|(i, _)| &self.nodes[i].0)
    }

    /// Injects bit-flip noise into every stored replica hypervector of a
    /// node (failure injection for robustness experiments). Returns `false`
    /// if the node is not registered.
    ///
    /// # Panics
    ///
    /// Panics if `flip_probability` is not in `[0, 1]`.
    pub fn corrupt_node(&mut self, node: &N, flip_probability: f64, rng: &mut impl Rng) -> bool {
        let mut found = false;
        for entry in self.nodes.iter_mut().filter(|(n, _, _)| n == node) {
            entry.2 = entry.2.corrupt(flip_probability, rng);
            found = true;
        }
        found
    }

    /// Iterates over registered physical nodes (each once, in insertion
    /// order).
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        let mut seen: Vec<&N> = Vec::new();
        self.nodes.iter().filter_map(move |(n, _, _)| {
            if seen.contains(&n) {
                None
            } else {
                seen.push(n);
                Some(n)
            }
        })
    }
}

/// A conventional consistent-hash ring (Karger et al.): nodes at hashed
/// 64-bit positions, each key served by the first node clockwise from the
/// key's position.
#[derive(Debug, Clone, Default)]
pub struct ClassicRing<N> {
    ring: BTreeMap<u64, N>,
}

impl<N: Hash + Eq + Clone> ClassicRing<N> {
    /// Creates an empty ring.
    #[must_use]
    pub fn new() -> Self {
        Self {
            ring: BTreeMap::new(),
        }
    }

    /// Number of registered nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.ring.len()
    }

    /// Registers a node at its hashed position, returning that position.
    pub fn add_node(&mut self, node: N) -> u64 {
        let position = hash_to_u64(&node);
        self.ring.insert(position, node);
        position
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove_node(&mut self, node: &N) -> bool {
        let position = hash_to_u64(node);
        self.ring.remove(&position).is_some()
    }

    /// Looks up the owning node: first node clockwise from the key's
    /// position (wrapping). Returns `None` on an empty ring.
    #[must_use]
    pub fn lookup<K: Hash>(&self, key: &K) -> Option<&N> {
        if self.ring.is_empty() {
            return None;
        }
        let position = hash_to_u64(key);
        self.ring
            .range(position..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, n)| n)
    }

    /// Flips one bit of a node's stored 64-bit ring position — the memory
    /// fault a single bit error causes in a classic ring (the node
    /// teleports). Returns `false` if the node is not registered.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn corrupt_node_position(&mut self, node: &N, bit: u32) -> bool {
        assert!(bit < 64, "bit index {bit} out of range for a u64 position");
        let position = hash_to_u64(node);
        if self.ring.remove(&position).is_none() {
            return false;
        }
        self.ring.insert(position ^ (1u64 << bit), node.clone());
        true
    }
}

/// The naive baseline: assigns a key to bucket `hash(key) % n`. When `n`
/// changes, an expected `1 − 1/max(n, n')` of keys remap — the failure mode
/// consistent hashing exists to avoid.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn modulo_assign<K: Hash>(key: &K, n: usize) -> usize {
    assert!(n > 0, "cannot assign to zero buckets");
    (hash_to_u64(key) % n as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4_242)
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("key-{i}")).collect()
    }

    #[test]
    fn lookup_is_deterministic_and_total() {
        let mut r = rng();
        let mut ring = HdcHashRing::new(64, 4_096, &mut r).unwrap();
        for s in ["a", "b", "c", "d"] {
            ring.add_node(s);
        }
        for key in keys(100) {
            let first = ring.lookup(&key).copied().unwrap();
            let second = ring.lookup(&key).copied().unwrap();
            assert_eq!(first, second);
        }
    }

    #[test]
    fn empty_ring_returns_none() {
        let mut r = rng();
        let ring: HdcHashRing<&str> = HdcHashRing::new(16, 512, &mut r).unwrap();
        assert!(ring.lookup(&"anything").is_none());
        let classic: ClassicRing<&str> = ClassicRing::new();
        assert!(classic.lookup(&"anything").is_none());
    }

    #[test]
    fn load_is_reasonably_balanced() {
        let mut r = rng();
        let mut ring = HdcHashRing::new(256, 4_096, &mut r).unwrap();
        let nodes: Vec<String> = (0..8).map(|i| format!("node-{i}")).collect();
        for n in &nodes {
            ring.add_node(n.clone());
        }
        let mut counts = std::collections::HashMap::new();
        for key in keys(4_000) {
            *counts
                .entry(ring.lookup(&key).unwrap().clone())
                .or_insert(0usize) += 1;
        }
        // Every node serves someone; no node serves more than 60% (single
        // hash point per node gives coarse balance, as in classic schemes).
        assert!(counts.len() >= 6, "only {} of 8 nodes used", counts.len());
        for (node, count) in &counts {
            assert!(*count < 2_400, "node {node} serves {count} of 4000");
        }
    }

    #[test]
    fn node_addition_remaps_minimally() {
        let mut r = rng();
        let mut ring = HdcHashRing::new(128, 4_096, &mut r).unwrap();
        for i in 0..8 {
            ring.add_node(format!("node-{i}"));
        }
        let all = keys(2_000);
        let before: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        ring.add_node("node-new".to_string());
        let after: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        // All movers must move *to* the new node, and the volume should be
        // about 1/9 of the keys.
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(a, "node-new");
            }
        }
        let fraction = moved as f64 / all.len() as f64;
        assert!(fraction < 0.35, "moved fraction {fraction}");
    }

    #[test]
    fn node_removal_only_remaps_its_keys() {
        let mut r = rng();
        let mut ring = HdcHashRing::new(128, 4_096, &mut r).unwrap();
        for i in 0..6 {
            ring.add_node(format!("node-{i}"));
        }
        let all = keys(2_000);
        let before: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        assert!(ring.remove_node(&"node-3".to_string()));
        let after: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        for ((key, b), a) in all.iter().zip(&before).zip(&after) {
            if b != "node-3" {
                assert_eq!(b, a, "key {key} moved although its node survived");
            } else {
                assert_ne!(a, "node-3");
            }
        }
    }

    #[test]
    fn modulo_baseline_remaps_catastrophically() {
        let all = keys(2_000);
        let before: Vec<usize> = all.iter().map(|k| modulo_assign(k, 8)).collect();
        let after: Vec<usize> = all.iter().map(|k| modulo_assign(k, 9)).collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let fraction = moved as f64 / all.len() as f64;
        assert!(
            fraction > 0.7,
            "modulo should remap most keys, moved {fraction}"
        );
    }

    #[test]
    fn hdc_ring_survives_bit_corruption() {
        let mut r = rng();
        let mut ring = HdcHashRing::new(64, 10_000, &mut r).unwrap();
        for i in 0..6 {
            ring.add_node(format!("node-{i}"));
        }
        let all = keys(1_000);
        let before: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        // 5% of one node's bits flip (a severe memory fault).
        assert!(ring.corrupt_node(&"node-2".to_string(), 0.05, &mut r));
        let after: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        let fraction = moved as f64 / all.len() as f64;
        assert!(fraction < 0.10, "corruption moved {fraction} of keys");
        // Re-adding the node repairs it completely.
        ring.add_node("node-2".to_string());
        let repaired: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        assert_eq!(before, repaired);
    }

    #[test]
    fn classic_ring_basics() {
        let mut ring = ClassicRing::new();
        ring.add_node("a");
        ring.add_node("b");
        ring.add_node("c");
        assert_eq!(ring.node_count(), 3);
        let owner = ring.lookup(&"key-1").copied().unwrap();
        assert_eq!(ring.lookup(&"key-1"), Some(&owner));
        assert!(ring.remove_node(&"b"));
        assert!(!ring.remove_node(&"b"));
        assert_eq!(ring.node_count(), 2);
    }

    #[test]
    fn classic_ring_minimal_remapping() {
        let mut ring = ClassicRing::new();
        for i in 0..8 {
            ring.add_node(format!("node-{i}"));
        }
        let all = keys(2_000);
        let before: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        ring.add_node("node-new".to_string());
        let after: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(a, "node-new");
            }
        }
    }

    #[test]
    fn corrupt_missing_node_is_false() {
        let mut r = rng();
        let mut ring: HdcHashRing<&str> = HdcHashRing::new(16, 512, &mut r).unwrap();
        assert!(!ring.corrupt_node(&"ghost", 0.1, &mut r));
    }

    #[test]
    fn classic_single_bit_flip_teleports_node() {
        let mut ring = ClassicRing::new();
        for i in 0..6 {
            ring.add_node(format!("node-{i}"));
        }
        let all = keys(2_000);
        let before: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        assert!(ring.corrupt_node_position(&"node-3".to_string(), 60));
        let after: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        let moved = before.iter().zip(&after).filter(|(b, a)| b != a).count();
        // Flipping a high bit relocates the node across the ring: a large
        // slice of keys changes owner from one bit error.
        assert!(moved > 0, "teleport must move keys");
        assert!(!ring.corrupt_node_position(&"ghost".to_string(), 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn classic_corrupt_rejects_bad_bit() {
        let mut ring = ClassicRing::new();
        ring.add_node("a");
        let _ = ring.corrupt_node_position(&"a", 64);
    }

    #[test]
    fn accessors() {
        let mut r = rng();
        let mut ring = HdcHashRing::new(32, 1_024, &mut r).unwrap();
        assert_eq!(ring.positions(), 32);
        assert_eq!(ring.replicas(), 1);
        ring.add_node("x");
        assert_eq!(ring.node_count(), 1);
        assert_eq!(ring.nodes().count(), 1);
        let p = ring.position_of(&"some-key");
        assert!(p < 32);
    }

    #[test]
    fn replicas_smooth_the_load() {
        let mut r = rng();
        let spread_with = |replicas: usize, r: &mut StdRng| -> f64 {
            let mut ring = HdcHashRing::with_replicas(256, 4_096, replicas, r).unwrap();
            for i in 0..6 {
                ring.add_node(format!("node-{i}"));
            }
            let mut counts = std::collections::HashMap::new();
            for key in keys(3_000) {
                *counts
                    .entry(ring.lookup(&key).unwrap().clone())
                    .or_insert(0usize) += 1;
            }
            let max = *counts.values().max().unwrap() as f64;
            let min = counts.values().copied().min().unwrap_or(0) as f64;
            (max - min) / 3_000.0
        };
        let single = spread_with(1, &mut r);
        let replicated = spread_with(8, &mut r);
        assert!(
            replicated < single,
            "8 replicas (spread {replicated}) should balance better than 1 ({single})"
        );
    }

    #[test]
    fn replicated_ring_still_remaps_minimally() {
        let mut r = rng();
        let mut ring = HdcHashRing::with_replicas(256, 4_096, 4, &mut r).unwrap();
        for i in 0..8 {
            ring.add_node(format!("node-{i}"));
        }
        let all = keys(2_000);
        let before: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        ring.add_node("node-new".to_string());
        let after: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        for (b, a) in before.iter().zip(&after) {
            if b != a {
                assert_eq!(a, "node-new");
            }
        }
        // Removal of the new node restores the old assignment exactly.
        assert!(ring.remove_node(&"node-new".to_string()));
        let restored: Vec<String> = all
            .iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect();
        assert_eq!(before, restored);
    }

    #[test]
    fn zero_replicas_is_rejected() {
        let mut r = rng();
        assert!(HdcHashRing::<String>::with_replicas(32, 512, 0, &mut r).is_err());
    }
}
