use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::BinaryHypervector;

/// An associative *item memory*: a keyed store of hypervectors supporting
/// exact lookup by key and noisy lookup ("cleanup") by nearest neighbour.
///
/// Item memories are the bridge between symbols and the hyperspace: encoders
/// store one hypervector per atomic symbol, and decoding a noisy query (for
/// instance the label vector recovered by unbinding a regression model,
/// paper §2.3) is a cleanup operation.
///
/// # Example
///
/// ```
/// use hdc_core::{BinaryHypervector, ItemMemory};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let mut memory = ItemMemory::new();
/// for name in ["sun", "moon", "star"] {
///     memory.insert(name, BinaryHypervector::random(10_000, &mut rng));
/// }
///
/// let noisy = memory.get(&"moon").unwrap().corrupt(0.25, &mut rng);
/// let (key, _, similarity) = memory.cleanup(&noisy).unwrap();
/// assert_eq!(*key, "moon");
/// assert!(similarity > 0.6);
/// ```
#[derive(Clone)]
pub struct ItemMemory<K> {
    entries: Vec<(K, BinaryHypervector)>,
    index: HashMap<K, usize>,
}

impl<K: Eq + Hash + Clone> ItemMemory<K> {
    /// Creates an empty item memory.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of stored items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no items are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores `hv` under `key`, returning the previously stored hypervector
    /// if the key was already present.
    pub fn insert(&mut self, key: K, hv: BinaryHypervector) -> Option<BinaryHypervector> {
        if let Some(&pos) = self.index.get(&key) {
            let old = std::mem::replace(&mut self.entries[pos].1, hv);
            return Some(old);
        }
        self.index.insert(key.clone(), self.entries.len());
        self.entries.push((key, hv));
        None
    }

    /// Exact lookup by key.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&BinaryHypervector> {
        self.index.get(key).map(|&pos| &self.entries[pos].1)
    }

    /// `true` if `key` is stored.
    #[must_use]
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Removes `key`, returning its hypervector if it was stored. The last
    /// entry is swapped into the vacated slot, so removal is `O(1)` but the
    /// insertion order of the remaining items is not preserved.
    pub fn remove(&mut self, key: &K) -> Option<BinaryHypervector> {
        let pos = self.index.remove(key)?;
        let (_, hv) = self.entries.swap_remove(pos);
        if let Some((moved_key, _)) = self.entries.get(pos) {
            self.index.insert(moved_key.clone(), pos);
        }
        Some(hv)
    }

    /// Noisy lookup: returns the `(key, hypervector, similarity)` of the
    /// stored item most similar to `query`, or `None` if the memory is empty.
    ///
    /// # Panics
    ///
    /// Panics if stored hypervectors have a different dimensionality than the
    /// query.
    #[must_use]
    pub fn cleanup(&self, query: &BinaryHypervector) -> Option<(&K, &BinaryHypervector, f64)> {
        crate::similarity::most_similar(query, self.entries.iter().map(|(_, hv)| hv))
            .map(|(i, s)| (&self.entries[i].0, &self.entries[i].1, s))
    }

    /// Iterates over `(key, hypervector)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &BinaryHypervector)> {
        self.entries.iter().map(|(k, hv)| (k, hv))
    }

    /// Consumes the memory, returning its owned `(key, hypervector)` pairs
    /// in insertion order — the move-out path bulk redistribution (e.g.
    /// shard removal) uses instead of cloning every entry.
    #[must_use]
    pub fn into_entries(self) -> Vec<(K, BinaryHypervector)> {
        self.entries
    }

    /// Iterates over stored hypervectors in insertion order.
    pub fn hypervectors(&self) -> impl Iterator<Item = &BinaryHypervector> {
        self.entries.iter().map(|(_, hv)| hv)
    }
}

impl<K: Eq + Hash + Clone> Default for ItemMemory<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> FromIterator<(K, BinaryHypervector)> for ItemMemory<K> {
    fn from_iter<T: IntoIterator<Item = (K, BinaryHypervector)>>(iter: T) -> Self {
        let mut memory = Self::new();
        for (k, hv) in iter {
            memory.insert(k, hv);
        }
        memory
    }
}

impl<K: Eq + Hash + Clone> Extend<(K, BinaryHypervector)> for ItemMemory<K> {
    fn extend<T: IntoIterator<Item = (K, BinaryHypervector)>>(&mut self, iter: T) {
        for (k, hv) in iter {
            self.insert(k, hv);
        }
    }
}

impl<K: fmt::Debug> fmt::Debug for ItemMemory<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ItemMemory")
            .field("len", &self.entries.len())
            .field(
                "keys",
                &self.entries.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn insert_get_round_trip() {
        let mut r = rng();
        let mut mem = ItemMemory::new();
        let a = BinaryHypervector::random(512, &mut r);
        assert!(mem.insert("a", a.clone()).is_none());
        assert_eq!(mem.get(&"a"), Some(&a));
        assert!(mem.contains(&"a"));
        assert!(!mem.contains(&"b"));
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut r = rng();
        let mut mem = ItemMemory::new();
        let first = BinaryHypervector::random(128, &mut r);
        let second = BinaryHypervector::random(128, &mut r);
        mem.insert(1u32, first.clone());
        let old = mem.insert(1u32, second.clone());
        assert_eq!(old, Some(first));
        assert_eq!(mem.get(&1), Some(&second));
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn cleanup_recovers_noisy_items() {
        let mut r = rng();
        let mut mem = ItemMemory::new();
        for i in 0..20u32 {
            mem.insert(i, BinaryHypervector::random(10_000, &mut r));
        }
        for i in 0..20u32 {
            let noisy = mem.get(&i).unwrap().corrupt(0.3, &mut r);
            let (key, _, sim) = mem.cleanup(&noisy).unwrap();
            assert_eq!(*key, i);
            assert!(sim > 0.6);
        }
    }

    #[test]
    fn cleanup_empty_is_none() {
        let mem: ItemMemory<u8> = ItemMemory::new();
        assert!(mem.cleanup(&BinaryHypervector::zeros(8)).is_none());
        assert!(mem.is_empty());
    }

    #[test]
    fn from_iterator_and_iter_preserve_order() {
        let mut r = rng();
        let pairs: Vec<(u8, BinaryHypervector)> = (0..4)
            .map(|i| (i, BinaryHypervector::random(64, &mut r)))
            .collect();
        let mem: ItemMemory<u8> = pairs.clone().into_iter().collect();
        let keys: Vec<u8> = mem.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, [0, 1, 2, 3]);
        assert_eq!(mem.hypervectors().count(), 4);
    }

    #[test]
    fn remove_drops_only_the_key() {
        let mut r = rng();
        let mut mem = ItemMemory::new();
        let hvs: Vec<BinaryHypervector> = (0..5)
            .map(|_| BinaryHypervector::random(128, &mut r))
            .collect();
        for (i, hv) in hvs.iter().enumerate() {
            mem.insert(i, hv.clone());
        }
        assert_eq!(mem.remove(&1), Some(hvs[1].clone()));
        assert_eq!(mem.remove(&1), None);
        assert_eq!(mem.len(), 4);
        // Every surviving key still resolves to its own hypervector
        // (swap-remove must patch the index of the moved entry).
        for i in [0usize, 2, 3, 4] {
            assert_eq!(mem.get(&i), Some(&hvs[i]), "key {i}");
        }
        assert!(!mem.contains(&1));
    }

    #[test]
    fn debug_shows_keys() {
        let mut mem = ItemMemory::new();
        mem.insert("x", BinaryHypervector::zeros(8));
        let s = format!("{mem:?}");
        assert!(s.contains("ItemMemory") && s.contains('x'));
    }
}
