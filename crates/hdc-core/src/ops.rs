//! Free-function forms of the three HDC operations over iterators of
//! hypervectors, convenient for building encoders.
//!
//! ```
//! use hdc_core::{ops, BinaryHypervector};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(11);
//! let vs: Vec<_> = (0..3).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
//!
//! let bound = ops::bind_all(vs.iter()).expect("non-empty");
//! let bundled = ops::bundle(vs.iter(), &mut rng).expect("non-empty");
//! assert!(bundled.normalized_hamming(&vs[0]) < 0.45);
//! # let _ = bound;
//! ```

use rand::Rng;

use crate::{BinaryHypervector, MajorityAccumulator};

/// Binds (XORs) all hypervectors of the iterator together, returning `None`
/// for an empty iterator.
///
/// Binding many vectors is how records such as the paper's Beijing encoding
/// `Y ⊗ D ⊗ H` are formed.
///
/// # Panics
///
/// Panics if the hypervectors do not all share the same dimensionality.
pub fn bind_all<'a, I>(hvs: I) -> Option<BinaryHypervector>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    let mut iter = hvs.into_iter();
    let first = iter.next()?.clone();
    Some(iter.fold(first, |mut acc, hv| {
        acc.bind_assign(hv);
        acc
    }))
}

/// Bundles (majority-votes) all hypervectors of the iterator, breaking ties
/// randomly. Returns `None` for an empty iterator.
///
/// # Panics
///
/// Panics if the hypervectors do not all share the same dimensionality.
pub fn bundle<'a, I>(hvs: I, rng: &mut impl Rng) -> Option<BinaryHypervector>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    let mut iter = hvs.into_iter();
    let first = iter.next()?;
    let mut acc = MajorityAccumulator::new(first.dim());
    acc.push(first);
    for hv in iter {
        acc.push(hv);
    }
    Some(acc.finalize_random(rng))
}

/// Encodes a sequence by bundling position-permuted element hypervectors:
/// `⊕_i Π^i(items[i])` — the word encoding of paper §3.1.
///
/// Returns `None` for an empty sequence.
///
/// # Panics
///
/// Panics if the hypervectors do not all share the same dimensionality.
pub fn bundle_sequence<'a, I>(items: I, rng: &mut impl Rng) -> Option<BinaryHypervector>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    let mut iter = items.into_iter();
    let first = iter.next()?;
    let mut acc = MajorityAccumulator::new(first.dim());
    acc.push(&first.permute(0));
    for (i, hv) in iter.enumerate() {
        acc.push(&hv.permute(i as isize + 1));
    }
    Some(acc.finalize_random(rng))
}

/// Binds position-permuted element hypervectors together:
/// `⊗_i Π^i(items[i])` — the n-gram encoding used for sliding windows.
///
/// Returns `None` for an empty sequence.
///
/// # Panics
///
/// Panics if the hypervectors do not all share the same dimensionality.
pub fn bind_sequence<'a, I>(items: I) -> Option<BinaryHypervector>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    let mut iter = items.into_iter();
    let first = iter.next()?.permute(0);
    Some(iter.enumerate().fold(first, |mut acc, (i, hv)| {
        acc.bind_assign(&hv.permute(i as isize + 1));
        acc
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn bind_all_empty_is_none() {
        assert!(bind_all(std::iter::empty()).is_none());
        assert!(bundle(std::iter::empty(), &mut rng()).is_none());
        assert!(bundle_sequence(std::iter::empty(), &mut rng()).is_none());
        assert!(bind_sequence(std::iter::empty()).is_none());
    }

    #[test]
    fn bind_all_matches_pairwise() {
        let mut r = rng();
        let a = BinaryHypervector::random(1_024, &mut r);
        let b = BinaryHypervector::random(1_024, &mut r);
        let c = BinaryHypervector::random(1_024, &mut r);
        assert_eq!(bind_all([&a, &b, &c]).unwrap(), a.bind(&b).bind(&c));
        assert_eq!(bind_all([&a]).unwrap(), a);
    }

    #[test]
    fn bundle_matches_accumulator() {
        let mut r = rng();
        let vs: Vec<_> = (0..5)
            .map(|_| BinaryHypervector::random(2_048, &mut r))
            .collect();
        // Odd count: no ties, so both paths are deterministic and equal.
        let via_free = bundle(vs.iter(), &mut r.clone()).unwrap();
        let mut acc = MajorityAccumulator::new(2_048);
        acc.extend(vs.iter());
        assert_eq!(via_free, acc.finalize(crate::TieBreak::Zero));
    }

    #[test]
    fn sequence_encoding_is_order_sensitive() {
        let mut r = rng();
        let a = BinaryHypervector::random(10_000, &mut r);
        let b = BinaryHypervector::random(10_000, &mut r);
        let c = BinaryHypervector::random(10_000, &mut r);
        let abc = bind_sequence([&a, &b, &c]).unwrap();
        let acb = bind_sequence([&a, &c, &b]).unwrap();
        assert!((abc.normalized_hamming(&acb) - 0.5).abs() < 0.05);
        // Same order twice is identical.
        assert_eq!(abc, bind_sequence([&a, &b, &c]).unwrap());
    }

    #[test]
    fn bundled_sequence_similar_to_permuted_members() {
        let mut r = rng();
        let items: Vec<_> = (0..3)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        let enc = bundle_sequence(items.iter(), &mut r).unwrap();
        for (i, item) in items.iter().enumerate() {
            let expected = item.permute(i as isize);
            assert!(enc.normalized_hamming(&expected) < 0.4);
            // And dissimilar to the *unpermuted* member at other positions.
            if i > 0 {
                assert!((enc.normalized_hamming(item) - 0.5).abs() < 0.06);
            }
        }
    }
}
