//! A contiguous arena of equally sized hypervectors — the substrate of the
//! batched execution layer.
//!
//! [`HypervectorBatch`] stores `N` hypervectors of dimensionality `d` in a
//! **single** `Vec<u64>` (row-major, [`words_per_row`](HypervectorBatch::words_per_row)
//! words each) instead of `N` separately allocated
//! [`BinaryHypervector`]s. Rows are accessed as borrowed views —
//! [`HvRef`] (shared) and [`HvMut`] (exclusive) — that carry no allocation
//! and hit the same word-slice [`kernels`](crate::kernels) as the owned
//! type, so batched pipelines encode, bind and compare without a heap
//! allocation per sample and with cache-friendly sequential access.
//!
//! [`HypervectorBatch::chunks_mut`] splits the arena into disjoint
//! contiguous row blocks, which is what the workspace's parallel helpers
//! fan out over (each worker owns one block; results are bit-identical to
//! the serial loop).
//!
//! ```
//! use hdc_core::{BinaryHypervector, HypervectorBatch};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let items: Vec<_> = (0..4).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
//! let batch = HypervectorBatch::from_vectors(&items)?;
//! assert_eq!(batch.len(), 4);
//! // Rows are views over the arena, bit-identical to the source vectors.
//! assert_eq!(batch.row(2).hamming(items[2].view()), 0);
//! # Ok::<(), hdc_core::HdcError>(())
//! ```

use crate::{kernels, BinaryHypervector, HdcError, TieBreak};

const WORD_BITS: usize = 64;

/// Every view and row must keep bits at positions `>= dim` zero — the
/// popcount kernels would otherwise count phantom bits.
fn assert_tail_clean(dim: usize, words: &[u64]) {
    let rem = dim % WORD_BITS;
    if rem != 0 {
        if let Some(&last) = words.last() {
            assert!(
                last & !((1u64 << rem) - 1) == 0,
                "bits beyond dimension {dim} are set in the final word; \
                 zero or mask the tail before constructing a view"
            );
        }
    }
}

/// A borrowed, read-only view of one packed hypervector: a dimensionality
/// plus the `u64` words backing it (LSB-first, clean tail).
///
/// Obtained from [`HypervectorBatch::row`] or
/// [`BinaryHypervector::view`]; all comparisons funnel into the
/// word-slice [`kernels`](crate::kernels).
#[derive(Debug, Clone, Copy)]
pub struct HvRef<'a> {
    dim: usize,
    words: &'a [u64],
}

impl<'a> HvRef<'a> {
    /// Creates a view over externally packed words.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `words.len()` is not exactly
    /// `dim.div_ceil(64)`, or any bit at a position `>= dim` in the final
    /// word is set (the kernels rely on a clean tail; see
    /// [`BinaryHypervector::from_words`] for a constructor that masks
    /// instead).
    #[must_use]
    pub fn new(dim: usize, words: &'a [u64]) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        assert_eq!(
            words.len(),
            dim.div_ceil(WORD_BITS),
            "word count does not match dimension {dim}"
        );
        assert_tail_clean(dim, words);
        Self { dim, words }
    }

    /// The dimensionality `d` of the viewed hypervector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed words backing the view.
    #[must_use]
    pub fn as_words(&self) -> &'a [u64] {
        self.words
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.dim,
            "bit index {index} out of range for dimension {}",
            self.dim
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Number of one-bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        kernels::count_ones(self.words)
    }

    /// Hamming distance to another view.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn hamming(&self, other: HvRef<'_>) -> usize {
        assert_eq!(
            self.dim, other.dim,
            "dimension mismatch: expected {}, found {}",
            self.dim, other.dim
        );
        kernels::hamming(self.words, other.words)
    }

    /// Normalized Hamming distance `δ ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn normalized_hamming(&self, other: HvRef<'_>) -> f64 {
        self.hamming(other) as f64 / self.dim as f64
    }

    /// Similarity `1 − δ`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn similarity(&self, other: HvRef<'_>) -> f64 {
        1.0 - self.normalized_hamming(other)
    }

    /// Copies the view into an owned [`BinaryHypervector`].
    #[must_use]
    pub fn to_hypervector(&self) -> BinaryHypervector {
        BinaryHypervector::from_words(self.dim, self.words.to_vec())
    }
}

/// A borrowed, exclusive view of one packed hypervector — the write half of
/// [`HvRef`], handed to in-place encoders
/// (`Encoder::encode_into` in `hdc-encode`) and batch fillers.
#[derive(Debug)]
pub struct HvMut<'a> {
    dim: usize,
    words: &'a mut [u64],
}

impl<'a> HvMut<'a> {
    /// Creates a mutable view over externally packed words.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `words.len()` is not exactly
    /// `dim.div_ceil(64)`, or any bit at a position `>= dim` in the final
    /// word is set — zero the buffer (or mask its tail) before viewing it.
    #[must_use]
    pub fn new(dim: usize, words: &'a mut [u64]) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        assert_eq!(
            words.len(),
            dim.div_ceil(WORD_BITS),
            "word count does not match dimension {dim}"
        );
        assert_tail_clean(dim, words);
        Self { dim, words }
    }

    /// The dimensionality `d` of the viewed hypervector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Reborrows as a read-only view.
    #[must_use]
    pub fn as_ref(&self) -> HvRef<'_> {
        HvRef {
            dim: self.dim,
            words: self.words,
        }
    }

    /// Overwrites this row with the contents of `src`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn copy_from(&mut self, src: HvRef<'_>) {
        assert_eq!(
            self.dim,
            src.dim(),
            "dimension mismatch: expected {}, found {}",
            self.dim,
            src.dim()
        );
        self.words.copy_from_slice(src.as_words());
    }

    /// XORs `src` into this row in place (the binding operation `⊗`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn xor_assign(&mut self, src: HvRef<'_>) {
        assert_eq!(
            self.dim,
            src.dim(),
            "dimension mismatch: expected {}, found {}",
            self.dim,
            src.dim()
        );
        kernels::xor_into(self.words, src.as_words());
    }

    /// Clears the row to all zeros.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites this row with the majority vote of signed per-dimension
    /// counters (bit `i` is 1 iff `counts[i] > 0`, ties resolve via `tie` —
    /// see [`kernels::majority_into`]). The row's tail stays clean.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` differs from the row's dimensionality.
    pub fn set_majority(&mut self, counts: &[i32], tie: TieBreak) {
        assert_eq!(
            self.dim,
            counts.len(),
            "dimension mismatch: expected {}, found {}",
            self.dim,
            counts.len()
        );
        kernels::majority_into(counts, self.words, |i| tie.bit(i));
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.dim,
            "bit index {index} out of range for dimension {}",
            self.dim
        );
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[index / WORD_BITS] |= mask;
        } else {
            self.words[index / WORD_BITS] &= !mask;
        }
    }
}

/// A contiguous, row-major arena of `N` hypervectors sharing one backing
/// `Vec<u64>`: one allocation for the whole batch, cache-friendly
/// sequential rows, and borrowed [`HvRef`]/[`HvMut`] row views instead of
/// per-sample owned vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HypervectorBatch {
    dim: usize,
    words_per_row: usize,
    len: usize,
    words: Vec<u64>,
}

impl HypervectorBatch {
    /// Creates an empty batch for hypervectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self::with_capacity(dim, 0)
    }

    /// Creates an empty batch with arena capacity for `capacity` rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        let words_per_row = dim.div_ceil(WORD_BITS);
        Self {
            dim,
            words_per_row,
            len: 0,
            words: Vec::with_capacity(capacity * words_per_row),
        }
    }

    /// Creates a batch of `len` all-zero rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn zeros(dim: usize, len: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        let words_per_row = dim.div_ceil(WORD_BITS);
        Self {
            dim,
            words_per_row,
            len,
            words: vec![0; len * words_per_row],
        }
    }

    /// Copies a slice of owned hypervectors into a fresh contiguous arena.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty slice (the
    /// dimensionality would be unknown) and
    /// [`HdcError::DimensionMismatch`] if the members disagree on
    /// dimensionality.
    pub fn from_vectors(hvs: &[BinaryHypervector]) -> Result<Self, HdcError> {
        let first = hvs.first().ok_or(HdcError::EmptyInput)?;
        let dim = first.dim();
        let mut batch = Self::with_capacity(dim, hvs.len());
        for hv in hvs {
            if hv.dim() != dim {
                return Err(HdcError::DimensionMismatch {
                    expected: dim,
                    found: hv.dim(),
                });
            }
            batch.push(hv);
        }
        Ok(batch)
    }

    /// The dimensionality `d` shared by every row.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of `u64` words per row (`d.div_ceil(64)`).
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the batch holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The whole arena as one packed word slice (row-major).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Appends a copy of `hv` as a new row.
    ///
    /// # Panics
    ///
    /// Panics if `hv.dim()` differs from the batch's dimensionality.
    pub fn push(&mut self, hv: &BinaryHypervector) {
        self.push_row(hv.view());
    }

    /// Appends a copy of the viewed row.
    ///
    /// # Panics
    ///
    /// Panics if the view's dimensionality differs from the batch's.
    pub fn push_row(&mut self, row: HvRef<'_>) {
        assert_eq!(
            self.dim,
            row.dim(),
            "dimension mismatch: expected {}, found {}",
            self.dim,
            row.dim()
        );
        self.words.extend_from_slice(row.as_words());
        self.len += 1;
    }

    /// Appends an all-zero row and returns a mutable view of it.
    pub fn push_zero_row(&mut self) -> HvMut<'_> {
        self.words.resize(self.words.len() + self.words_per_row, 0);
        self.len += 1;
        self.row_mut(self.len - 1)
    }

    /// A read-only view of row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn row(&self, index: usize) -> HvRef<'_> {
        assert!(
            index < self.len,
            "row {index} out of range for batch of {}",
            self.len
        );
        let start = index * self.words_per_row;
        HvRef {
            dim: self.dim,
            words: &self.words[start..start + self.words_per_row],
        }
    }

    /// A mutable view of row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn row_mut(&mut self, index: usize) -> HvMut<'_> {
        assert!(
            index < self.len,
            "row {index} out of range for batch of {}",
            self.len
        );
        let start = index * self.words_per_row;
        HvMut {
            dim: self.dim,
            words: &mut self.words[start..start + self.words_per_row],
        }
    }

    /// Iterates over all rows as read-only views, in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = HvRef<'_>> {
        let dim = self.dim;
        self.words
            .chunks_exact(self.words_per_row)
            .map(move |words| HvRef { dim, words })
    }

    /// Copies row `index` out into an owned [`BinaryHypervector`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn to_hypervector(&self, index: usize) -> BinaryHypervector {
        self.row(index).to_hypervector()
    }

    /// Copies every row out into owned hypervectors (the inverse of
    /// [`from_vectors`](Self::from_vectors)).
    #[must_use]
    pub fn to_vectors(&self) -> Vec<BinaryHypervector> {
        self.rows().map(|row| row.to_hypervector()).collect()
    }

    /// Splits the arena into disjoint blocks of at most `rows_per_chunk`
    /// consecutive rows, each independently mutable — the hand-off point to
    /// scoped worker threads (every [`BatchChunkMut`] is `Send`).
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_chunk == 0`.
    pub fn chunks_mut(&mut self, rows_per_chunk: usize) -> impl Iterator<Item = BatchChunkMut<'_>> {
        assert!(rows_per_chunk > 0, "rows_per_chunk must be at least 1");
        let dim = self.dim;
        let words_per_row = self.words_per_row;
        self.words
            .chunks_mut(rows_per_chunk * words_per_row)
            .enumerate()
            .map(move |(chunk_index, words)| BatchChunkMut {
                dim,
                words_per_row,
                first_row: chunk_index * rows_per_chunk,
                words,
            })
    }

    /// Removes every row while keeping the arena's allocation, so the batch
    /// can be refilled without touching the allocator — the recycling path
    /// long-running ingestion loops use between micro-batches.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Resets the batch to exactly `len` all-zero rows, reusing the existing
    /// allocation where capacity allows. Equivalent to
    /// [`zeros`](Self::zeros) without the fresh `Vec` — combined with
    /// [`clear`](Self::clear) this lets one scratch arena serve an unbounded
    /// stream of differently sized micro-batches.
    pub fn resize_zeroed(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len * self.words_per_row, 0);
        self.len = len;
    }

    /// Number of rows the arena can hold before reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.words.capacity() / self.words_per_row
    }

    /// Runs `f(row_index, row)` over every row, serially and in order.
    pub fn fill_rows(&mut self, mut f: impl FnMut(usize, HvMut<'_>)) {
        let dim = self.dim;
        for (index, words) in self.words.chunks_exact_mut(self.words_per_row).enumerate() {
            f(index, HvMut { dim, words });
        }
    }
}

/// A block of consecutive rows carved out of a [`HypervectorBatch`] by
/// [`chunks_mut`](HypervectorBatch::chunks_mut); knows its absolute starting
/// row so workers can index global inputs.
#[derive(Debug)]
pub struct BatchChunkMut<'a> {
    dim: usize,
    words_per_row: usize,
    first_row: usize,
    words: &'a mut [u64],
}

impl BatchChunkMut<'_> {
    /// Absolute index (in the parent batch) of this block's first row.
    #[must_use]
    pub fn first_row(&self) -> usize {
        self.first_row
    }

    /// Number of rows in this block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len() / self.words_per_row
    }

    /// `true` if the block holds no rows (never produced by `chunks_mut`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates over `(absolute_row_index, mutable_row_view)` pairs.
    pub fn rows_mut(&mut self) -> impl Iterator<Item = (usize, HvMut<'_>)> {
        let dim = self.dim;
        let first_row = self.first_row;
        self.words
            .chunks_exact_mut(self.words_per_row)
            .enumerate()
            .map(move |(offset, words)| (first_row + offset, HvMut { dim, words }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBA7C)
    }

    #[test]
    fn round_trip_from_and_to_vectors() {
        let mut r = rng();
        for dim in [1usize, 63, 64, 65, 1000] {
            let items: Vec<_> = (0..5)
                .map(|_| BinaryHypervector::random(dim, &mut r))
                .collect();
            let batch = HypervectorBatch::from_vectors(&items).unwrap();
            assert_eq!(batch.len(), 5);
            assert_eq!(batch.dim(), dim);
            assert_eq!(batch.to_vectors(), items);
            for (i, item) in items.iter().enumerate() {
                assert_eq!(batch.row(i).hamming(item.view()), 0);
                assert_eq!(batch.to_hypervector(i), *item);
            }
        }
    }

    #[test]
    fn from_vectors_rejects_empty_and_mismatched() {
        assert!(matches!(
            HypervectorBatch::from_vectors(&[]),
            Err(HdcError::EmptyInput)
        ));
        let mut r = rng();
        let items = vec![
            BinaryHypervector::random(64, &mut r),
            BinaryHypervector::random(65, &mut r),
        ];
        assert!(matches!(
            HypervectorBatch::from_vectors(&items),
            Err(HdcError::DimensionMismatch {
                expected: 64,
                found: 65
            })
        ));
    }

    #[test]
    fn rows_iterate_in_order() {
        let mut r = rng();
        let items: Vec<_> = (0..7)
            .map(|_| BinaryHypervector::random(130, &mut r))
            .collect();
        let batch = HypervectorBatch::from_vectors(&items).unwrap();
        let collected: Vec<BinaryHypervector> =
            batch.rows().map(|row| row.to_hypervector()).collect();
        assert_eq!(collected, items);
        assert_eq!(batch.rows().len(), 7);
    }

    #[test]
    fn row_mut_edits_are_visible() {
        let mut batch = HypervectorBatch::zeros(100, 3);
        batch.row_mut(1).set(99, true);
        assert!(batch.row(1).get(99));
        assert!(!batch.row(0).get(99));
        assert_eq!(batch.row(1).count_ones(), 1);
        batch.row_mut(1).clear();
        assert_eq!(batch.row(1).count_ones(), 0);
    }

    #[test]
    fn push_zero_row_extends() {
        let mut r = rng();
        let mut batch = HypervectorBatch::new(70);
        let hv = BinaryHypervector::random(70, &mut r);
        {
            let mut row = batch.push_zero_row();
            row.copy_from(hv.view());
        }
        batch.push(&hv);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.row(0).hamming(batch.row(1)), 0);
    }

    #[test]
    fn view_operations_match_owned() {
        let mut r = rng();
        let a = BinaryHypervector::random(777, &mut r);
        let b = BinaryHypervector::random(777, &mut r);
        assert_eq!(a.view().hamming(b.view()), a.hamming(&b));
        assert_eq!(a.view().count_ones(), a.count_ones());
        assert_eq!(a.view().similarity(b.view()), a.similarity(&b));
        let mut bound = a.clone();
        bound.bind_assign(&b);
        let mut batch = HypervectorBatch::from_vectors(std::slice::from_ref(&a)).unwrap();
        batch.row_mut(0).xor_assign(b.view());
        assert_eq!(batch.to_hypervector(0), bound);
    }

    #[test]
    fn chunks_cover_all_rows_once() {
        let mut r = rng();
        let items: Vec<_> = (0..11)
            .map(|_| BinaryHypervector::random(200, &mut r))
            .collect();
        let mut batch = HypervectorBatch::zeros(200, 11);
        let mut visited = [0u32; 11];
        for mut chunk in batch.chunks_mut(4) {
            assert!(chunk.len() <= 4 && !chunk.is_empty());
            for (row_index, mut row) in chunk.rows_mut() {
                visited[row_index] += 1;
                row.copy_from(items[row_index].view());
            }
        }
        assert!(visited.iter().all(|&v| v == 1));
        assert_eq!(batch.to_vectors(), items);
    }

    #[test]
    fn fill_rows_visits_in_order() {
        let mut batch = HypervectorBatch::zeros(65, 4);
        let mut order = Vec::new();
        batch.fill_rows(|i, mut row| {
            order.push(i);
            row.set(i, true);
        });
        assert_eq!(order, vec![0, 1, 2, 3]);
        for i in 0..4 {
            assert!(batch.row(i).get(i));
        }
    }

    #[test]
    fn clear_and_resize_recycle_the_allocation() {
        let mut r = rng();
        let items: Vec<_> = (0..6)
            .map(|_| BinaryHypervector::random(130, &mut r))
            .collect();
        let mut batch = HypervectorBatch::from_vectors(&items).unwrap();
        let capacity = batch.capacity();
        assert!(capacity >= 6);

        // clear() drops the rows but keeps the arena.
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.capacity(), capacity);
        for hv in &items[..3] {
            batch.push(hv);
        }
        assert_eq!(batch.to_vectors(), items[..3].to_vec());

        // resize_zeroed() yields exactly `len` clean rows, no stale bits
        // from the previous occupancy.
        batch.resize_zeroed(5);
        assert_eq!(batch.len(), 5);
        assert_eq!(batch.capacity(), capacity);
        for i in 0..5 {
            assert_eq!(batch.row(i).count_ones(), 0, "row {i} must be zeroed");
        }
        // Growing past the old capacity still works.
        batch.resize_zeroed(64);
        assert_eq!(batch.len(), 64);
        assert!(batch.rows().all(|row| row.count_ones() == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let batch = HypervectorBatch::zeros(64, 2);
        let _ = batch.row(2);
    }

    #[test]
    #[should_panic(expected = "bits beyond dimension")]
    fn hv_ref_rejects_dirty_tail() {
        let words = [0u64, 1u64 << 63];
        let _ = HvRef::new(65, &words);
    }

    #[test]
    #[should_panic(expected = "bits beyond dimension")]
    fn hv_mut_rejects_dirty_tail() {
        let mut words = [1u64 << 40];
        let _ = HvMut::new(33, &mut words);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_rejects_wrong_dimension() {
        let mut r = rng();
        let mut batch = HypervectorBatch::new(64);
        batch.push(&BinaryHypervector::random(65, &mut r));
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<HypervectorBatch>();
        assert_send_sync::<HvRef<'_>>();
        assert_send::<HvMut<'_>>();
        assert_send::<BatchChunkMut<'_>>();
    }
}
