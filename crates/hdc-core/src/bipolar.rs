use std::fmt;

use rand::Rng;

use crate::BinaryHypervector;

/// A bipolar hypervector: a point of `{−1, +1}^d`, the representation used by
/// the Multiply–Add–Permute (MAP) family of vector-symbolic architectures.
///
/// The paper's experiments run on the binary spatter-code model
/// ([`BinaryHypervector`]); this type exists for the MAP-vs-BSC ablation
/// benches and mirrors the same three operations:
///
/// * binding — element-wise multiplication (self-inverse, like XOR),
/// * bundling — element-wise integer addition followed by the sign function
///   (see [`BipolarAccumulator`]),
/// * permutation — cyclic rotation.
///
/// Similarity is measured with the cosine, which for ±1 vectors equals
/// `1 − 2δ` of the corresponding binary vectors.
///
/// # Example
///
/// ```
/// use hdc_core::BipolarHypervector;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let a = BipolarHypervector::random(10_000, &mut rng);
/// let b = BipolarHypervector::random(10_000, &mut rng);
/// assert!(a.cosine(&b).abs() < 0.05); // quasi-orthogonal
/// assert_eq!(a.bind(&b).bind(&a), b); // self-inverse binding
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BipolarHypervector {
    elems: Vec<i8>,
}

impl BipolarHypervector {
    /// Samples a hypervector uniformly from `{−1, +1}^dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn random(dim: usize, rng: &mut impl Rng) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        Self {
            elems: (0..dim)
                .map(|_| if rng.random_bool(0.5) { 1 } else { -1 })
                .collect(),
        }
    }

    /// Builds a hypervector by evaluating `f` at every index.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or if `f` returns anything other than `±1`.
    #[must_use]
    pub fn from_fn(dim: usize, mut f: impl FnMut(usize) -> i8) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        let elems: Vec<i8> = (0..dim)
            .map(|i| {
                let v = f(i);
                assert!(v == 1 || v == -1, "bipolar element must be ±1, got {v}");
                v
            })
            .collect();
        Self { elems }
    }

    /// The dimensionality of this hypervector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.elems.len()
    }

    /// The underlying ±1 elements.
    #[must_use]
    pub fn as_slice(&self) -> &[i8] {
        &self.elems
    }

    /// Binding: element-wise multiplication. Commutative and self-inverse.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn bind(&self, other: &Self) -> Self {
        self.assert_same_dim(other);
        Self {
            elems: self
                .elems
                .iter()
                .zip(&other.elems)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Cyclic rotation by `shift` positions (`Π^shift`).
    #[must_use]
    pub fn permute(&self, shift: isize) -> Self {
        let dim = self.elems.len();
        let s = shift.rem_euclid(dim as isize) as usize;
        let mut elems = Vec::with_capacity(dim);
        elems.extend_from_slice(&self.elems[dim - s..]);
        elems.extend_from_slice(&self.elems[..dim - s]);
        Self { elems }
    }

    /// Dot product with another bipolar hypervector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn dot(&self, other: &Self) -> i64 {
        self.assert_same_dim(other);
        self.elems
            .iter()
            .zip(&other.elems)
            .map(|(a, b)| i64::from(*a) * i64::from(*b))
            .sum()
    }

    /// Cosine similarity in `[−1, 1]`; quasi-orthogonal vectors score ≈ 0.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn cosine(&self, other: &Self) -> f64 {
        self.dot(other) as f64 / self.elems.len() as f64
    }

    /// Converts to the binary representation: `+1 ↦ 1`, `−1 ↦ 0`.
    #[must_use]
    pub fn to_binary(&self) -> BinaryHypervector {
        BinaryHypervector::from_fn(self.elems.len(), |i| self.elems[i] > 0)
    }

    fn assert_same_dim(&self, other: &Self) {
        assert_eq!(
            self.elems.len(),
            other.elems.len(),
            "dimension mismatch: expected {}, found {}",
            self.elems.len(),
            other.elems.len()
        );
    }
}

impl fmt::Debug for BipolarHypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 16;
        write!(
            f,
            "BipolarHypervector {{ dim: {}, elems: ",
            self.elems.len()
        )?;
        for (i, e) in self.elems.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e:+}")?;
        }
        if self.elems.len() > PREVIEW {
            write!(f, ",…")?;
        }
        write!(f, " }}")
    }
}

impl fmt::Display for BipolarHypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let positives = self.elems.iter().filter(|&&e| e > 0).count();
        write!(
            f,
            "bipolar hypervector(d={}, +1s={})",
            self.elems.len(),
            positives
        )
    }
}

/// Integer accumulator for bundling [`BipolarHypervector`]s (the "Add" of
/// Multiply–Add–Permute).
///
/// # Example
///
/// ```
/// use hdc_core::{BipolarAccumulator, BipolarHypervector};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let a = BipolarHypervector::random(10_000, &mut rng);
/// let b = BipolarHypervector::random(10_000, &mut rng);
/// let mut acc = BipolarAccumulator::new(10_000);
/// acc.push(&a);
/// acc.push(&b);
/// let bundle = acc.finalize_random(&mut rng);
/// assert!(bundle.cosine(&a) > 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipolarAccumulator {
    sums: Vec<i32>,
}

impl BipolarAccumulator {
    /// Creates an empty accumulator for hypervectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        Self { sums: vec![0; dim] }
    }

    /// The dimensionality this accumulator operates on.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.sums.len()
    }

    /// The per-dimension integer sums.
    #[must_use]
    pub fn sums(&self) -> &[i32] {
        &self.sums
    }

    /// Adds a hypervector to the bundle.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn push(&mut self, hv: &BipolarHypervector) {
        self.push_weighted(hv, 1);
    }

    /// Removes a hypervector from the bundle.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn subtract(&mut self, hv: &BipolarHypervector) {
        self.push_weighted(hv, -1);
    }

    /// Adds a hypervector with an integer weight.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn push_weighted(&mut self, hv: &BipolarHypervector, weight: i32) {
        assert_eq!(
            self.sums.len(),
            hv.dim(),
            "dimension mismatch: expected {}, found {}",
            self.sums.len(),
            hv.dim()
        );
        for (s, &e) in self.sums.iter_mut().zip(hv.as_slice()) {
            *s += i32::from(e) * weight;
        }
    }

    /// Applies the sign function, breaking zero-sums uniformly at random.
    #[must_use]
    pub fn finalize_random(&self, rng: &mut impl Rng) -> BipolarHypervector {
        BipolarHypervector::from_fn(self.sums.len(), |i| match self.sums[i].cmp(&0) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => {
                if rng.random_bool(0.5) {
                    1
                } else {
                    -1
                }
            }
        })
    }

    /// Dot product of the raw integer sums with a ±1 query — similarity
    /// against the non-binarized bundle.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn dot(&self, query: &BipolarHypervector) -> i64 {
        assert_eq!(
            self.sums.len(),
            query.dim(),
            "dimension mismatch: expected {}, found {}",
            self.sums.len(),
            query.dim()
        );
        self.sums
            .iter()
            .zip(query.as_slice())
            .map(|(&s, &e)| i64::from(s) * i64::from(e))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn binding_is_self_inverse_and_isometric() {
        let mut r = rng();
        let a = BipolarHypervector::random(4_096, &mut r);
        let b = BipolarHypervector::random(4_096, &mut r);
        let c = BipolarHypervector::random(4_096, &mut r);
        assert_eq!(a.bind(&b).bind(&a), b);
        assert!((a.bind(&c).cosine(&b.bind(&c)) - a.cosine(&b)).abs() < 1e-12);
    }

    #[test]
    fn cosine_matches_binary_distance_relation() {
        // cos(a, b) = 1 − 2δ(bin(a), bin(b)).
        let mut r = rng();
        let a = BipolarHypervector::random(2_048, &mut r);
        let b = BipolarHypervector::random(2_048, &mut r);
        let delta = a.to_binary().normalized_hamming(&b.to_binary());
        assert!((a.cosine(&b) - (1.0 - 2.0 * delta)).abs() < 1e-12);
    }

    #[test]
    fn permute_round_trip() {
        let mut r = rng();
        let a = BipolarHypervector::random(999, &mut r);
        assert_eq!(a.permute(17).permute(-17), a);
        assert_eq!(a.permute(0), a);
        assert_eq!(a.permute(999), a);
    }

    #[test]
    fn binary_round_trip() {
        let mut r = rng();
        let a = BinaryHypervector::random(512, &mut r);
        assert_eq!(a.to_bipolar().to_binary(), a);
        let b = BipolarHypervector::random(512, &mut r);
        assert_eq!(b.to_binary().to_bipolar(), b);
    }

    #[test]
    fn bundle_similar_to_members() {
        let mut r = rng();
        let members: Vec<_> = (0..7)
            .map(|_| BipolarHypervector::random(8_192, &mut r))
            .collect();
        let mut acc = BipolarAccumulator::new(8_192);
        for m in &members {
            acc.push(m);
        }
        let bundle = acc.finalize_random(&mut r);
        for m in &members {
            assert!(bundle.cosine(m) > 0.15);
        }
    }

    #[test]
    fn subtract_undoes_push() {
        let mut r = rng();
        let a = BipolarHypervector::random(64, &mut r);
        let b = BipolarHypervector::random(64, &mut r);
        let mut acc = BipolarAccumulator::new(64);
        acc.push(&a);
        acc.push(&b);
        acc.subtract(&b);
        let mut only_a = BipolarAccumulator::new(64);
        only_a.push(&a);
        assert_eq!(acc.sums(), only_a.sums());
    }

    #[test]
    #[should_panic(expected = "must be ±1")]
    fn from_fn_rejects_invalid_elements() {
        let _ = BipolarHypervector::from_fn(4, |_| 0);
    }
}
