//! Core hypervector arithmetic for hyperdimensional computing (HDC).
//!
//! Hyperdimensional computing represents information as very wide random
//! vectors (*hypervectors*, typically ~10,000 bits) and computes with three
//! dimension-independent operations:
//!
//! * **binding** (`⊗`) — element-wise XOR; associates two pieces of
//!   information and is its own inverse,
//! * **bundling** (`⊕`) — element-wise majority; superimposes a set of
//!   hypervectors into one that stays similar to every member,
//! * **permutation** (`Π`) — cyclic bit rotation; encodes order.
//!
//! This crate provides the packed binary hypervector type used throughout the
//! workspace, integer accumulators for exact majority bundling, a bipolar
//! (±1) model for ablations, similarity search helpers and an associative
//! item memory. For batched pipelines it adds a contiguous
//! [`HypervectorBatch`] arena whose rows are borrowed [`HvRef`]/[`HvMut`]
//! views, and the word-slice [`kernels`] that every hot path — owned or
//! batched — compiles down to.
//!
//! # Example
//!
//! ```
//! use hdc_core::{BinaryHypervector, MajorityAccumulator};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a = BinaryHypervector::random(10_000, &mut rng);
//! let b = BinaryHypervector::random(10_000, &mut rng);
//!
//! // Random hypervectors are quasi-orthogonal: distance ≈ 0.5.
//! assert!((a.normalized_hamming(&b) - 0.5).abs() < 0.05);
//!
//! // Binding is self-inverse: a ⊗ (a ⊗ b) = b.
//! let bound = a.bind(&b);
//! assert_eq!(bound.bind(&a), b);
//!
//! // A bundle stays similar to its members.
//! let mut acc = MajorityAccumulator::new(10_000);
//! acc.push(&a);
//! acc.push(&b);
//! let sum = acc.finalize_random(&mut rng);
//! assert!(sum.normalized_hamming(&a) < 0.3);
//! ```

// `deny` rather than `forbid`: the SIMD kernel backends in
// `kernels::{x86, neon}` opt back in with a module-level
// `#![allow(unsafe_code)]` for `target_feature` intrinsics behind safe
// wrappers (the dispatch layer's detection is the safety contract).
// Everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
mod batch;
mod binary;
mod bipolar;
mod error;
pub mod kernels;
mod memory;
pub mod ops;
pub mod similarity;

pub use accumulator::{MajorityAccumulator, TieBreak};
pub use batch::{BatchChunkMut, HvMut, HvRef, HypervectorBatch};
pub use binary::{BinaryHypervector, Bits};
pub use bipolar::{BipolarAccumulator, BipolarHypervector};
pub use error::HdcError;
pub use memory::ItemMemory;

/// The hypervector dimensionality used by the paper and by all experiment
/// harnesses in this workspace (`d ≈ 10,000`, paper §2).
pub const DEFAULT_DIMENSION: usize = 10_000;
