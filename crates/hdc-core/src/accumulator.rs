use rand::Rng;

use crate::{kernels, BinaryHypervector, HvMut, HvRef};

/// Policy for resolving ties when a [`MajorityAccumulator`] is finalized and
/// a dimension has seen exactly as many ones as zeros.
///
/// Ties occur whenever an even number of hypervectors is bundled. The HDC
/// literature most commonly breaks them randomly (equivalent to bundling one
/// extra random hypervector), which keeps the result unbiased; deterministic
/// policies are provided for reproducible pipelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// Resolve ties to `0`.
    #[default]
    Zero,
    /// Resolve ties to `1`.
    One,
    /// Alternate `0`/`1` by dimension index (deterministic, unbiased on
    /// average across dimensions).
    Alternate,
}

impl TieBreak {
    /// The bit this policy resolves a tie at dimension `index` to.
    #[must_use]
    pub fn bit(self, index: usize) -> bool {
        match self {
            TieBreak::Zero => false,
            TieBreak::One => true,
            TieBreak::Alternate => index % 2 == 0,
        }
    }
}

/// Exact majority bundling `⊕` over any number of hypervectors.
///
/// The bundling operation of HDC (paper §2.1) is an element-wise majority
/// vote. This accumulator keeps one signed counter per dimension
/// (`+1` per one-bit, `−1` per zero-bit), so hypervectors can be added *and
/// subtracted* — the latter is what makes retraining-style classifiers cheap.
///
/// # Example
///
/// ```
/// use hdc_core::{BinaryHypervector, MajorityAccumulator, TieBreak};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let vs: Vec<_> = (0..5).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
/// let mut acc = MajorityAccumulator::new(10_000);
/// for v in &vs {
///     acc.push(v);
/// }
/// let bundle = acc.finalize(TieBreak::Zero);
/// // The bundle is similar to each of its five members…
/// for v in &vs {
///     assert!(bundle.normalized_hamming(v) < 0.45);
/// }
/// // …and quasi-orthogonal to an unrelated hypervector.
/// let other = BinaryHypervector::random(10_000, &mut rng);
/// assert!((bundle.normalized_hamming(&other) - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MajorityAccumulator {
    counts: Vec<i32>,
    weight: i64,
}

impl MajorityAccumulator {
    /// Creates an empty accumulator for hypervectors of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        Self {
            counts: vec![0; dim],
            weight: 0,
        }
    }

    /// Reconstructs an accumulator from previously captured state — the
    /// inverse of reading [`counts`](Self::counts) and
    /// [`weight`](Self::weight), used by snapshot restore to resume
    /// training exactly where a saved accumulator left off. The counters
    /// are adopted verbatim, so a `from_parts` round trip is bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty.
    #[must_use]
    pub fn from_parts(counts: Vec<i32>, weight: i64) -> Self {
        assert!(
            !counts.is_empty(),
            "hypervector dimension must be at least 1"
        );
        Self { counts, weight }
    }

    /// The dimensionality this accumulator operates on.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.counts.len()
    }

    /// Net weight pushed so far (pushes minus subtractions).
    #[must_use]
    pub fn weight(&self) -> i64 {
        self.weight
    }

    /// `true` if nothing has been accumulated (all counters zero).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weight == 0 && self.counts.iter().all(|&c| c == 0)
    }

    /// The per-dimension signed counters.
    #[must_use]
    pub fn counts(&self) -> &[i32] {
        &self.counts
    }

    /// Adds a hypervector to the bundle.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn push(&mut self, hv: &BinaryHypervector) {
        self.push_weighted(hv, 1);
    }

    /// Removes a hypervector from the bundle (used by retraining updates).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn subtract(&mut self, hv: &BinaryHypervector) {
        self.push_weighted(hv, -1);
    }

    /// Adds a hypervector with an integer weight (negative weights subtract).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn push_weighted(&mut self, hv: &BinaryHypervector, weight: i32) {
        self.push_row_weighted(hv.view(), weight);
    }

    /// Adds a borrowed row view (e.g. one row of a
    /// [`HypervectorBatch`](crate::HypervectorBatch)) to the bundle.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn push_row(&mut self, row: HvRef<'_>) {
        self.push_row_weighted(row, 1);
    }

    /// Adds a borrowed row view with an integer weight (negative weights
    /// subtract). This is the word-slice hot path every other push funnels
    /// into — see [`kernels::accumulate`].
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn push_row_weighted(&mut self, row: HvRef<'_>, weight: i32) {
        assert_eq!(
            self.counts.len(),
            row.dim(),
            "dimension mismatch: expected {}, found {}",
            self.counts.len(),
            row.dim()
        );
        kernels::accumulate(&mut self.counts, row.as_words(), weight);
        self.weight += i64::from(weight);
    }

    /// Merges another accumulator into this one by adding its counters —
    /// the reduction step of parallel bundling. Because integer addition is
    /// commutative and associative, merging per-chunk partial accumulators
    /// yields exactly the counters a serial pass would have produced.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "dimension mismatch: expected {}, found {}",
            self.counts.len(),
            other.counts.len()
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.weight += other.weight;
    }

    /// Resolves the majority vote into a binary hypervector using a
    /// deterministic tie-break policy.
    #[must_use]
    pub fn finalize(&self, tie: TieBreak) -> BinaryHypervector {
        self.finalize_with(|i| tie.bit(i))
    }

    /// Resolves the majority vote straight into a borrowed row (e.g. one
    /// row of a [`HypervectorBatch`](crate::HypervectorBatch) arena) with a
    /// deterministic tie-break — the allocation-free form of
    /// [`finalize`](Self::finalize) batched encoders bundle through.
    ///
    /// # Panics
    ///
    /// Panics if the row's dimensionality differs from the accumulator's.
    pub fn finalize_into(&self, tie: TieBreak, out: &mut HvMut<'_>) {
        out.set_majority(&self.counts, tie);
    }

    /// Resolves the majority vote, breaking ties uniformly at random
    /// (equivalent to bundling one additional random hypervector — the
    /// conventional unbiased choice).
    #[must_use]
    pub fn finalize_random(&self, rng: &mut impl Rng) -> BinaryHypervector {
        self.finalize_with(|_| rng.random_bool(0.5))
    }

    /// Shared finalization path: packs the counter signs into words via
    /// [`kernels::majority_into`], consulting `tie_bit` only at exact ties
    /// (in ascending dimension order, which keeps RNG tie-breaking
    /// reproducible).
    fn finalize_with(&self, tie_bit: impl FnMut(usize) -> bool) -> BinaryHypervector {
        let mut words = vec![0u64; self.counts.len().div_ceil(64)];
        kernels::majority_into(&self.counts, &mut words, tie_bit);
        BinaryHypervector::from_words(self.counts.len(), words)
    }

    /// Signed agreement between the accumulated counters and a query
    /// hypervector: `Σ_i (query_i == 1 ? counts_i : −counts_i)`.
    ///
    /// This is the dot product of the integer class vector with the
    /// bipolarized query, the similarity measure used when classifying
    /// against *non-binarized* class vectors (an accuracy-preserving
    /// alternative to majority-then-Hamming).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn dot_bipolar(&self, query: &BinaryHypervector) -> i64 {
        self.dot_bipolar_row(query.view())
    }

    /// [`dot_bipolar`](Self::dot_bipolar) over a borrowed row view — the
    /// word-slice form used by batched inference.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn dot_bipolar_row(&self, query: HvRef<'_>) -> i64 {
        assert_eq!(
            self.counts.len(),
            query.dim(),
            "dimension mismatch: expected {}, found {}",
            self.counts.len(),
            query.dim()
        );
        kernels::dot_bipolar(&self.counts, query.as_words())
    }

    /// Resets all counters to zero.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.weight = 0;
    }
}

impl Extend<BinaryHypervector> for MajorityAccumulator {
    fn extend<T: IntoIterator<Item = BinaryHypervector>>(&mut self, iter: T) {
        for hv in iter {
            self.push(&hv);
        }
    }
}

impl<'a> Extend<&'a BinaryHypervector> for MajorityAccumulator {
    fn extend<T: IntoIterator<Item = &'a BinaryHypervector>>(&mut self, iter: T) {
        for hv in iter {
            self.push(hv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn from_parts_round_trips_captured_state() {
        let mut r = rng();
        let mut acc = MajorityAccumulator::new(777);
        for _ in 0..5 {
            acc.push(&BinaryHypervector::random(777, &mut r));
        }
        let restored = MajorityAccumulator::from_parts(acc.counts().to_vec(), acc.weight());
        assert_eq!(restored, acc);
        // Training resumes identically on both copies.
        let extra = BinaryHypervector::random(777, &mut r);
        let mut resumed = restored;
        acc.push(&extra);
        resumed.push(&extra);
        assert_eq!(
            resumed.finalize(TieBreak::Alternate),
            acc.finalize(TieBreak::Alternate)
        );
    }

    #[test]
    #[should_panic(expected = "dimension must be at least 1")]
    fn from_parts_rejects_empty_counts() {
        let _ = MajorityAccumulator::from_parts(Vec::new(), 0);
    }

    #[test]
    fn majority_of_odd_set_is_exact() {
        // With three vectors the majority is unambiguous; verify bit-by-bit.
        let a = BinaryHypervector::from_bits(&[true, true, false, false, true]);
        let b = BinaryHypervector::from_bits(&[true, false, true, false, true]);
        let c = BinaryHypervector::from_bits(&[false, false, false, true, true]);
        let mut acc = MajorityAccumulator::new(5);
        acc.extend([&a, &b, &c]);
        let m = acc.finalize(TieBreak::Zero);
        let expected = BinaryHypervector::from_bits(&[true, false, false, false, true]);
        assert_eq!(m, expected);
    }

    #[test]
    fn bundle_is_similar_to_members() {
        let mut r = rng();
        let members: Vec<_> = (0..9)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        let mut acc = MajorityAccumulator::new(10_000);
        acc.extend(members.iter());
        let bundle = acc.finalize_random(&mut r);
        for m in &members {
            // E[δ] for 9 bundled vectors is ≈ 0.5 − C(8,4)/2^9 ≈ 0.36.
            let d = bundle.normalized_hamming(m);
            assert!(d < 0.42, "distance to member {d}");
        }
    }

    #[test]
    fn subtract_undoes_push() {
        let mut r = rng();
        let a = BinaryHypervector::random(256, &mut r);
        let b = BinaryHypervector::random(256, &mut r);
        let mut acc = MajorityAccumulator::new(256);
        acc.push(&a);
        acc.push(&b);
        acc.subtract(&b);
        let mut only_a = MajorityAccumulator::new(256);
        only_a.push(&a);
        assert_eq!(acc.counts(), only_a.counts());
        assert_eq!(acc.weight(), 1);
    }

    #[test]
    fn weighted_push_equals_repeated_push() {
        let mut r = rng();
        let a = BinaryHypervector::random(128, &mut r);
        let mut acc1 = MajorityAccumulator::new(128);
        acc1.push_weighted(&a, 3);
        let mut acc2 = MajorityAccumulator::new(128);
        for _ in 0..3 {
            acc2.push(&a);
        }
        assert_eq!(acc1, acc2);
    }

    #[test]
    fn tie_break_policies() {
        let a = BinaryHypervector::from_bits(&[true, false]);
        let b = BinaryHypervector::from_bits(&[false, true]);
        let mut acc = MajorityAccumulator::new(2);
        acc.push(&a);
        acc.push(&b);
        assert_eq!(acc.finalize(TieBreak::Zero).count_ones(), 0);
        assert_eq!(acc.finalize(TieBreak::One).count_ones(), 2);
        let alt = acc.finalize(TieBreak::Alternate);
        assert!(alt.get(0) && !alt.get(1));
    }

    #[test]
    fn finalize_into_matches_finalize() {
        let mut r = rng();
        for dim in [1usize, 64, 65, 200] {
            let mut acc = MajorityAccumulator::new(dim);
            for _ in 0..4 {
                acc.push(&BinaryHypervector::random(dim, &mut r));
            }
            for tie in [TieBreak::Zero, TieBreak::One, TieBreak::Alternate] {
                // Start from a dirty row to prove it is fully overwritten.
                let mut batch = crate::HypervectorBatch::zeros(dim, 1);
                batch
                    .row_mut(0)
                    .copy_from(BinaryHypervector::random(dim, &mut r).view());
                acc.finalize_into(tie, &mut batch.row_mut(0));
                assert_eq!(batch.to_hypervector(0), acc.finalize(tie), "dim={dim}");
            }
        }
    }

    #[test]
    fn random_tie_break_is_roughly_balanced() {
        let mut r = rng();
        let a = BinaryHypervector::random(10_000, &mut r);
        let mut acc = MajorityAccumulator::new(10_000);
        acc.push(&a);
        acc.subtract(&a);
        // All counters are zero: the finalized vector is pure tie-break.
        let out = acc.finalize_random(&mut r);
        let ones = out.count_ones();
        assert!((4_700..=5_300).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn clear_resets() {
        let mut acc = MajorityAccumulator::new(8);
        acc.push(&BinaryHypervector::ones(8));
        assert!(!acc.is_empty());
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.weight(), 0);
    }

    #[test]
    fn dot_bipolar_identifies_member() {
        let mut r = rng();
        let members: Vec<_> = (0..6)
            .map(|_| BinaryHypervector::random(4_096, &mut r))
            .collect();
        let outsider = BinaryHypervector::random(4_096, &mut r);
        let mut acc = MajorityAccumulator::new(4_096);
        acc.extend(members.iter());
        for m in &members {
            assert!(acc.dot_bipolar(m) > acc.dot_bipolar(&outsider));
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn push_dimension_mismatch_panics() {
        let mut acc = MajorityAccumulator::new(8);
        acc.push(&BinaryHypervector::zeros(9));
    }

    #[test]
    fn merge_matches_serial_accumulation() {
        let mut r = rng();
        let vs: Vec<_> = (0..8)
            .map(|_| BinaryHypervector::random(333, &mut r))
            .collect();
        let mut serial = MajorityAccumulator::new(333);
        serial.extend(vs.iter());
        serial.subtract(&vs[3]);

        let mut left = MajorityAccumulator::new(333);
        left.extend(vs[..4].iter());
        left.subtract(&vs[3]);
        let mut right = MajorityAccumulator::new(333);
        right.extend(vs[4..].iter());
        left.merge(&right);
        assert_eq!(left, serial);
        assert_eq!(left.weight(), serial.weight());
    }

    #[test]
    fn push_row_matches_push() {
        let mut r = rng();
        let hv = BinaryHypervector::random(130, &mut r);
        let mut by_owned = MajorityAccumulator::new(130);
        by_owned.push(&hv);
        let mut by_row = MajorityAccumulator::new(130);
        by_row.push_row(hv.view());
        assert_eq!(by_owned, by_row);
        assert_eq!(by_owned.dot_bipolar(&hv), by_row.dot_bipolar_row(hv.view()));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_dimension_mismatch_panics() {
        let mut a = MajorityAccumulator::new(8);
        a.merge(&MajorityAccumulator::new(9));
    }

    proptest! {
        #[test]
        fn prop_single_vector_round_trips(seed in 0u64..500, dim in 1usize..300) {
            // Majority of a single vector is the vector itself.
            let mut r = StdRng::seed_from_u64(seed);
            let hv = BinaryHypervector::random(dim, &mut r);
            let mut acc = MajorityAccumulator::new(dim);
            acc.push(&hv);
            prop_assert_eq!(acc.finalize(TieBreak::Zero), hv);
        }

        #[test]
        fn prop_majority_bounded_by_counts(seed in 0u64..500, n in 1usize..12) {
            // Each finalized bit must agree with the sign of its counter.
            let mut r = StdRng::seed_from_u64(seed);
            let dim = 64;
            let mut acc = MajorityAccumulator::new(dim);
            for _ in 0..n {
                acc.push(&BinaryHypervector::random(dim, &mut r));
            }
            let out = acc.finalize(TieBreak::Zero);
            for (i, bit) in out.bits().enumerate() {
                let c = acc.counts()[i];
                prop_assert_eq!(bit, c > 0);
            }
        }
    }
}
