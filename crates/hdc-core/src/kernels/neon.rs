//! NEON kernel backend for `aarch64`.
//!
//! Every function here is a safe wrapper around a `#[target_feature]`
//! implementation; the wrappers are only ever published through the
//! dispatch table after `is_aarch64_feature_detected!("neon")` succeeded,
//! which is the safety contract that makes the inner `unsafe` calls
//! sound.
//!
//! The NEON table accelerates the four word-wise kernels (XOR bind and
//! `vcnt`-based popcounts); the `i32`-counter kernels (`accumulate`,
//! `dot_bipolar`, `masked_sum`, `majority_into`) deliberately reuse the
//! scalar implementations until an aarch64 runner exists to measure (and
//! CI to exercise) wider ports — dispatch mixes backends per kernel, so
//! the table stays bit-identical to scalar either way.
#![allow(unsafe_code)]

use std::arch::aarch64::{
    vaddvq_u8, vcntq_u8, veorq_u64, vld1q_u64, vreinterpretq_u8_u64, vst1q_u64,
};

pub(crate) fn xor_into(dst: &mut [u64], src: &[u64]) {
    // SAFETY: published by `dispatch` only after NEON was detected.
    unsafe { xor_into_neon(dst, src) }
}

#[target_feature(enable = "neon")]
unsafe fn xor_into_neon(dst: &mut [u64], src: &[u64]) {
    let mut d = dst.chunks_exact_mut(2);
    let mut s = src.chunks_exact(2);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let v = veorq_u64(vld1q_u64(dw.as_ptr()), vld1q_u64(sw.as_ptr()));
        vst1q_u64(dw.as_mut_ptr(), v);
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw ^= *sw;
    }
}

pub(crate) fn xor(a: &[u64], b: &[u64], out: &mut [u64]) {
    // SAFETY: published by `dispatch` only after NEON was detected.
    unsafe { xor_neon(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn xor_neon(a: &[u64], b: &[u64], out: &mut [u64]) {
    let mut o = out.chunks_exact_mut(2);
    let mut x = a.chunks_exact(2);
    let mut y = b.chunks_exact(2);
    for ((ow, xw), yw) in (&mut o).zip(&mut x).zip(&mut y) {
        let v = veorq_u64(vld1q_u64(xw.as_ptr()), vld1q_u64(yw.as_ptr()));
        vst1q_u64(ow.as_mut_ptr(), v);
    }
    for ((ow, xw), yw) in o
        .into_remainder()
        .iter_mut()
        .zip(x.remainder())
        .zip(y.remainder())
    {
        *ow = *xw ^ *yw;
    }
}

pub(crate) fn count_ones(words: &[u64]) -> usize {
    // SAFETY: published by `dispatch` only after NEON was detected.
    unsafe { count_ones_neon(words) }
}

#[target_feature(enable = "neon")]
unsafe fn count_ones_neon(words: &[u64]) -> usize {
    let mut total = 0usize;
    let mut chunks = words.chunks_exact(2);
    for ch in &mut chunks {
        // 16 byte popcounts sum to at most 128, which fits the `u8`
        // horizontal add.
        let cnt = vcntq_u8(vreinterpretq_u8_u64(vld1q_u64(ch.as_ptr())));
        total += usize::from(vaddvq_u8(cnt));
    }
    for &w in chunks.remainder() {
        total += w.count_ones() as usize;
    }
    total
}

pub(crate) fn hamming(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: published by `dispatch` only after NEON was detected.
    unsafe { hamming_neon(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn hamming_neon(a: &[u64], b: &[u64]) -> usize {
    let mut total = 0usize;
    let mut x = a.chunks_exact(2);
    let mut y = b.chunks_exact(2);
    for (xw, yw) in (&mut x).zip(&mut y) {
        let v = veorq_u64(vld1q_u64(xw.as_ptr()), vld1q_u64(yw.as_ptr()));
        total += usize::from(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(v))));
    }
    for (xw, yw) in x.remainder().iter().zip(y.remainder()) {
        total += (xw ^ yw).count_ones() as usize;
    }
    total
}
