//! AVX2 kernel backend for `x86_64`.
//!
//! Every function here is a safe wrapper around a `#[target_feature]`
//! implementation; the wrappers are only ever published through the
//! dispatch table after `is_x86_feature_detected!("avx2")` (and
//! `"popcnt"`) succeeded, which is the safety contract that makes the
//! inner `unsafe` calls sound.
//!
//! The SIMD paths only **reorder exact integer arithmetic** relative to
//! the scalar backend — XOR/popcount are bitwise, and the `i32`-counter
//! kernels widen to `i64` lanes *before* summing or negating, so every
//! result (including `i32::MIN` counters) is bit-identical to scalar.
//! Non-64-multiple dimensions are handled by scalar tail loops over the
//! ragged remainder.
#![allow(unsafe_code)]

use std::arch::x86_64::{
    __m128i, __m256i, _mm256_add_epi32, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256,
    _mm256_blendv_epi8, _mm256_castsi256_ps, _mm256_castsi256_si128, _mm256_cmpeq_epi32,
    _mm256_cmpgt_epi32, _mm256_cvtepi32_epi64, _mm256_extracti128_si256, _mm256_loadu_si256,
    _mm256_movemask_ps, _mm256_sad_epu8, _mm256_set1_epi32, _mm256_set1_epi8, _mm256_setr_epi32,
    _mm256_setr_epi8, _mm256_setzero_si256, _mm256_shuffle_epi8, _mm256_srli_epi16,
    _mm256_storeu_si256, _mm256_xor_si256, _mm_add_epi64, _mm_extract_epi64,
};

/// Lane selector for expanding one mask byte into 8 × i32 lanes: lane `k`
/// holds `1 << k`, so `byte & (1 << k)` decides lane `k`'s bit.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn lane_bits() -> __m256i {
    _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128)
}

/// All-ones (set) / all-zeros (clear) 32-bit lane masks for the 8 bits of
/// `byte` (bit `k` of the packed word group → lane `k`).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn byte_lane_mask(byte: i32) -> __m256i {
    let bits = lane_bits();
    _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_set1_epi32(byte), bits), bits)
}

/// Horizontal sum of 4 × i64 lanes.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi64(v: __m256i) -> i64 {
    let lo: __m128i = _mm256_castsi256_si128(v);
    let hi: __m128i = _mm256_extracti128_si256(v, 1);
    let s = _mm_add_epi64(lo, hi);
    _mm_extract_epi64(s, 0).wrapping_add(_mm_extract_epi64(s, 1))
}

/// Per-64-bit-lane popcounts via the classic nibble-LUT `vpshufb` scheme
/// (Muła): byte popcounts from a 16-entry table, summed into the four u64
/// lanes with `vpsadbw`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn popcnt_epu64(v: __m256i) -> __m256i {
    #[rustfmt::skip]
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
    );
    let low = _mm256_set1_epi8(0x0f);
    let lo = _mm256_and_si256(v, low);
    let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    _mm256_sad_epu8(cnt, _mm256_setzero_si256())
}

pub(crate) fn xor_into(dst: &mut [u64], src: &[u64]) {
    // SAFETY: published by `dispatch` only after AVX2 was detected.
    unsafe { xor_into_avx2(dst, src) }
}

#[target_feature(enable = "avx2")]
unsafe fn xor_into_avx2(dst: &mut [u64], src: &[u64]) {
    let mut d = dst.chunks_exact_mut(4);
    let mut s = src.chunks_exact(4);
    for (dw, sw) in (&mut d).zip(&mut s) {
        let v = _mm256_xor_si256(
            _mm256_loadu_si256(dw.as_ptr().cast()),
            _mm256_loadu_si256(sw.as_ptr().cast()),
        );
        _mm256_storeu_si256(dw.as_mut_ptr().cast(), v);
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw ^= *sw;
    }
}

pub(crate) fn xor(a: &[u64], b: &[u64], out: &mut [u64]) {
    // SAFETY: published by `dispatch` only after AVX2 was detected.
    unsafe { xor_avx2(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn xor_avx2(a: &[u64], b: &[u64], out: &mut [u64]) {
    let mut o = out.chunks_exact_mut(4);
    let mut x = a.chunks_exact(4);
    let mut y = b.chunks_exact(4);
    for ((ow, xw), yw) in (&mut o).zip(&mut x).zip(&mut y) {
        let v = _mm256_xor_si256(
            _mm256_loadu_si256(xw.as_ptr().cast()),
            _mm256_loadu_si256(yw.as_ptr().cast()),
        );
        _mm256_storeu_si256(ow.as_mut_ptr().cast(), v);
    }
    for ((ow, xw), yw) in o
        .into_remainder()
        .iter_mut()
        .zip(x.remainder())
        .zip(y.remainder())
    {
        *ow = *xw ^ *yw;
    }
}

pub(crate) fn count_ones(words: &[u64]) -> usize {
    // SAFETY: published by `dispatch` only after AVX2+POPCNT were detected.
    unsafe { count_ones_avx2(words) }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn count_ones_avx2(words: &[u64]) -> usize {
    let mut acc = _mm256_setzero_si256();
    let mut chunks = words.chunks_exact(4);
    for ch in &mut chunks {
        acc = _mm256_add_epi64(acc, popcnt_epu64(_mm256_loadu_si256(ch.as_ptr().cast())));
    }
    let mut total = hsum_epi64(acc) as usize;
    for &w in chunks.remainder() {
        total += w.count_ones() as usize;
    }
    total
}

pub(crate) fn hamming(a: &[u64], b: &[u64]) -> usize {
    // SAFETY: published by `dispatch` only after AVX2+POPCNT were detected.
    unsafe { hamming_avx2(a, b) }
}

#[target_feature(enable = "avx2,popcnt")]
unsafe fn hamming_avx2(a: &[u64], b: &[u64]) -> usize {
    let mut acc = _mm256_setzero_si256();
    let mut x = a.chunks_exact(4);
    let mut y = b.chunks_exact(4);
    for (xw, yw) in (&mut x).zip(&mut y) {
        let v = _mm256_xor_si256(
            _mm256_loadu_si256(xw.as_ptr().cast()),
            _mm256_loadu_si256(yw.as_ptr().cast()),
        );
        acc = _mm256_add_epi64(acc, popcnt_epu64(v));
    }
    let mut total = hsum_epi64(acc) as usize;
    for (xw, yw) in x.remainder().iter().zip(y.remainder()) {
        total += (xw ^ yw).count_ones() as usize;
    }
    total
}

pub(crate) fn accumulate(counts: &mut [i32], words: &[u64], weight: i32) {
    // SAFETY: published by `dispatch` only after AVX2 was detected.
    unsafe { accumulate_avx2(counts, words, weight) }
}

#[target_feature(enable = "avx2")]
unsafe fn accumulate_avx2(counts: &mut [i32], words: &[u64], weight: i32) {
    let pos = _mm256_set1_epi32(weight);
    let neg = _mm256_set1_epi32(weight.wrapping_neg());
    let mut groups = counts.chunks_exact_mut(8);
    let mut idx = 0usize;
    for group in &mut groups {
        let byte = ((words[idx / 8] >> ((idx % 8) * 8)) & 0xff) as i32;
        let add = _mm256_blendv_epi8(neg, pos, byte_lane_mask(byte));
        let p = group.as_mut_ptr().cast();
        _mm256_storeu_si256(p, _mm256_add_epi32(_mm256_loadu_si256(p), add));
        idx += 1;
    }
    let base = idx * 8;
    for (k, c) in groups.into_remainder().iter_mut().enumerate() {
        let i = base + k;
        let bit = (words[i / 64] >> (i % 64)) & 1 == 1;
        *c = c.wrapping_add(if bit { weight } else { weight.wrapping_neg() });
    }
}

pub(crate) fn dot_bipolar(counts: &[i32], words: &[u64]) -> i64 {
    // SAFETY: published by `dispatch` only after AVX2 was detected.
    unsafe { dot_bipolar_avx2(counts, words) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_bipolar_avx2(counts: &[i32], words: &[u64]) -> i64 {
    // Same identity as scalar: 2·Σ_{set} c − Σ c, with both sums carried
    // in i64 lanes (widen *before* masking, so i32::MIN never negates in
    // 32 bits).
    let mut acc_all = _mm256_setzero_si256();
    let mut acc_set = _mm256_setzero_si256();
    let mut groups = counts.chunks_exact(8);
    let mut idx = 0usize;
    for group in &mut groups {
        let c = _mm256_loadu_si256(group.as_ptr().cast());
        let m = byte_lane_mask(((words[idx / 8] >> ((idx % 8) * 8)) & 0xff) as i32);
        let c_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(c));
        let c_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(c, 1));
        let m_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m));
        let m_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m, 1));
        acc_all = _mm256_add_epi64(acc_all, _mm256_add_epi64(c_lo, c_hi));
        acc_set = _mm256_add_epi64(acc_set, _mm256_and_si256(c_lo, m_lo));
        acc_set = _mm256_add_epi64(acc_set, _mm256_and_si256(c_hi, m_hi));
        idx += 1;
    }
    let mut total = hsum_epi64(acc_all);
    let mut set_sum = hsum_epi64(acc_set);
    let base = idx * 8;
    for (k, &c) in groups.remainder().iter().enumerate() {
        let i = base + k;
        total += i64::from(c);
        if (words[i / 64] >> (i % 64)) & 1 == 1 {
            set_sum += i64::from(c);
        }
    }
    2 * set_sum - total
}

pub(crate) fn masked_sum(counts: &[i32], a: &[u64], b: &[u64]) -> i64 {
    // Density-aware dispatch: the dense AVX2 kernel streams every counter
    // group, so its cost is fixed at O(d) while the scalar set-bit walk
    // costs O(popcount(a ∧ b)). A strided popcount sample of the
    // intersection estimates which wins — see
    // `dispatch::masked_sum_prefers_dense` for the measured crossover.
    // The choice is performance-only (both branches are bit-identical),
    // so an estimate off by a stride's worth of bits near the boundary
    // is harmless.
    // SAFETY: published by `dispatch` only after AVX2 + POPCNT were
    // detected.
    let ones = unsafe { estimated_intersection_ones(a, b) };
    if super::dispatch::masked_sum_prefers_dense(ones, counts.len()) {
        unsafe { masked_sum_avx2(counts, a, b) }
    } else {
        super::scalar::masked_sum(counts, a, b)
    }
}

/// Estimated `popcount(a ∧ b)`: exact up to 64 words, an evenly strided
/// 64-word sample scaled back to the full length above that.
#[target_feature(enable = "popcnt")]
unsafe fn estimated_intersection_ones(a: &[u64], b: &[u64]) -> usize {
    const SAMPLE_WORDS: usize = 64;
    let len = a.len();
    let step = len.div_ceil(SAMPLE_WORDS).max(1);
    let mut ones = 0usize;
    let mut sampled = 0usize;
    let mut i = 0;
    while i < len {
        ones += (a[i] & b[i]).count_ones() as usize;
        sampled += 1;
        i += step;
    }
    ones * len / sampled.max(1)
}

#[target_feature(enable = "avx2")]
unsafe fn masked_sum_avx2(counts: &[i32], a: &[u64], b: &[u64]) -> i64 {
    let mut acc = _mm256_setzero_si256();
    let mut groups = counts.chunks_exact(8);
    let mut idx = 0usize;
    for group in &mut groups {
        let both = a[idx / 8] & b[idx / 8];
        let byte = ((both >> ((idx % 8) * 8)) & 0xff) as i32;
        idx += 1;
        if byte == 0 {
            continue;
        }
        let c = _mm256_loadu_si256(group.as_ptr().cast());
        let m = byte_lane_mask(byte);
        let c_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(c));
        let c_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(c, 1));
        let m_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(m));
        let m_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(m, 1));
        acc = _mm256_add_epi64(acc, _mm256_and_si256(c_lo, m_lo));
        acc = _mm256_add_epi64(acc, _mm256_and_si256(c_hi, m_hi));
    }
    let mut sum = hsum_epi64(acc);
    let base = idx * 8;
    for (k, &c) in groups.remainder().iter().enumerate() {
        let i = base + k;
        if (a[i / 64] & b[i / 64]) >> (i % 64) & 1 == 1 {
            sum += i64::from(c);
        }
    }
    sum
}

pub(crate) fn majority_into(
    counts: &[i32],
    out: &mut [u64],
    tie_bit: &mut dyn FnMut(usize) -> bool,
) {
    // SAFETY: published by `dispatch` only after AVX2 was detected.
    unsafe { majority_into_avx2(counts, out, tie_bit) }
}

#[target_feature(enable = "avx2")]
unsafe fn majority_into_avx2(
    counts: &[i32],
    out: &mut [u64],
    tie_bit: &mut dyn FnMut(usize) -> bool,
) {
    out.fill(0);
    let zero = _mm256_setzero_si256();
    let mut groups = counts.chunks_exact(8);
    let mut idx = 0usize;
    for group in &mut groups {
        let c = _mm256_loadu_si256(group.as_ptr().cast());
        let gt = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(c, zero))) as u32;
        let eq = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(c, zero))) as u32;
        let mut bits = u64::from(gt & 0xff);
        // Exact ties consult the tie-break closure in ascending index
        // order, exactly like the scalar loop.
        let mut ties = eq & 0xff;
        while ties != 0 {
            let lane = ties.trailing_zeros() as usize;
            if tie_bit(idx * 8 + lane) {
                bits |= 1 << lane;
            }
            ties &= ties - 1;
        }
        out[idx / 8] |= bits << ((idx % 8) * 8);
        idx += 1;
    }
    let base = idx * 8;
    for (k, &c) in groups.remainder().iter().enumerate() {
        let i = base + k;
        let bit = match c.cmp(&0) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => tie_bit(i),
        };
        if bit {
            out[i / 64] |= 1 << (i % 64);
        }
    }
}
