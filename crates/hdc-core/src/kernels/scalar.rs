//! The portable scalar backend: plain word-at-a-time loops, compiled on
//! every architecture and always selectable (`HDC_KERNEL=scalar`).
//!
//! These are the reference implementations every SIMD backend must match
//! **bit for bit** (see `tests/kernel_dispatch.rs`): the dispatched
//! kernels only reorder exact integer arithmetic, never approximate it.

/// XORs `src` into `dst` word by word.
pub(crate) fn xor_into(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// Writes `a ^ b` into `out` word by word.
pub(crate) fn xor(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x ^ y;
    }
}

/// Total population count of a packed word slice.
pub(crate) fn count_ones(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Hamming distance between two packed word slices.
pub(crate) fn hamming(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x ^ y).count_ones() as usize)
        .sum()
}

/// `counts[i] += bit_i ? weight : -weight`, implemented as a uniform
/// `-weight` pass plus `+2·weight` at the set bits (only ~popcount
/// positions touched individually).
pub(crate) fn accumulate(counts: &mut [i32], words: &[u64], weight: i32) {
    match weight.checked_mul(2) {
        Some(twice) => {
            for c in counts.iter_mut() {
                *c -= weight;
            }
            super::for_each_set_bit(words, |i| counts[i] += twice);
        }
        // |weight| >= 2^30: the doubling shortcut would overflow, so fall
        // back to one signed add per bit (the exact pre-shortcut formula).
        None => {
            for (i, c) in counts.iter_mut().enumerate() {
                let bit = (words[i / 64] >> (i % 64)) & 1 == 1;
                *c += if bit { weight } else { -weight };
            }
        }
    }
}

/// `Σ_i (bit_i ? counts[i] : -counts[i])`, computed as
/// `2·Σ_{set bits} counts[i] − Σ_i counts[i]` in exact `i64` arithmetic.
pub(crate) fn dot_bipolar(counts: &[i32], words: &[u64]) -> i64 {
    let total: i64 = counts.iter().map(|&c| i64::from(c)).sum();
    let mut set_sum = 0i64;
    super::for_each_set_bit(words, |i| set_sum += i64::from(counts[i]));
    2 * set_sum - total
}

/// `Σ_{i : a_i = b_i = 1} counts[i]` via a sparse set-bit walk of `a ∧ b`.
pub(crate) fn masked_sum(counts: &[i32], a: &[u64], b: &[u64]) -> i64 {
    let mut sum = 0i64;
    for (word_idx, (&x, &y)) in a.iter().zip(b).enumerate() {
        let base = word_idx * 64;
        let mut both = x & y;
        while both != 0 {
            sum += i64::from(counts[base + both.trailing_zeros() as usize]);
            both &= both - 1;
        }
    }
    sum
}

/// Resolves signed counters into packed majority bits; exact ties consult
/// `tie_bit` in ascending index order.
pub(crate) fn majority_into(
    counts: &[i32],
    out: &mut [u64],
    tie_bit: &mut dyn FnMut(usize) -> bool,
) {
    out.fill(0);
    for (i, &c) in counts.iter().enumerate() {
        let bit = match c.cmp(&0) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => tie_bit(i),
        };
        if bit {
            out[i / 64] |= 1 << (i % 64);
        }
    }
}
