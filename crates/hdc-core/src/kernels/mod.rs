//! Word-slice kernels: the hot inner loops of the three HDC operations,
//! expressed over raw `&[u64]` bit-packed words.
//!
//! Everything above this module — [`BinaryHypervector`](crate::BinaryHypervector)
//! methods, [`MajorityAccumulator`](crate::MajorityAccumulator), the
//! [`similarity`](crate::similarity) helpers and the batched
//! [`HypervectorBatch`](crate::HypervectorBatch) arena — funnels into these
//! functions, so owned vectors, borrowed rows of a batch, and externally
//! packed buffers all hit the same word-parallel code paths. The kernels
//! assume (and `debug_assert`) equal slice lengths; dimension checking is
//! the caller's job.
//!
//! The six hot entry points (`xor`/`xor_into`, `count_ones`/`hamming`,
//! `accumulate`, `dot_bipolar`, `masked_sum`, `majority_into`) route
//! through [`dispatch`]: a per-process function-pointer table resolved
//! once from runtime ISA detection (AVX2 on `x86_64`, NEON on `aarch64`,
//! scalar everywhere), overridable with `HDC_KERNEL=scalar|avx2|neon`.
//! Every backend is bit-identical to the scalar reference (the private
//! `scalar` module) — see the [`dispatch`] docs for the contract. The bit-copy
//! helpers (`for_each_set_bit`, `permute_into`) stay scalar: they are
//! either already sparse walks or memmove-shaped.
//!
//! Bit layout is LSB-first within each `u64`, matching
//! [`BinaryHypervector::as_words`](crate::BinaryHypervector::as_words), and
//! callers must keep bits at positions `>= dim` in the final word zero.

pub mod dispatch;
mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

/// XORs `src` into `dst` word by word (the binding operation `⊗`).
#[inline]
pub fn xor_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    (dispatch::selected().xor_into)(dst, src);
}

/// Writes `a ^ b` into `out` word by word (out-of-place binding).
#[inline]
pub fn xor(a: &[u64], b: &[u64], out: &mut [u64]) {
    debug_assert!(a.len() == b.len() && b.len() == out.len());
    (dispatch::selected().xor)(a, b, out);
}

/// Total population count of a packed word slice.
#[inline]
#[must_use]
pub fn count_ones(words: &[u64]) -> usize {
    (dispatch::selected().count_ones)(words)
}

/// Hamming distance between two packed word slices (popcount of the XOR).
#[inline]
#[must_use]
pub fn hamming(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    (dispatch::selected().hamming)(a, b)
}

/// Calls `f(bit_index)` for every set bit of the packed slice, in ascending
/// order — the one implementation of the `trailing_zeros` / `w &= w − 1`
/// set-bit walk that the sparse kernels (and the regression readout in
/// `hdc-learn`) share.
#[inline]
pub fn for_each_set_bit(words: &[u64], mut f: impl FnMut(usize)) {
    for (word_idx, &word) in words.iter().enumerate() {
        let base = word_idx * 64;
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            f(base + bit);
            w &= w - 1;
        }
    }
}

/// Adds a packed hypervector into signed per-dimension counters with the
/// given weight: `counts[i] += bit_i ? weight : -weight` (majority bundling).
///
/// Implemented (in the scalar backend) as a uniform `-weight` over all
/// counters followed by `+2·weight` at the set bits, so only ~`popcount`
/// positions are touched individually instead of every bit; the AVX2
/// backend selects `±weight` per 8-lane group instead. Both produce the
/// same counters.
///
/// `counts.len()` is the dimensionality `d`; `words` must hold exactly the
/// packed `d` bits with a clean tail.
pub fn accumulate(counts: &mut [i32], words: &[u64], weight: i32) {
    debug_assert_eq!(words.len(), counts.len().div_ceil(64));
    (dispatch::selected().accumulate)(counts, words, weight);
}

/// Signed agreement between per-dimension counters and a packed query:
/// `Σ_i (bit_i ? counts[i] : -counts[i])` — the bipolar dot product used for
/// integer-readout inference.
///
/// Computed as `2·Σ_{set bits} counts[i] − Σ_i counts[i]` in exact `i64`
/// arithmetic, so every backend returns the identical value.
#[must_use]
pub fn dot_bipolar(counts: &[i32], words: &[u64]) -> i64 {
    debug_assert_eq!(words.len(), counts.len().div_ceil(64));
    (dispatch::selected().dot_bipolar)(counts, words)
}

/// Counter sum over the intersection of two packed masks:
/// `Σ_{i : a_i = b_i = 1} counts[i]`.
///
/// This is the one walk the regression integer readout needs per
/// (label, query) pair: with the query-independent per-label sums
/// `Σ_{i ∈ L} counts[i]` precomputed at model build, the sign-flipped score
/// `Σ_{i ∈ L} (q_i ? -counts[i] : counts[i])` rewrites to
/// `label_sum − 2·masked_sum(counts, L, q)` — no per-query flipped-counter
/// buffer, and only the `L ∧ q` bits (≈ d/4 for dense vectors) are visited.
#[must_use]
pub fn masked_sum(counts: &[i32], a: &[u64], b: &[u64]) -> i64 {
    debug_assert_eq!(a.len(), counts.len().div_ceil(64));
    debug_assert_eq!(a.len(), b.len());
    (dispatch::selected().masked_sum)(counts, a, b)
}

/// Writes the cyclic rotation `Π^shift` of a packed `dim`-bit hypervector
/// into `dst`: bit `i` of `src` lands at position `(i + shift) mod dim`.
///
/// The shift must already be reduced to `0 <= shift < dim` (callers with
/// signed shifts reduce via `rem_euclid`). `dst` is fully overwritten and
/// its tail is left clean. This is the in-place form of
/// `BinaryHypervector::permute` that batched encoders rotate through a
/// reusable scratch buffer with, instead of allocating a fresh vector per
/// permutation.
pub fn permute_into(src: &[u64], dim: usize, shift: usize, dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dim.div_ceil(64));
    debug_assert_eq!(src.len(), dst.len());
    debug_assert!(shift < dim.max(1));
    if shift == 0 {
        dst.copy_from_slice(src);
        return;
    }
    dst.fill(0);
    // dst[shift..dim) = src[0..dim-shift) and dst[0..shift) = src[dim-shift..dim)
    copy_bit_range(src, 0, dst, shift, dim - shift);
    copy_bit_range(src, dim - shift, dst, 0, shift);
}

/// Reads up to 64 bits starting at bit `start` of the packed slice.
fn read_bits(src: &[u64], start: usize, count: usize) -> u64 {
    debug_assert!(count <= 64);
    let word = start / 64;
    let off = start % 64;
    let mut value = src[word] >> off;
    if off != 0 && count > 64 - off && word + 1 < src.len() {
        value |= src[word + 1] << (64 - off);
    }
    if count < 64 {
        value &= (1u64 << count) - 1;
    }
    value
}

/// Copies `len` bits from `src` starting at bit `src_start` into `dst`
/// starting at bit `dst_start`. The ranges are assumed to be in bounds.
pub(crate) fn copy_bit_range(
    src: &[u64],
    src_start: usize,
    dst: &mut [u64],
    dst_start: usize,
    len: usize,
) {
    let mut copied = 0;
    while copied < len {
        let d_bit = dst_start + copied;
        let d_word = d_bit / 64;
        let d_off = d_bit % 64;
        let chunk = (64 - d_off).min(len - copied);
        let bits = read_bits(src, src_start + copied, chunk);
        let mask = if chunk == 64 {
            !0u64
        } else {
            (1u64 << chunk) - 1
        } << d_off;
        dst[d_word] = (dst[d_word] & !mask) | ((bits << d_off) & mask);
        copied += chunk;
    }
}

/// Resolves signed counters into packed majority bits:
/// bit `i` is 1 iff `counts[i] > 0`, 0 iff `counts[i] < 0`, and
/// `tie_bit(i)` on an exact tie. Ties are consulted in ascending index
/// order on every backend. The tail of the final word is left clean.
pub fn majority_into(counts: &[i32], out: &mut [u64], mut tie_bit: impl FnMut(usize) -> bool) {
    debug_assert_eq!(out.len(), counts.len().div_ceil(64));
    (dispatch::selected().majority_into)(counts, out, &mut tie_bit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_words(len: usize, rng: &mut StdRng) -> Vec<u64> {
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn xor_matches_in_place_and_out_of_place() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = random_words(17, &mut rng);
        let b = random_words(17, &mut rng);
        let mut in_place = a.clone();
        xor_into(&mut in_place, &b);
        let mut out = vec![0u64; 17];
        xor(&a, &b, &mut out);
        assert_eq!(in_place, out);
        for i in 0..17 {
            assert_eq!(out[i], a[i] ^ b[i]);
        }
    }

    #[test]
    fn hamming_and_count_ones_agree_with_naive() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_words(9, &mut rng);
        let b = random_words(9, &mut rng);
        let naive: usize = (0..9 * 64)
            .filter(|&i| (a[i / 64] >> (i % 64)) & 1 != (b[i / 64] >> (i % 64)) & 1)
            .count();
        assert_eq!(hamming(&a, &b), naive);
        let zeros = [0u64; 9];
        assert_eq!(
            count_ones(&a) + count_ones(&b),
            hamming(&a, &zeros) + hamming(&zeros, &b)
        );
    }

    #[test]
    fn accumulate_matches_bitwise_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        for dim in [1usize, 63, 64, 65, 200] {
            let hv = crate::BinaryHypervector::random(dim, &mut rng);
            let mut fast = vec![0i32; dim];
            let mut reference = vec![0i32; dim];
            for weight in [1i32, -1, 3, -2] {
                accumulate(&mut fast, hv.as_words(), weight);
                for (i, bit) in hv.bits().enumerate() {
                    reference[i] += if bit { weight } else { -weight };
                }
                assert_eq!(fast, reference, "dim={dim} weight={weight}");
            }
        }
    }

    #[test]
    fn accumulate_survives_extreme_weights() {
        // |weight| >= 2^30 would overflow the doubling shortcut; the
        // fallback path must produce the plain per-bit sums.
        let mut rng = StdRng::seed_from_u64(5);
        let hv = crate::BinaryHypervector::random(100, &mut rng);
        for weight in [1i32 << 30, i32::MIN / 2, i32::MAX] {
            let mut fast = vec![0i32; 100];
            accumulate(&mut fast, hv.as_words(), weight);
            for (i, bit) in hv.bits().enumerate() {
                let expected = if bit { weight } else { weight.wrapping_neg() };
                assert_eq!(fast[i], expected, "bit {i} weight {weight}");
            }
        }
    }

    #[test]
    fn dot_bipolar_matches_bitwise_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        for dim in [1usize, 64, 65, 130] {
            let hv = crate::BinaryHypervector::random(dim, &mut rng);
            let counts: Vec<i32> = (0..dim).map(|_| rng.random_range(-50i32..50)).collect();
            let reference: i64 = hv
                .bits()
                .enumerate()
                .map(|(i, bit)| {
                    let c = i64::from(counts[i]);
                    if bit {
                        c
                    } else {
                        -c
                    }
                })
                .sum();
            assert_eq!(dot_bipolar(&counts, hv.as_words()), reference, "dim={dim}");
        }
    }

    #[test]
    fn majority_resolves_signs_and_ties() {
        let counts = [3i32, -1, 0, 0, 2];
        let mut out = vec![0u64; 1];
        majority_into(&counts, &mut out, |i| i % 2 == 0);
        // bits: 1 (pos), 0 (neg), 1 (tie, even), 0 (tie, odd), 1 (pos)
        assert_eq!(out[0], 0b10101);
    }

    #[test]
    fn masked_sum_matches_bitwise_reference() {
        let mut rng = StdRng::seed_from_u64(6);
        for dim in [1usize, 63, 64, 65, 200] {
            let a = crate::BinaryHypervector::random(dim, &mut rng);
            let b = crate::BinaryHypervector::random(dim, &mut rng);
            let counts: Vec<i32> = (0..dim).map(|_| rng.random_range(-40i32..40)).collect();
            let reference: i64 = a
                .bits()
                .zip(b.bits())
                .enumerate()
                .filter(|(_, (x, y))| *x && *y)
                .map(|(i, _)| i64::from(counts[i]))
                .sum();
            assert_eq!(
                masked_sum(&counts, a.as_words(), b.as_words()),
                reference,
                "dim={dim}"
            );
            // The sign-flipped readout identity the regression model relies
            // on: Σ_{i∈a}(b_i ? -c_i : c_i) = Σ_{i∈a} c_i − 2·masked_sum.
            let masked_total: i64 = a
                .bits()
                .enumerate()
                .filter(|(_, bit)| *bit)
                .map(|(i, _)| i64::from(counts[i]))
                .sum();
            let signed_reference: i64 = a
                .bits()
                .zip(b.bits())
                .enumerate()
                .filter(|(_, (x, _))| *x)
                .map(|(i, (_, y))| {
                    let c = i64::from(counts[i]);
                    if y {
                        -c
                    } else {
                        c
                    }
                })
                .sum();
            assert_eq!(
                masked_total - 2 * masked_sum(&counts, a.as_words(), b.as_words()),
                signed_reference,
                "dim={dim}"
            );
        }
    }

    #[test]
    fn permute_into_matches_owned_permute() {
        let mut rng = StdRng::seed_from_u64(7);
        for dim in [1usize, 2, 63, 64, 65, 130] {
            let hv = crate::BinaryHypervector::random(dim, &mut rng);
            // Scratch starts dirty below the dimension to prove it is fully
            // overwritten (the tail must stay clean, so only in-range bits).
            for shift in [0usize, 1 % dim, dim / 2, dim - 1] {
                let mut dst = vec![0u64; dim.div_ceil(64)];
                crate::BinaryHypervector::random(dim, &mut rng)
                    .as_words()
                    .clone_into(&mut dst);
                permute_into(hv.as_words(), dim, shift, &mut dst);
                let expected = hv.permute(shift as isize);
                assert_eq!(dst, expected.as_words(), "dim={dim} shift={shift}");
            }
        }
    }
}
