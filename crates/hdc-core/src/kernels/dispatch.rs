//! Runtime ISA dispatch for the word-slice kernels.
//!
//! The six hot kernels (`xor`/`xor_into`, `count_ones`/`hamming`,
//! `accumulate`, `dot_bipolar`, `masked_sum`, `majority_into`) are
//! published as a [`KernelTable`] of plain function pointers. At first
//! use, [`selected`] probes the CPU once (`is_x86_feature_detected!` /
//! `is_aarch64_feature_detected!`), caches the fastest available table in
//! a `OnceLock`, and every call through the public `kernels::*` functions
//! goes through that table — one predictable indirect call in front of an
//! `O(d/64)` loop.
//!
//! # Backends
//!
//! * [`Backend::Scalar`] — portable word loops, compiled everywhere,
//!   always selectable. The bit-exact reference.
//! * [`Backend::Avx2`] — `x86_64` with AVX2 + POPCNT: 256-bit XOR,
//!   `vpshufb` nibble-LUT popcounts, and 8-lane `i32` counter kernels
//!   that widen to `i64` lanes before summing (exact arithmetic, just
//!   reordered).
//! * [`Backend::Neon`] — `aarch64` with NEON: 128-bit XOR and
//!   `vcnt`-based popcounts; the counter kernels currently reuse scalar
//!   (see `kernels/neon.rs`).
//!
//! AVX-512 (`avx512vpopcntdq`) is *detected* and reported by
//! [`detected_features`] for bench provenance, but maps onto the AVX2
//! table for now: the AVX-512 intrinsics only stabilized after this
//! workspace's MSRV (1.75), so a dedicated backend waits on an MSRV bump.
//!
//! # Forcing a backend
//!
//! Set `HDC_KERNEL=scalar|avx2|neon` before the first kernel call to pin
//! the table — `HDC_KERNEL=scalar` is how CI proves the fallback stays
//! green, and how a bisection can rule SIMD in or out. A backend name
//! that is unknown or unavailable on the running CPU falls back to
//! `scalar` (never to a faster-but-unsupported path). The choice is
//! cached for the process lifetime.
//!
//! # Bit-identity
//!
//! Every backend must agree with [`Backend::Scalar`] **bit for bit** for
//! any dimensionality, including non-multiples of 64 and ragged tail
//! words — property-tested across all available backends in
//! `tests/kernel_dispatch.rs`. The kernels reorder exact integer
//! arithmetic only; the single caveat is `accumulate` under counter
//! overflow, where all backends agree modulo 2³² but debug-build scalar
//! panics first.

use std::sync::OnceLock;

#[cfg(target_arch = "aarch64")]
use super::neon;
use super::scalar;
#[cfg(target_arch = "x86_64")]
use super::x86;

/// A kernel implementation family, selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable word-at-a-time loops (always available).
    Scalar,
    /// 256-bit AVX2 (+POPCNT) kernels on `x86_64`.
    Avx2,
    /// 128-bit NEON kernels on `aarch64`.
    Neon,
}

impl Backend {
    /// The backend's stable lowercase name — the same token
    /// `HDC_KERNEL` accepts, and the one bench provenance records.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Signature of the majority-resolution kernel: counters in, packed words
/// out, with a caller-supplied tie-break predicate per dimension.
pub type MajorityIntoFn = fn(&[i32], &mut [u64], &mut dyn FnMut(usize) -> bool);

/// One resolved set of kernel entry points. All six dispatched kernels
/// are plain `fn` pointers, so a table can mix backends per kernel (NEON
/// does) and tests/benches can call any available backend directly.
#[derive(Debug, Clone, Copy)]
pub struct KernelTable {
    /// Which backend family this table belongs to.
    pub backend: Backend,
    /// In-place XOR bind.
    pub xor_into: fn(&mut [u64], &[u64]),
    /// Out-of-place XOR bind.
    pub xor: fn(&[u64], &[u64], &mut [u64]),
    /// Total popcount.
    pub count_ones: fn(&[u64]) -> usize,
    /// Popcount of the XOR.
    pub hamming: fn(&[u64], &[u64]) -> usize,
    /// Signed counter bundling.
    pub accumulate: fn(&mut [i32], &[u64], i32),
    /// Signed counter/query agreement.
    pub dot_bipolar: fn(&[i32], &[u64]) -> i64,
    /// Counter sum over a mask intersection.
    pub masked_sum: fn(&[i32], &[u64], &[u64]) -> i64,
    /// Counter sign resolution with tie-break.
    pub majority_into: MajorityIntoFn,
}

static SCALAR: KernelTable = KernelTable {
    backend: Backend::Scalar,
    xor_into: scalar::xor_into,
    xor: scalar::xor,
    count_ones: scalar::count_ones,
    hamming: scalar::hamming,
    accumulate: scalar::accumulate,
    dot_bipolar: scalar::dot_bipolar,
    masked_sum: scalar::masked_sum,
    majority_into: scalar::majority_into,
};

#[cfg(target_arch = "x86_64")]
static AVX2: KernelTable = KernelTable {
    backend: Backend::Avx2,
    xor_into: x86::xor_into,
    xor: x86::xor,
    count_ones: x86::count_ones,
    hamming: x86::hamming,
    accumulate: x86::accumulate,
    dot_bipolar: x86::dot_bipolar,
    masked_sum: x86::masked_sum,
    majority_into: x86::majority_into,
};

#[cfg(target_arch = "aarch64")]
static NEON: KernelTable = KernelTable {
    backend: Backend::Neon,
    xor_into: neon::xor_into,
    xor: neon::xor,
    count_ones: neon::count_ones,
    hamming: neon::hamming,
    // The i32-lane kernels stay scalar on aarch64 for now (see
    // kernels/neon.rs); mixing is fine because every entry is
    // bit-identical to scalar.
    accumulate: scalar::accumulate,
    dot_bipolar: scalar::dot_bipolar,
    masked_sum: scalar::masked_sum,
    majority_into: scalar::majority_into,
};

/// The table for `backend`, if that backend is compiled in **and** the
/// running CPU supports it. `Scalar` always resolves.
#[must_use]
pub fn table(backend: Backend) -> Option<&'static KernelTable> {
    match backend {
        Backend::Scalar => Some(&SCALAR),
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("popcnt")
            {
                Some(&AVX2)
            } else {
                None
            }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => {
            if std::arch::is_aarch64_feature_detected!("neon") {
                Some(&NEON)
            } else {
                None
            }
        }
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

/// Every backend usable on this machine, scalar first — what the parity
/// proptests iterate over.
#[must_use]
pub fn available() -> Vec<Backend> {
    [Backend::Scalar, Backend::Avx2, Backend::Neon]
        .into_iter()
        .filter(|&b| table(b).is_some())
        .collect()
}

/// Parses an `HDC_KERNEL` override. Unknown names map to `None` (and the
/// selection falls back to scalar — never silently to a faster path).
fn parse_override(name: &str) -> Option<Backend> {
    match name.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(Backend::Scalar),
        "avx2" => Some(Backend::Avx2),
        "neon" => Some(Backend::Neon),
        _ => None,
    }
}

/// Picks the fastest table available on this CPU (no override): AVX2 on
/// `x86_64`, NEON on `aarch64`, scalar otherwise.
fn fastest() -> &'static KernelTable {
    #[cfg(target_arch = "x86_64")]
    if let Some(t) = table(Backend::Avx2) {
        return t;
    }
    #[cfg(target_arch = "aarch64")]
    if let Some(t) = table(Backend::Neon) {
        return t;
    }
    &SCALAR
}

/// The process-wide kernel table: resolved once (honouring `HDC_KERNEL`),
/// then cached. Every public `kernels::*` entry point calls through this.
#[must_use]
pub fn selected() -> &'static KernelTable {
    static SELECTED: OnceLock<&'static KernelTable> = OnceLock::new();
    SELECTED.get_or_init(|| match std::env::var("HDC_KERNEL") {
        Ok(name) => parse_override(&name).and_then(table).unwrap_or(&SCALAR),
        Err(_) => fastest(),
    })
}

/// The backend family [`selected`] resolved to — recorded by bench
/// provenance headers so SIMD numbers are comparable across runners.
#[must_use]
pub fn selected_backend() -> Backend {
    selected().backend
}

/// Whether the dense SIMD `masked_sum` kernel should handle a call whose
/// mask intersection has `intersection_ones` set bits out of `dim`
/// counters — the density-aware dispatch policy the AVX2 backend applies
/// per call.
///
/// The dense kernel streams every counter group (fixed `O(d)` cost); the
/// scalar set-bit walk touches only `popcount(a ∧ b)` counters. Measured
/// on the BENCH_PR7 host, the walk costs ~3× a dense counter group per
/// visited bit at readout-typical dimensions, so the walk wins below ~1/3
/// density — but its per-bit cost degrades once the counter array
/// outgrows cache, which is why dense AVX2 crossed over at d = 65_536
/// despite the same ~25% density. Above 32k counters the policy therefore
/// hands the dense kernel everything denser than 1/5.
///
/// Pure so tests can pin the boundary; both sides are bit-identical
/// (proptested in `tests/kernel_dispatch.rs`), the policy is only ever a
/// performance choice.
#[must_use]
pub fn masked_sum_prefers_dense(intersection_ones: usize, dim: usize) -> bool {
    let walk_cost_factor = if dim >= 32_768 { 5 } else { 3 };
    intersection_ones.saturating_mul(walk_cost_factor) > dim
}

/// The ISA features detected on this CPU that are relevant to kernel
/// selection, in a stable order — bench provenance for `BENCH_*.json`
/// host headers. Detection is reported even for features (AVX-512) that
/// do not yet have their own backend.
#[must_use]
pub fn detected_features() -> Vec<&'static str> {
    let mut features = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        for (name, detected) in [
            ("sse2", std::arch::is_x86_feature_detected!("sse2")),
            ("ssse3", std::arch::is_x86_feature_detected!("ssse3")),
            ("popcnt", std::arch::is_x86_feature_detected!("popcnt")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            (
                "avx512vpopcntdq",
                std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
            ),
        ] {
            if detected {
                features.push(name);
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            features.push("neon");
        }
    }
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(available().contains(&Backend::Scalar));
        assert_eq!(table(Backend::Scalar).unwrap().backend, Backend::Scalar);
    }

    #[test]
    fn selected_is_available_and_stable() {
        let first = selected_backend();
        assert!(available().contains(&first));
        // The OnceLock caches: repeated queries agree.
        assert_eq!(selected_backend(), first);
        assert_eq!(selected().backend, first);
    }

    #[test]
    fn override_parsing() {
        assert_eq!(parse_override(" Scalar "), Some(Backend::Scalar));
        assert_eq!(parse_override("AVX2"), Some(Backend::Avx2));
        assert_eq!(parse_override("neon"), Some(Backend::Neon));
        assert_eq!(parse_override("avx512"), None);
        assert_eq!(parse_override(""), None);
    }

    #[test]
    fn masked_sum_density_policy_matches_the_measured_crossovers() {
        // Sparse intersections always walk, regardless of dimension.
        assert!(!masked_sum_prefers_dense(0, 10_000));
        assert!(!masked_sum_prefers_dense(100, 10_000));
        assert!(!masked_sum_prefers_dense(10_000, 1_000_000));
        // The BENCH_PR7 data points: ~25% density loses to the walk at
        // d = 10_000 but crosses over to dense at d = 65_536.
        assert!(!masked_sum_prefers_dense(2_500, 10_000));
        assert!(masked_sum_prefers_dense(16_384, 65_536));
        // Dense intersections stream at any size.
        assert!(masked_sum_prefers_dense(5_000, 10_000));
        assert!(masked_sum_prefers_dense(32_768, 65_536));
        // Boundary exactness: strictly-greater comparison, no overflow.
        assert!(!masked_sum_prefers_dense(3_333, 10_000));
        assert!(masked_sum_prefers_dense(3_334, 10_000));
        assert!(!masked_sum_prefers_dense(usize::MAX, usize::MAX));
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in [Backend::Scalar, Backend::Avx2, Backend::Neon] {
            assert_eq!(parse_override(backend.name()), Some(backend));
            assert_eq!(backend.to_string(), backend.name());
        }
    }
}
