use std::error::Error;
use std::fmt;

/// Errors produced by fallible hyperdimensional-computing constructors.
///
/// Hot-path arithmetic (binding, Hamming distance, …) panics on dimension
/// mismatch instead — see the `# Panics` sections of the respective methods —
/// while configuration-time constructors (basis sets, encoders, models)
/// return `Result<_, HdcError>` so applications can surface invalid
/// parameters gracefully.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HdcError {
    /// Two hypervectors (or a hypervector and an accumulator) with different
    /// dimensionalities were combined.
    DimensionMismatch {
        /// The dimensionality expected by the receiver.
        expected: usize,
        /// The dimensionality that was supplied.
        found: usize,
    },
    /// A hypervector dimensionality of zero was requested.
    InvalidDimension(usize),
    /// A basis set with fewer members than the construction supports was
    /// requested (e.g. a level set needs at least two levels).
    InvalidBasisSize {
        /// The requested number of basis hypervectors.
        requested: usize,
        /// The minimum supported by the construction.
        minimum: usize,
    },
    /// The randomness hyperparameter `r` lies outside `[0, 1]` or is NaN.
    InvalidRandomness(f64),
    /// A scalar encoder was configured with an empty or inverted interval.
    InvalidInterval {
        /// Lower bound of the interval.
        low: f64,
        /// Upper bound of the interval.
        high: f64,
    },
    /// A batch of encoded samples and a per-sample slice (e.g. labels)
    /// disagree in length.
    BatchLengthMismatch {
        /// Number of rows in the batch.
        rows: usize,
        /// Number of per-sample values supplied.
        labels: usize,
    },
    /// An operation that needs at least one input received none.
    EmptyInput,
    /// A model was asked to train on a label outside its configured range.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The number of classes the model was configured with.
        classes: usize,
    },
    /// A request was sent to a serving runtime that has already shut down
    /// (its work queue is closed, so the request can never be answered).
    ServiceUnavailable,
    /// A task-specific operation was invoked on a pipeline configured for
    /// the other task family (e.g. `predict_value` on a classification
    /// pipeline, or `fit` with a class label on a regression pipeline).
    TaskMismatch {
        /// The task family the operation requires.
        expected: &'static str,
        /// The task family the pipeline is configured for.
        found: &'static str,
    },
    /// A pipeline spec's encoder does not produce the input type it was
    /// asked to build for (e.g. loading an angle-pipeline snapshot as a
    /// `Model<f64>`).
    SpecMismatch {
        /// The encoder spec the input type requires.
        expected: &'static str,
        /// The encoder spec that was found.
        found: &'static str,
    },
    /// A snapshot could not be read, written or parsed (I/O failure, bad
    /// magic/version, truncated or internally inconsistent state).
    Snapshot(
        /// Human-readable reason.
        String,
    ),
    /// Durable storage (write-ahead log, snapshot manifest or paged item
    /// memory) could not be read or written: I/O failure, bad magic or
    /// version, a CRC mismatch in a sealed segment, or a spec digest that
    /// does not match the recovering model.
    Storage(
        /// Human-readable reason.
        String,
    ),
    /// A network operation against a remote serving process exceeded its
    /// configured deadline (connect, read or write timeout).
    Timeout {
        /// The operation that timed out (e.g. `"connect"`, `"predict"`).
        operation: &'static str,
    },
    /// A transport-level failure talking to a remote serving process:
    /// connection refused or reset, a malformed frame, or a server-side
    /// error relayed over the wire.
    Transport(
        /// Human-readable reason.
        String,
    ),
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            HdcError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            HdcError::InvalidDimension(dim) => {
                write!(f, "invalid hypervector dimension {dim}; must be at least 1")
            }
            HdcError::InvalidBasisSize { requested, minimum } => write!(
                f,
                "invalid basis size {requested}; this construction needs at least {minimum}"
            ),
            HdcError::InvalidRandomness(r) => {
                write!(f, "randomness hyperparameter {r} is outside [0, 1]")
            }
            HdcError::InvalidInterval { low, high } => {
                write!(
                    f,
                    "invalid interval [{low}, {high}]; bounds must be finite and low < high"
                )
            }
            HdcError::BatchLengthMismatch { rows, labels } => write!(
                f,
                "batch of {rows} rows does not match {labels} per-sample values"
            ),
            HdcError::EmptyInput => write!(f, "operation requires at least one input"),
            HdcError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            HdcError::ServiceUnavailable => {
                write!(f, "serving runtime has shut down; request not processed")
            }
            HdcError::TaskMismatch { expected, found } => {
                write!(
                    f,
                    "task mismatch: operation requires a {expected} pipeline, found {found}"
                )
            }
            HdcError::SpecMismatch { expected, found } => {
                write!(
                    f,
                    "spec mismatch: input type requires a {expected} encoder spec, found {found}"
                )
            }
            HdcError::Snapshot(ref reason) => write!(f, "snapshot error: {reason}"),
            HdcError::Storage(ref reason) => write!(f, "storage error: {reason}"),
            HdcError::Timeout { operation } => {
                write!(f, "timed out waiting for {operation} on a remote shard")
            }
            HdcError::Transport(ref reason) => write!(f, "transport error: {reason}"),
        }
    }
}

impl Error for HdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let messages = [
            HdcError::DimensionMismatch {
                expected: 4,
                found: 8,
            }
            .to_string(),
            HdcError::InvalidDimension(0).to_string(),
            HdcError::InvalidBasisSize {
                requested: 1,
                minimum: 2,
            }
            .to_string(),
            HdcError::InvalidRandomness(1.5).to_string(),
            HdcError::InvalidInterval {
                low: 2.0,
                high: 1.0,
            }
            .to_string(),
            HdcError::BatchLengthMismatch { rows: 4, labels: 3 }.to_string(),
            HdcError::EmptyInput.to_string(),
            HdcError::LabelOutOfRange {
                label: 9,
                classes: 3,
            }
            .to_string(),
            HdcError::ServiceUnavailable.to_string(),
            HdcError::TaskMismatch {
                expected: "regression",
                found: "classification",
            }
            .to_string(),
            HdcError::SpecMismatch {
                expected: "Angle",
                found: "Scalar",
            }
            .to_string(),
            HdcError::Snapshot("truncated header".into()).to_string(),
            HdcError::Storage("torn segment header".into()).to_string(),
            HdcError::Timeout {
                operation: "connect",
            }
            .to_string(),
            HdcError::Transport("connection reset by peer".into()).to_string(),
        ];
        for message in messages {
            assert!(!message.is_empty());
            assert!(
                !message.ends_with('.'),
                "no trailing punctuation: {message}"
            );
            assert!(message.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn Error> = Box::new(HdcError::EmptyInput);
        assert!(err.source().is_none());
    }
}
