//! Similarity search helpers: nearest-neighbour queries over collections of
//! hypervectors, the primitive behind both classification (nearest
//! class-vector) and regression decoding (nearest label-vector).
//!
//! ```
//! use hdc_core::{similarity, BinaryHypervector};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(2);
//! let items: Vec<_> = (0..4).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
//! let noisy = items[2].corrupt(0.2, &mut rng);
//! let (index, distance) = similarity::nearest(&noisy, &items).expect("non-empty");
//! assert_eq!(index, 2);
//! assert!(distance < 0.3);
//! ```

use crate::BinaryHypervector;

/// Finds the candidate with the smallest normalized Hamming distance to
/// `query`, returning its index and that distance. Returns `None` when
/// `candidates` is empty. Ties resolve to the earliest index.
///
/// # Panics
///
/// Panics if any candidate's dimensionality differs from the query's.
pub fn nearest<'a, I>(query: &BinaryHypervector, candidates: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    let mut best: Option<(usize, usize)> = None;
    for (i, hv) in candidates.into_iter().enumerate() {
        let d = query.hamming(hv);
        if best.map_or(true, |(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best.map(|(i, d)| (i, d as f64 / query.dim() as f64))
}

/// Finds the candidate with the greatest similarity `1 − δ` to `query`.
/// Equivalent to [`nearest`] but reports similarity instead of distance.
///
/// # Panics
///
/// Panics if any candidate's dimensionality differs from the query's.
pub fn most_similar<'a, I>(query: &BinaryHypervector, candidates: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    nearest(query, candidates).map(|(i, d)| (i, 1.0 - d))
}

/// Computes the normalized Hamming distance from `query` to every candidate.
///
/// # Panics
///
/// Panics if any candidate's dimensionality differs from the query's.
pub fn distances<'a, I>(query: &BinaryHypervector, candidates: I) -> Vec<f64>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    candidates
        .into_iter()
        .map(|hv| query.normalized_hamming(hv))
        .collect()
}

/// Computes the full pairwise similarity matrix `1 − δ` of a set of
/// hypervectors (the quantity plotted in the paper's Figure 3).
///
/// # Panics
///
/// Panics if the hypervectors do not all share the same dimensionality.
pub fn pairwise_similarity(hvs: &[BinaryHypervector]) -> Vec<Vec<f64>> {
    let n = hvs.len();
    let mut matrix = vec![vec![0.0; n]; n];
    for i in 0..n {
        matrix[i][i] = 1.0;
        for j in (i + 1)..n {
            let s = hvs[i].similarity(&hvs[j]);
            matrix[i][j] = s;
            matrix[j][i] = s;
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(404)
    }

    #[test]
    fn nearest_empty_is_none() {
        let q = BinaryHypervector::zeros(16);
        assert!(nearest(&q, &[]).is_none());
    }

    #[test]
    fn nearest_finds_exact_match() {
        let mut r = rng();
        let items: Vec<_> = (0..8)
            .map(|_| BinaryHypervector::random(4_096, &mut r))
            .collect();
        for (i, item) in items.iter().enumerate() {
            let (found, d) = nearest(item, &items).unwrap();
            assert_eq!(found, i);
            assert_eq!(d, 0.0);
        }
    }

    #[test]
    fn nearest_tolerates_noise() {
        let mut r = rng();
        let items: Vec<_> = (0..16)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        for (i, item) in items.iter().enumerate() {
            let noisy = item.corrupt(0.3, &mut r);
            let (found, _) = nearest(&noisy, &items).unwrap();
            assert_eq!(found, i, "30% noise must still decode");
        }
    }

    #[test]
    fn nearest_tie_resolves_to_first() {
        let a = BinaryHypervector::from_bits(&[true, false, false, false]);
        let b = BinaryHypervector::from_bits(&[false, true, false, false]);
        let q = BinaryHypervector::zeros(4);
        let (i, d) = nearest(&q, [&a, &b]).unwrap();
        assert_eq!(i, 0);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn most_similar_complements_nearest() {
        let mut r = rng();
        let items: Vec<_> = (0..4)
            .map(|_| BinaryHypervector::random(1_024, &mut r))
            .collect();
        let q = items[1].corrupt(0.1, &mut r);
        let (ni, nd) = nearest(&q, &items).unwrap();
        let (si, ss) = most_similar(&q, &items).unwrap();
        assert_eq!(ni, si);
        assert!((ss - (1.0 - nd)).abs() < 1e-12);
    }

    #[test]
    fn distances_len_matches() {
        let mut r = rng();
        let items: Vec<_> = (0..5)
            .map(|_| BinaryHypervector::random(256, &mut r))
            .collect();
        let q = BinaryHypervector::random(256, &mut r);
        assert_eq!(distances(&q, &items).len(), 5);
    }

    #[test]
    fn pairwise_similarity_is_symmetric_with_unit_diagonal() {
        let mut r = rng();
        let items: Vec<_> = (0..6)
            .map(|_| BinaryHypervector::random(2_048, &mut r))
            .collect();
        let m = pairwise_similarity(&items);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, &value) in row.iter().enumerate() {
                assert!((value - m[j][i]).abs() < 1e-12);
                if i != j {
                    assert!((value - 0.5).abs() < 0.06);
                }
            }
        }
    }
}
