//! Similarity search helpers: nearest-neighbour queries over collections of
//! hypervectors, the primitive behind both classification (nearest
//! class-vector) and regression decoding (nearest label-vector).
//!
//! ```
//! use hdc_core::{similarity, BinaryHypervector};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(2);
//! let items: Vec<_> = (0..4).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
//! let noisy = items[2].corrupt(0.2, &mut rng);
//! let (index, distance) = similarity::nearest(&noisy, &items).expect("non-empty");
//! assert_eq!(index, 2);
//! assert!(distance < 0.3);
//! ```

use crate::{BinaryHypervector, HvRef};

/// Finds the candidate with the smallest normalized Hamming distance to
/// `query`, returning its index and that distance. Returns `None` when
/// `candidates` is empty. Ties resolve to the earliest index.
///
/// # Panics
///
/// Panics if any candidate's dimensionality differs from the query's.
pub fn nearest<'a, I>(query: &BinaryHypervector, candidates: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    nearest_to_row(query.view(), candidates)
}

/// [`nearest`] over a borrowed row view (e.g. one row of a
/// [`HypervectorBatch`](crate::HypervectorBatch)) — the form batched
/// inference uses to search without materializing owned queries.
///
/// # Panics
///
/// Panics if any candidate's dimensionality differs from the query's.
pub fn nearest_to_row<'a, I>(query: HvRef<'_>, candidates: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    let mut best: Option<(usize, usize)> = None;
    for (i, hv) in candidates.into_iter().enumerate() {
        let d = query.hamming(hv.view());
        if best.map_or(true, |(_, bd)| d < bd) {
            best = Some((i, d));
        }
    }
    best.map(|(i, d)| (i, d as f64 / query.dim() as f64))
}

/// Finds the candidate with the greatest similarity `1 − δ` to `query`.
/// Equivalent to [`nearest`] but reports similarity instead of distance.
///
/// # Panics
///
/// Panics if any candidate's dimensionality differs from the query's.
pub fn most_similar<'a, I>(query: &BinaryHypervector, candidates: I) -> Option<(usize, f64)>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    nearest(query, candidates).map(|(i, d)| (i, 1.0 - d))
}

/// Computes the normalized Hamming distance from `query` to every candidate.
///
/// # Panics
///
/// Panics if any candidate's dimensionality differs from the query's.
pub fn distances<'a, I>(query: &BinaryHypervector, candidates: I) -> Vec<f64>
where
    I: IntoIterator<Item = &'a BinaryHypervector>,
{
    candidates
        .into_iter()
        .map(|hv| query.normalized_hamming(hv))
        .collect()
}

/// A dense symmetric `n × n` similarity matrix stored as a single flat
/// row-major allocation — the shape the paper's Figure 3 sweep consumes.
///
/// Produced by [`pairwise_similarity_matrix`]; one `Vec<f64>` replaces the
/// `n + 1` allocations of the older nested-`Vec` representation.
///
/// ```
/// use hdc_core::{similarity, BinaryHypervector};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(8);
/// let items: Vec<_> = (0..3).map(|_| BinaryHypervector::random(10_000, &mut rng)).collect();
/// let m = similarity::pairwise_similarity_matrix(&items);
/// assert_eq!(m.len(), 3);
/// assert_eq!(m.get(0, 0), 1.0);
/// assert_eq!(m.get(0, 2), m.get(2, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityMatrix {
    n: usize,
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// Builds a matrix directly from flat row-major values (e.g. for tests
    /// or externally computed similarities).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n * n`.
    #[must_use]
    pub fn from_values(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            n * n,
            "expected {} values for an {n} × {n} matrix, found {}",
            n * n,
            values.len()
        );
        Self { n, values }
    }

    /// Side length `n` of the matrix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the 0 × 0 matrix.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The similarity of members `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if either index is `>= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j < self.n,
            "indices ({i}, {j}) out of range for {n} members",
            n = self.n
        );
        self.values[i * self.n + j]
    }

    /// Row `i` as a contiguous slice of `n` similarities.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(
            i < self.n,
            "row {i} out of range for {n} members",
            n = self.n
        );
        &self.values[i * self.n..(i + 1) * self.n]
    }

    /// Iterates over the rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.values.chunks_exact(self.n.max(1)).take(self.n)
    }

    /// The flat row-major backing storage (`n²` values).
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Copies out the legacy nested-`Vec` shape (one allocation per row).
    #[must_use]
    pub fn to_nested(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }
}

/// Computes the full pairwise similarity matrix `1 − δ` of a set of
/// hypervectors (the quantity plotted in the paper's Figure 3), each pair
/// evaluated once and mirrored.
///
/// # Panics
///
/// Panics if the hypervectors do not all share the same dimensionality.
#[must_use]
pub fn pairwise_similarity_matrix(hvs: &[BinaryHypervector]) -> SimilarityMatrix {
    let n = hvs.len();
    let mut values = vec![0.0; n * n];
    for i in 0..n {
        values[i * n + i] = 1.0;
        for j in (i + 1)..n {
            let s = hvs[i].similarity(&hvs[j]);
            values[i * n + j] = s;
            values[j * n + i] = s;
        }
    }
    SimilarityMatrix { n, values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(404)
    }

    #[test]
    fn nearest_empty_is_none() {
        let q = BinaryHypervector::zeros(16);
        assert!(nearest(&q, &[]).is_none());
    }

    #[test]
    fn nearest_finds_exact_match() {
        let mut r = rng();
        let items: Vec<_> = (0..8)
            .map(|_| BinaryHypervector::random(4_096, &mut r))
            .collect();
        for (i, item) in items.iter().enumerate() {
            let (found, d) = nearest(item, &items).unwrap();
            assert_eq!(found, i);
            assert_eq!(d, 0.0);
        }
    }

    #[test]
    fn nearest_tolerates_noise() {
        let mut r = rng();
        let items: Vec<_> = (0..16)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        for (i, item) in items.iter().enumerate() {
            let noisy = item.corrupt(0.3, &mut r);
            let (found, _) = nearest(&noisy, &items).unwrap();
            assert_eq!(found, i, "30% noise must still decode");
        }
    }

    #[test]
    fn nearest_tie_resolves_to_first() {
        let a = BinaryHypervector::from_bits(&[true, false, false, false]);
        let b = BinaryHypervector::from_bits(&[false, true, false, false]);
        let q = BinaryHypervector::zeros(4);
        let (i, d) = nearest(&q, [&a, &b]).unwrap();
        assert_eq!(i, 0);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn most_similar_complements_nearest() {
        let mut r = rng();
        let items: Vec<_> = (0..4)
            .map(|_| BinaryHypervector::random(1_024, &mut r))
            .collect();
        let q = items[1].corrupt(0.1, &mut r);
        let (ni, nd) = nearest(&q, &items).unwrap();
        let (si, ss) = most_similar(&q, &items).unwrap();
        assert_eq!(ni, si);
        assert!((ss - (1.0 - nd)).abs() < 1e-12);
    }

    #[test]
    fn distances_len_matches() {
        let mut r = rng();
        let items: Vec<_> = (0..5)
            .map(|_| BinaryHypervector::random(256, &mut r))
            .collect();
        let q = BinaryHypervector::random(256, &mut r);
        assert_eq!(distances(&q, &items).len(), 5);
    }

    #[test]
    fn pairwise_similarity_is_symmetric_with_unit_diagonal() {
        let mut r = rng();
        let items: Vec<_> = (0..6)
            .map(|_| BinaryHypervector::random(2_048, &mut r))
            .collect();
        let m = pairwise_similarity_matrix(&items);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
        assert_eq!(m.as_slice().len(), 36);
        for i in 0..6 {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..6 {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                if i != j {
                    assert!((m.get(i, j) - 0.5).abs() < 0.06);
                }
            }
        }
    }

    #[test]
    fn nested_copy_out_matches_flat_matrix() {
        let mut r = rng();
        let items: Vec<_> = (0..4)
            .map(|_| BinaryHypervector::random(512, &mut r))
            .collect();
        let flat = pairwise_similarity_matrix(&items);
        let nested = flat.to_nested();
        assert_eq!(nested.len(), 4);
        for (i, row) in flat.rows().enumerate() {
            assert_eq!(row, flat.row(i));
            assert_eq!(row, nested[i].as_slice());
        }
    }

    #[test]
    fn empty_matrix_is_well_formed() {
        let m = pairwise_similarity_matrix(&[]);
        assert!(m.is_empty());
        assert_eq!(m.rows().count(), 0);
        assert!(m.to_nested().is_empty());
    }

    #[test]
    fn nearest_to_row_matches_nearest() {
        let mut r = rng();
        let items: Vec<_> = (0..6)
            .map(|_| BinaryHypervector::random(1_030, &mut r))
            .collect();
        let q = items[4].corrupt(0.2, &mut r);
        assert_eq!(nearest(&q, &items), nearest_to_row(q.view(), &items));
    }
}
