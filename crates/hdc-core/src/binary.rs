use std::fmt;
use std::ops::{BitXor, BitXorAssign, Not};

use rand::Rng;

use crate::{kernels, HvRef};

const WORD_BITS: usize = 64;

/// A dense binary hypervector: a point of the hyperspace `H = {0, 1}^d`.
///
/// Bits are packed into `u64` words (least-significant bit first), so the
/// three HDC operations compile down to word-wide instructions:
///
/// * [`bind`](Self::bind) — word-wise XOR,
/// * bundling — see [`MajorityAccumulator`](crate::MajorityAccumulator),
/// * [`permute`](Self::permute) — cyclic bit rotation.
///
/// The dimensionality `d` is a runtime value; the paper (and every experiment
/// harness in this workspace) uses `d = 10,000`
/// ([`DEFAULT_DIMENSION`](crate::DEFAULT_DIMENSION)).
///
/// # Example
///
/// ```
/// use hdc_core::BinaryHypervector;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = BinaryHypervector::random(10_000, &mut rng);
/// let b = BinaryHypervector::random(10_000, &mut rng);
/// // Two independently sampled hypervectors are quasi-orthogonal.
/// assert!((a.normalized_hamming(&b) - 0.5).abs() < 0.05);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BinaryHypervector {
    dim: usize,
    words: Vec<u64>,
}

impl BinaryHypervector {
    /// Creates the all-zeros hypervector of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        Self {
            dim,
            words: vec![0; dim.div_ceil(WORD_BITS)],
        }
    }

    /// Creates the all-ones hypervector of dimensionality `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn ones(dim: usize) -> Self {
        let mut hv = Self::zeros(dim);
        for word in &mut hv.words {
            *word = !0;
        }
        hv.mask_tail();
        hv
    }

    /// Samples a hypervector uniformly at random from `{0, 1}^dim`.
    ///
    /// This is the distribution behind *random-hypervectors* (paper §3.1):
    /// every bit is i.i.d. `Bernoulli(1/2)`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn random(dim: usize, rng: &mut impl Rng) -> Self {
        let mut hv = Self::zeros(dim);
        for word in &mut hv.words {
            *word = rng.random();
        }
        hv.mask_tail();
        hv
    }

    /// Builds a hypervector from a slice of booleans (`bits[i]` becomes bit `i`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        Self::from_fn(bits.len(), |i| bits[i])
    }

    /// Builds a hypervector by evaluating `f` at every bit index.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn from_fn(dim: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut hv = Self::zeros(dim);
        for i in 0..dim {
            if f(i) {
                hv.words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
            }
        }
        hv
    }

    /// The dimensionality `d` of this hypervector.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed `u64` words backing this hypervector (LSB-first layout).
    ///
    /// Bits at positions `>= dim` in the final word are guaranteed to be zero.
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a hypervector directly from packed words (LSB-first). Bits at
    /// positions `>= dim` in the final word are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `words.len() != dim.div_ceil(64)`.
    #[must_use]
    pub fn from_words(dim: usize, words: Vec<u64>) -> Self {
        assert!(dim > 0, "hypervector dimension must be at least 1");
        assert_eq!(
            words.len(),
            dim.div_ceil(WORD_BITS),
            "word count does not match dimension {dim}"
        );
        let mut hv = Self { dim, words };
        hv.mask_tail();
        hv
    }

    /// A borrowed [`HvRef`] view of this hypervector — the common currency
    /// between owned vectors and [`HypervectorBatch`](crate::HypervectorBatch)
    /// rows.
    #[must_use]
    pub fn view(&self) -> HvRef<'_> {
        HvRef::new(self.dim, &self.words)
    }

    /// Returns bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.dim,
            "bit index {index} out of range for dimension {}",
            self.dim
        );
        (self.words[index / WORD_BITS] >> (index % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.dim,
            "bit index {index} out of range for dimension {}",
            self.dim
        );
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            self.words[index / WORD_BITS] |= mask;
        } else {
            self.words[index / WORD_BITS] &= !mask;
        }
    }

    /// Inverts bit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dim()`.
    pub fn flip(&mut self, index: usize) {
        assert!(
            index < self.dim,
            "bit index {index} out of range for dimension {}",
            self.dim
        );
        self.words[index / WORD_BITS] ^= 1 << (index % WORD_BITS);
    }

    /// Number of one-bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        kernels::count_ones(&self.words)
    }

    /// Binding `⊗` (element-wise XOR): associates two hypervectors and
    /// produces a result dissimilar to both operands. Binding is commutative
    /// and self-inverse: `a.bind(&a.bind(&b)) == b`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn bind(&self, other: &Self) -> Self {
        self.assert_same_dim(other);
        let mut words = vec![0u64; self.words.len()];
        kernels::xor(&self.words, &other.words, &mut words);
        Self {
            dim: self.dim,
            words,
        }
    }

    /// In-place [`bind`](Self::bind).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    pub fn bind_assign(&mut self, other: &Self) {
        self.assert_same_dim(other);
        kernels::xor_into(&mut self.words, &other.words);
    }

    /// The permutation operator `Π^shift`: a cyclic shift that moves bit `i`
    /// to position `(i + shift) mod d`. Negative shifts rotate the other way,
    /// so `hv.permute(k).permute(-k) == hv`.
    ///
    /// Permutation is used to encode order (paper §2.1); the permuted vector
    /// is quasi-orthogonal to the input for almost all shifts.
    #[must_use]
    pub fn permute(&self, shift: isize) -> Self {
        let s = shift.rem_euclid(self.dim as isize) as usize;
        let mut words = vec![0u64; self.words.len()];
        kernels::permute_into(&self.words, self.dim, s, &mut words);
        Self {
            dim: self.dim,
            words,
        }
    }

    /// Inverse of [`permute`](Self::permute): `hv.permute(k).permute_inverse(k) == hv`.
    #[must_use]
    pub fn permute_inverse(&self, shift: isize) -> Self {
        self.permute(shift.wrapping_neg())
    }

    /// Hamming distance: the number of positions at which the two
    /// hypervectors differ.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> usize {
        self.assert_same_dim(other);
        kernels::hamming(&self.words, &other.words)
    }

    /// Normalized Hamming distance `δ ∈ [0, 1]` (paper §2): Hamming distance
    /// divided by the dimensionality. Quasi-orthogonal vectors have `δ ≈ 0.5`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn normalized_hamming(&self, other: &Self) -> f64 {
        self.hamming(other) as f64 / self.dim as f64
    }

    /// Similarity `1 − δ` (paper §2).
    ///
    /// # Panics
    ///
    /// Panics if the dimensionalities differ.
    #[must_use]
    pub fn similarity(&self, other: &Self) -> f64 {
        1.0 - self.normalized_hamming(other)
    }

    /// Returns a copy in which every bit was flipped independently with
    /// probability `flip_probability`. Used for robustness / failure
    /// injection experiments.
    ///
    /// # Panics
    ///
    /// Panics if `flip_probability` is not in `[0, 1]`.
    #[must_use]
    pub fn corrupt(&self, flip_probability: f64, rng: &mut impl Rng) -> Self {
        assert!(
            (0.0..=1.0).contains(&flip_probability),
            "flip probability {flip_probability} must lie in [0, 1]"
        );
        let mut out = self.clone();
        for i in 0..self.dim {
            if rng.random_bool(flip_probability) {
                out.flip(i);
            }
        }
        out
    }

    /// Flips the bits at the provided positions (used by the legacy
    /// level-hypervector construction, paper §4).
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    pub fn flip_positions(&mut self, positions: &[usize]) {
        for &p in positions {
            self.flip(p);
        }
    }

    /// Iterates over the bits, LSB-first.
    ///
    /// ```
    /// use hdc_core::BinaryHypervector;
    /// let hv = BinaryHypervector::from_bits(&[true, false, true]);
    /// let bits: Vec<bool> = hv.bits().collect();
    /// assert_eq!(bits, [true, false, true]);
    /// ```
    #[must_use]
    pub fn bits(&self) -> Bits<'_> {
        Bits { hv: self, index: 0 }
    }

    /// Converts to the bipolar (±1) representation: bit 1 ↦ +1, bit 0 ↦ −1.
    #[must_use]
    pub fn to_bipolar(&self) -> crate::BipolarHypervector {
        crate::BipolarHypervector::from_fn(self.dim, |i| if self.get(i) { 1 } else { -1 })
    }

    fn assert_same_dim(&self, other: &Self) {
        assert_eq!(
            self.dim, other.dim,
            "dimension mismatch: expected {}, found {}",
            self.dim, other.dim
        );
    }

    fn mask_tail(&mut self) {
        let rem = self.dim % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    #[cfg(test)]
    fn tail_is_clean(&self) -> bool {
        let rem = self.dim % WORD_BITS;
        rem == 0
            || self
                .words
                .last()
                .map_or(true, |w| w & !((1u64 << rem) - 1) == 0)
    }
}

impl fmt::Debug for BinaryHypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 32;
        write!(f, "BinaryHypervector {{ dim: {}, bits: ", self.dim)?;
        for i in 0..self.dim.min(PREVIEW) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.dim > PREVIEW {
            write!(f, "…")?;
        }
        write!(f, " }}")
    }
}

impl fmt::Display for BinaryHypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hypervector(d={}, ones={})", self.dim, self.count_ones())
    }
}

impl BitXor for &BinaryHypervector {
    type Output = BinaryHypervector;

    /// `^` is the binding operation — see [`BinaryHypervector::bind`].
    fn bitxor(self, rhs: Self) -> BinaryHypervector {
        self.bind(rhs)
    }
}

impl BitXorAssign<&BinaryHypervector> for BinaryHypervector {
    fn bitxor_assign(&mut self, rhs: &BinaryHypervector) {
        self.bind_assign(rhs);
    }
}

impl Not for &BinaryHypervector {
    type Output = BinaryHypervector;

    /// Complements every bit (the vector at maximal distance `δ = 1`).
    fn not(self) -> BinaryHypervector {
        let mut out = BinaryHypervector {
            dim: self.dim,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.mask_tail();
        out
    }
}

/// Iterator over the bits of a [`BinaryHypervector`], created by
/// [`BinaryHypervector::bits`].
#[derive(Debug, Clone)]
pub struct Bits<'a> {
    hv: &'a BinaryHypervector,
    index: usize,
}

impl Iterator for Bits<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        if self.index >= self.hv.dim {
            return None;
        }
        let bit = self.hv.get(self.index);
        self.index += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.hv.dim - self.index;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Bits<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEADBEEF)
    }

    #[test]
    fn zeros_and_ones_counts() {
        for dim in [1, 63, 64, 65, 100, 10_000] {
            assert_eq!(BinaryHypervector::zeros(dim).count_ones(), 0);
            assert_eq!(BinaryHypervector::ones(dim).count_ones(), dim);
        }
    }

    #[test]
    #[should_panic(expected = "dimension must be at least 1")]
    fn zero_dimension_panics() {
        let _ = BinaryHypervector::zeros(0);
    }

    #[test]
    fn random_is_roughly_balanced() {
        let hv = BinaryHypervector::random(10_000, &mut rng());
        let ones = hv.count_ones();
        assert!((4_700..=5_300).contains(&ones), "ones = {ones}");
        assert!(hv.tail_is_clean());
    }

    #[test]
    fn get_set_flip_round_trip() {
        let mut hv = BinaryHypervector::zeros(130);
        hv.set(0, true);
        hv.set(129, true);
        hv.set(64, true);
        assert!(hv.get(0) && hv.get(64) && hv.get(129));
        assert_eq!(hv.count_ones(), 3);
        hv.flip(64);
        assert!(!hv.get(64));
        hv.set(0, false);
        assert_eq!(hv.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let hv = BinaryHypervector::zeros(10);
        let _ = hv.get(10);
    }

    #[test]
    fn bind_is_self_inverse() {
        let mut r = rng();
        let a = BinaryHypervector::random(10_000, &mut r);
        let b = BinaryHypervector::random(10_000, &mut r);
        assert_eq!(a.bind(&b).bind(&a), b);
        assert_eq!(a.bind(&a), BinaryHypervector::zeros(10_000));
    }

    #[test]
    fn bind_operator_matches_method() {
        let mut r = rng();
        let a = BinaryHypervector::random(512, &mut r);
        let b = BinaryHypervector::random(512, &mut r);
        assert_eq!(&a ^ &b, a.bind(&b));
        let mut c = a.clone();
        c ^= &b;
        assert_eq!(c, a.bind(&b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bind_dimension_mismatch_panics() {
        let a = BinaryHypervector::zeros(64);
        let b = BinaryHypervector::zeros(65);
        let _ = a.bind(&b);
    }

    #[test]
    fn complement_is_maximally_distant() {
        let hv = BinaryHypervector::random(777, &mut rng());
        let neg = !&hv;
        assert_eq!(hv.hamming(&neg), 777);
        assert!(neg.tail_is_clean());
    }

    #[test]
    fn hamming_metric_basics() {
        let mut r = rng();
        let a = BinaryHypervector::random(10_000, &mut r);
        let b = BinaryHypervector::random(10_000, &mut r);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.hamming(&b), b.hamming(&a));
        assert!((a.normalized_hamming(&b) - 0.5).abs() < 0.05);
        assert!((a.similarity(&b) - 0.5).abs() < 0.05);
    }

    #[test]
    fn permute_matches_naive_reference() {
        let mut r = rng();
        for dim in [1usize, 2, 63, 64, 65, 127, 128, 1000] {
            let hv = BinaryHypervector::random(dim, &mut r);
            for shift in [
                0isize,
                1,
                -1,
                7,
                63,
                64,
                65,
                -100,
                dim as isize,
                3 * dim as isize + 5,
            ] {
                let fast = hv.permute(shift);
                let s = shift.rem_euclid(dim as isize) as usize;
                let naive = BinaryHypervector::from_fn(dim, |i| hv.get((i + dim - s) % dim));
                assert_eq!(fast, naive, "dim={dim} shift={shift}");
                assert!(fast.tail_is_clean());
            }
        }
    }

    #[test]
    fn permute_is_invertible_and_distance_preserving() {
        let mut r = rng();
        let hv = BinaryHypervector::random(10_000, &mut r);
        let other = BinaryHypervector::random(10_000, &mut r);
        let p = hv.permute(31);
        assert_eq!(p.permute_inverse(31), hv);
        assert_eq!(
            hv.hamming(&other),
            hv.permute(31).hamming(&other.permute(31))
        );
        // A shifted hypervector is quasi-orthogonal to the original.
        assert!((hv.normalized_hamming(&p) - 0.5).abs() < 0.05);
    }

    #[test]
    fn corrupt_flips_expected_fraction() {
        let mut r = rng();
        let hv = BinaryHypervector::random(10_000, &mut r);
        let noisy = hv.corrupt(0.1, &mut r);
        let delta = hv.normalized_hamming(&noisy);
        assert!((delta - 0.1).abs() < 0.02, "delta = {delta}");
        assert_eq!(hv.corrupt(0.0, &mut r), hv);
    }

    #[test]
    fn from_bits_and_bits_round_trip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let hv = BinaryHypervector::from_bits(&pattern);
        let back: Vec<bool> = hv.bits().collect();
        assert_eq!(back, pattern);
        assert_eq!(hv.bits().len(), 200);
    }

    #[test]
    fn flip_positions_matches_individual_flips() {
        let mut a = BinaryHypervector::random(300, &mut rng());
        let b = a.clone();
        a.flip_positions(&[0, 5, 299]);
        assert_eq!(a.hamming(&b), 3);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let hv = BinaryHypervector::random(100, &mut rng());
        assert!(format!("{hv:?}").contains("dim: 100"));
        assert!(format!("{hv}").contains("d=100"));
    }

    #[test]
    fn send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BinaryHypervector>();
    }

    #[test]
    fn from_words_masks_tail_and_round_trips() {
        let hv = BinaryHypervector::from_words(65, vec![!0u64, !0u64]);
        assert_eq!(hv.count_ones(), 65);
        assert!(hv.tail_is_clean());
        let back = BinaryHypervector::from_words(65, hv.as_words().to_vec());
        assert_eq!(back, hv);
        assert_eq!(hv.view().to_hypervector(), hv);
    }

    #[test]
    #[should_panic(expected = "word count does not match")]
    fn from_words_rejects_wrong_length() {
        let _ = BinaryHypervector::from_words(65, vec![0u64]);
    }

    proptest! {
        #[test]
        fn prop_bind_self_inverse(seed in 0u64..1000, dim in 1usize..400) {
            let mut r = StdRng::seed_from_u64(seed);
            let a = BinaryHypervector::random(dim, &mut r);
            let b = BinaryHypervector::random(dim, &mut r);
            prop_assert_eq!(a.bind(&b).bind(&a), b);
        }

        #[test]
        fn prop_bind_preserves_distance(seed in 0u64..1000, dim in 1usize..400) {
            // δ(a ⊗ c, b ⊗ c) = δ(a, b): binding is an isometry.
            let mut r = StdRng::seed_from_u64(seed);
            let a = BinaryHypervector::random(dim, &mut r);
            let b = BinaryHypervector::random(dim, &mut r);
            let c = BinaryHypervector::random(dim, &mut r);
            prop_assert_eq!(a.bind(&c).hamming(&b.bind(&c)), a.hamming(&b));
        }

        #[test]
        fn prop_permute_round_trip(seed in 0u64..1000, dim in 1usize..400, shift in -1000isize..1000) {
            let mut r = StdRng::seed_from_u64(seed);
            let hv = BinaryHypervector::random(dim, &mut r);
            prop_assert_eq!(hv.permute(shift).permute_inverse(shift), hv.clone());
            prop_assert_eq!(hv.permute(shift).count_ones(), hv.count_ones());
        }

        #[test]
        fn prop_triangle_inequality(seed in 0u64..1000, dim in 1usize..300) {
            let mut r = StdRng::seed_from_u64(seed);
            let a = BinaryHypervector::random(dim, &mut r);
            let b = BinaryHypervector::random(dim, &mut r);
            let c = BinaryHypervector::random(dim, &mut r);
            prop_assert!(a.hamming(&c) <= a.hamming(&b) + b.hamming(&c));
        }
    }
}
