//! The group-commit flush scheduler: a dedicated flusher thread owns the
//! WAL tail, concurrent durable writers append records and park an ack
//! ticket, and the flusher coalesces every ticket that arrives within a
//! bounded window into **one** `fdatasync` — then releases the whole
//! group. The per-write durability *guarantee* is unchanged (an ack still
//! means the record is on stable storage per the configured
//! [`SyncPolicy`]); only the flush *count* is amortized.
//!
//! # Flow
//!
//! ```text
//! writer:   append(record) ──► ticket (seq)
//!           commit(seq, ack) ──► parked
//! flusher:  wake ── linger ≤ window − last fsync cost (or max_group) ──►
//!           one fdatasync covering every parked seq ──►
//!           release every ack in the group
//! ```
//!
//! The `fdatasync` itself runs on a duplicated file handle **off** the
//! WAL lock, so appends for the *next* group proceed while the platters
//! spin — that pipelining, not the window alone, is what lets sixteen
//! concurrent writers share one flush.
//!
//! The collection linger is **adaptive**: the flusher deducts the
//! measured duration of the previous `fdatasync` from the window. On
//! storage where the flush itself is slower than the window the flusher
//! therefore flushes eagerly — the in-flight `fdatasync` is already a
//! better collection window than any timer, and a lone writer sees no
//! added latency. On storage that flushes faster than the window, the
//! flusher lingers the remainder so sparse committers still coalesce.
//! Either way `window` bounds the extra latency coalescing may add on
//! top of the flush itself.
//!
//! # Degeneration
//!
//! A zero window disables the flusher entirely: `commit` flushes inline
//! on the caller's thread and releases its acks before returning —
//! byte-for-byte and `fsync`-for-`fsync` the pre-group-commit
//! one-flush-per-micro-batch schedule (under [`SyncPolicy::Always`],
//! appends keep their inline per-record `fsync` too). Under
//! [`SyncPolicy::Never`] acks always release immediately; there is no
//! flush to wait for.
//!
//! # Failure
//!
//! The scheduler is fail-stop, like the dispatcher it serves: if a flush
//! fails, the parked acks are **dropped** (their callers' reply channels
//! close, so no caller ever mistakes a failed flush for durability) and
//! every later `append`/`commit` returns the stored error.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdc_core::HdcError;

use crate::record::WalRecord;
use crate::wal::Wal;
use crate::SyncPolicy;

/// Tuning of the [`GroupCommitWal`] flusher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Upper bound on the extra latency coalescing may add: after
    /// waking, the flusher lingers at most `window` **minus the
    /// measured duration of the previous `fdatasync`** before issuing
    /// the group's flush (an in-flight flush already collects tickets,
    /// so slow storage gets eager flushes and natural batching; fast
    /// storage lingers the remainder). Zero disables the flusher
    /// entirely (inline per-commit flushes — the classic schedule).
    pub window: Duration,
    /// Ticket cap per group: collection stops early at this many parked
    /// commits, bounding ack latency under sustained load.
    pub max_group: usize,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_micros(200),
            max_group: 256,
        }
    }
}

/// A parked acknowledgement: invoked exactly once, after the records it
/// covers are durable. Dropped without invocation if the flush fails —
/// the caller's reply channel closing is the fail-stop signal.
pub type GroupAck = Box<dyn FnOnce() + Send + 'static>;

struct FlushState {
    /// Parked tickets: the last sequence each ack covers, and the ack.
    pending: Vec<(u64, GroupAck)>,
    /// Every sequence `< synced` is on stable storage.
    synced: u64,
    /// The stored fail-stop error, if a flush ever failed.
    failed: Option<String>,
    shutdown: bool,
}

struct Shared {
    wal: Mutex<Wal>,
    state: Mutex<FlushState>,
    /// Wakes the flusher on new tickets and shutdown.
    tickets: Condvar,
    window: Duration,
    max_group: usize,
}

/// The WAL behind a group-commit flush scheduler — the shape the serving
/// dispatcher owns on a durable runtime. `append` takes the WAL lock
/// briefly (a buffered write); `commit` parks the acks on the flusher,
/// which retires whole groups with one `fdatasync` each.
pub struct GroupCommitWal {
    shared: Arc<Shared>,
    flusher: Option<JoinHandle<()>>,
    /// `true` when a flusher thread is running (non-zero window and a
    /// policy that flushes at all).
    grouped: bool,
}

impl std::fmt::Debug for GroupCommitWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitWal")
            .field("grouped", &self.grouped)
            .field("window", &self.shared.window)
            .field("max_group", &self.shared.max_group)
            .finish_non_exhaustive()
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>, what: &str) -> Result<MutexGuard<'a, T>, HdcError> {
    mutex
        .lock()
        .map_err(|_| HdcError::Storage(format!("{what} lock poisoned by a panicked thread")))
}

impl GroupCommitWal {
    /// Wraps an opened [`Wal`], spawning the flusher thread when the
    /// window is non-zero (and the policy flushes at all).
    #[must_use]
    pub fn new(wal: Wal, config: GroupCommitConfig) -> Self {
        let policy = wal.sync_policy();
        let synced = wal.next_seq();
        let grouped = !config.window.is_zero() && !matches!(policy, SyncPolicy::Never);
        let shared = Arc::new(Shared {
            wal: Mutex::new(wal),
            state: Mutex::new(FlushState {
                pending: Vec::new(),
                synced,
                failed: None,
                shutdown: false,
            }),
            tickets: Condvar::new(),
            window: config.window,
            max_group: config.max_group.max(1),
        });
        let flusher = grouped.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hdc-wal-flush".into())
                .spawn(move || flusher_loop(&shared))
                .expect("spawning the WAL flusher thread")
        });
        Self {
            shared,
            flusher,
            grouped,
        }
    }

    /// Appends one record, returning its sequence number — the ticket a
    /// later [`commit`](Self::commit) parks on. With the flusher running,
    /// the append is deferred (no inline `fsync`, whatever the policy);
    /// without it, [`SyncPolicy::Always`] keeps its per-record `fsync`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure or after a failed
    /// flush (fail-stop).
    pub fn append(&self, record: &WalRecord) -> Result<u64, HdcError> {
        self.check_failed()?;
        let mut wal = lock(&self.shared.wal, "WAL")?;
        if self.grouped {
            wal.append_deferred(record)
        } else {
            wal.append(record)
        }
    }

    /// Parks `acks` until every record up to and including `upto` is
    /// durable, then fires them. With the flusher running this returns
    /// immediately (acks release with the group); with a zero window it
    /// flushes inline and fires the acks before returning — the classic
    /// one-flush-per-batch schedule. Under [`SyncPolicy::Never`] acks
    /// fire immediately.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure or after a failed
    /// flush (fail-stop); the acks are dropped unfired in that case.
    pub fn commit(&self, upto: u64, acks: Vec<GroupAck>) -> Result<(), HdcError> {
        if !self.grouped {
            // Inline schedule: one flush per commit boundary (a no-op
            // under `Never` and for `Always`'s already-synced appends).
            lock(&self.shared.wal, "WAL")?.sync()?;
            for ack in acks {
                ack();
            }
            return Ok(());
        }
        let mut state = lock(&self.shared.state, "flush scheduler")?;
        if let Some(reason) = &state.failed {
            return Err(HdcError::Storage(reason.clone()));
        }
        if upto < state.synced {
            // Already covered by an earlier group's flush.
            drop(state);
            for ack in acks {
                ack();
            }
            return Ok(());
        }
        state
            .pending
            .extend(acks.into_iter().map(|ack| (upto, ack)));
        drop(state);
        // The flusher is the condvar's only waiter.
        self.shared.tickets.notify_one();
        Ok(())
    }

    /// The sequence number the next appended record will carry.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] if the WAL lock is poisoned.
    pub fn next_seq(&self) -> Result<u64, HdcError> {
        Ok(lock(&self.shared.wal, "WAL")?.next_seq())
    }

    /// Data `fsync`s issued since open (see [`Wal::sync_count`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] if the WAL lock is poisoned.
    pub fn sync_count(&self) -> Result<u64, HdcError> {
        Ok(lock(&self.shared.wal, "WAL")?.sync_count())
    }

    /// Frame bytes appended since open (see [`Wal::bytes_appended`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] if the WAL lock is poisoned.
    pub fn bytes_appended(&self) -> Result<u64, HdcError> {
        Ok(lock(&self.shared.wal, "WAL")?.bytes_appended())
    }

    /// Flushes everything appended so far, inline — the graceful-shutdown
    /// call after the work queue drains.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure.
    pub fn sync_now(&self) -> Result<(), HdcError> {
        lock(&self.shared.wal, "WAL")?.sync()
    }

    fn check_failed(&self) -> Result<(), HdcError> {
        let state = lock(&self.shared.state, "flush scheduler")?;
        match &state.failed {
            Some(reason) => Err(HdcError::Storage(reason.clone())),
            None => Ok(()),
        }
    }
}

impl Drop for GroupCommitWal {
    /// Drains parked tickets (their groups still flush and ack) and joins
    /// the flusher.
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.shutdown = true;
        }
        self.shared.tickets.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

fn flusher_loop(shared: &Shared) {
    // Seeded to the window so the very first flush is eager — no linger
    // until a measured fsync proves the storage is faster than the
    // window.
    let mut last_fsync = shared.window;
    loop {
        let Ok(mut state) = shared.state.lock() else {
            return;
        };
        while state.pending.is_empty() && !state.shutdown {
            state = match shared.tickets.wait(state) {
                Ok(guard) => guard,
                Err(_) => return,
            };
        }
        if state.pending.is_empty() && state.shutdown {
            return;
        }
        // Adaptive collection linger: the previous flush's duration is
        // deducted from the window, because an in-flight fdatasync is
        // itself a collection window — tickets park while it runs. Slow
        // storage therefore flushes eagerly (lone writers see no added
        // latency); fast storage lingers the remainder to coalesce
        // sparse committers.
        let deadline = Instant::now() + shared.window.saturating_sub(last_fsync);
        while state.pending.len() < shared.max_group && !state.shutdown {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let Ok((guard, timeout)) = shared.tickets.wait_timeout(state, deadline - now) else {
                return;
            };
            state = guard;
            if timeout.timed_out() {
                break;
            }
        }
        let group = std::mem::take(&mut state.pending);
        drop(state);
        // One fdatasync for the whole group, issued on a duplicated
        // handle off the WAL lock so appends keep flowing meanwhile.
        let begun = match shared.wal.lock() {
            Ok(mut wal) => wal.begin_group_sync(),
            Err(_) => Err(HdcError::Storage("WAL lock poisoned".into())),
        };
        let synced = begun.and_then(|(file, covered)| {
            let flush_started = Instant::now();
            file.sync_data()
                .map_err(|e| HdcError::Storage(format!("group fdatasync failed: {e}")))?;
            last_fsync = flush_started.elapsed();
            Ok(covered)
        });
        match synced {
            Ok(covered) => {
                if let Ok(mut wal) = shared.wal.lock() {
                    wal.finish_group_sync(covered);
                }
                if let Ok(mut state) = shared.state.lock() {
                    state.synced = state.synced.max(covered);
                }
                for (_, ack) in group {
                    ack();
                }
            }
            Err(error) => {
                // Fail-stop: drop the group's acks unfired and poison
                // every later append/commit with the stored error.
                if let Ok(mut state) = shared.state.lock() {
                    state.failed = Some(format!(
                        "write-ahead log group flush failed; refusing to acknowledge \
                         non-durable writes: {error}"
                    ));
                    state.shutdown = true;
                }
                drop(group);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WalCodec, WalConfig};
    use hdc_core::BinaryHypervector;
    use rand::{rngs::StdRng, SeedableRng};
    use std::path::PathBuf;
    use std::sync::mpsc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdc-group-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &PathBuf, sync: SyncPolicy) -> Wal {
        let config = WalConfig {
            segment_bytes: u64::MAX,
            sync,
            codec: WalCodec::Adaptive,
        };
        Wal::open(dir, 9, config, 0).unwrap().0
    }

    fn records(n: usize) -> Vec<WalRecord> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| WalRecord::Fit {
                hv: BinaryHypervector::random(256, &mut rng),
                label: i as u64,
            })
            .collect()
    }

    fn ack_pair() -> (GroupAck, mpsc::Receiver<()>) {
        let (tx, rx) = mpsc::channel();
        (
            Box::new(move || {
                let _ = tx.send(());
            }),
            rx,
        )
    }

    /// The satellite contract: a zero window degenerates exactly to the
    /// classic schedule — one inline flush per commit boundary, acks
    /// released synchronously before `commit` returns.
    #[test]
    fn zero_window_is_exactly_the_per_batch_schedule() {
        let dir = tmp_dir("degenerate");
        let wal = open(&dir, SyncPolicy::EveryBatch);
        let group = GroupCommitWal::new(
            wal,
            GroupCommitConfig {
                window: Duration::ZERO,
                max_group: 256,
            },
        );
        let batches: Vec<Vec<WalRecord>> = records(7).chunks(2).map(<[_]>::to_vec).collect();
        let n_batches = batches.len() as u64;
        for batch in batches {
            let mut upto = 0;
            for record in &batch {
                upto = group.append(record).unwrap();
            }
            let (ack, rx) = ack_pair();
            group.commit(upto, vec![ack]).unwrap();
            // Inline release: the ack fired before commit returned.
            rx.try_recv().expect("zero-window commit acks inline");
        }
        // Exactly one fsync per micro-batch, like the pre-group-commit
        // dispatcher issued.
        assert_eq!(group.sync_count().unwrap(), n_batches);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_window_always_keeps_per_record_fsyncs() {
        let dir = tmp_dir("degenerate-always");
        let wal = open(&dir, SyncPolicy::Always);
        let group = GroupCommitWal::new(
            wal,
            GroupCommitConfig {
                window: Duration::ZERO,
                max_group: 256,
            },
        );
        let all = records(5);
        for record in &all {
            let upto = group.append(record).unwrap();
            let (ack, rx) = ack_pair();
            group.commit(upto, vec![ack]).unwrap();
            rx.try_recv().unwrap();
        }
        // Always + no flusher: the classic one fsync per appended record
        // (the commit's own sync is a no-op on a clean segment).
        assert_eq!(group.sync_count().unwrap(), all.len() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn grouped_commits_coalesce_into_fewer_fsyncs() {
        let dir = tmp_dir("coalesce");
        let wal = open(&dir, SyncPolicy::Always);
        let group = GroupCommitWal::new(
            wal,
            GroupCommitConfig {
                window: Duration::from_millis(50),
                max_group: 256,
            },
        );
        let all = records(16);
        let mut receivers = Vec::new();
        for record in &all {
            let upto = group.append(record).unwrap();
            let (ack, rx) = ack_pair();
            group.commit(upto, vec![ack]).unwrap();
            receivers.push(rx);
        }
        for rx in receivers {
            rx.recv_timeout(Duration::from_secs(5))
                .expect("every parked ack fires");
        }
        let syncs = group.sync_count().unwrap();
        assert!(
            syncs < all.len() as u64 / 2,
            "16 commits inside one window must share flushes, saw {syncs}"
        );
        drop(group);
        // Everything acked is on disk and replays bit-identically.
        let (_, replayed) = Wal::open(
            &dir,
            9,
            WalConfig {
                segment_bytes: u64::MAX,
                sync: SyncPolicy::Always,
                codec: WalCodec::Adaptive,
            },
            0,
        )
        .unwrap();
        assert_eq!(
            replayed.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            all
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_drains_parked_tickets() {
        let dir = tmp_dir("drain");
        let wal = open(&dir, SyncPolicy::EveryBatch);
        let group = GroupCommitWal::new(
            wal,
            GroupCommitConfig {
                window: Duration::from_millis(200),
                max_group: 256,
            },
        );
        let upto = group.append(&records(1)[0]).unwrap();
        let (ack, rx) = ack_pair();
        group.commit(upto, vec![ack]).unwrap();
        drop(group); // shutdown before the window elapses
        rx.recv_timeout(Duration::from_secs(5))
            .expect("drop flushes and fires parked acks");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn never_policy_acks_immediately() {
        let dir = tmp_dir("never");
        let wal = open(&dir, SyncPolicy::Never);
        let group = GroupCommitWal::new(wal, GroupCommitConfig::default());
        let upto = group.append(&records(1)[0]).unwrap();
        let (ack, rx) = ack_pair();
        group.commit(upto, vec![ack]).unwrap();
        rx.try_recv().expect("Never policy has nothing to wait for");
        assert_eq!(group.sync_count().unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
