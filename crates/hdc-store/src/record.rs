//! The write-ahead log's record vocabulary and its binary codec, plus the
//! CRC-32 every durable frame in this crate is protected by.

use std::io;

use hdc_core::BinaryHypervector;

use crate::codec::{self, Cursor};

/// CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib one), table-driven.
/// Every record frame, snapshot blob and index entry in this crate carries
/// one so a torn or bit-flipped write is detected rather than replayed.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_FIT: u8 = 3;
const TAG_FIT_VALUE: u8 = 4;

/// One logged state mutation. Replaying a log means applying these in
/// order: `Insert`/`Remove` against the item memory, `Fit`/`FitValue`
/// against the online trainer's accumulators. Fit folding is commutative
/// integer addition, so recovery is bit-identical however the trainer
/// interleaved observations with predictions.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An item-memory upsert (idempotent: replaying an insert twice leaves
    /// the same entry).
    Insert {
        /// The item key.
        key: String,
        /// The stored hypervector.
        hv: BinaryHypervector,
    },
    /// An item-memory removal (idempotent).
    Remove {
        /// The removed key.
        key: String,
    },
    /// One classification training observation, already encoded.
    Fit {
        /// The encoded observation.
        hv: BinaryHypervector,
        /// Its class label.
        label: u64,
    },
    /// One regression training observation, already encoded.
    FitValue {
        /// The encoded observation.
        hv: BinaryHypervector,
        /// Its real-valued label.
        value: f64,
    },
}

impl WalRecord {
    /// The record's frame payload: a one-byte tag followed by the fields,
    /// in the crate's codec conventions. The frame (length + CRC) is added
    /// by the [`Wal`](crate::Wal).
    ///
    /// # Errors
    ///
    /// Returns an error for a hypervector wider than `u32` dimensions.
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut buf = Vec::with_capacity(32);
        match self {
            WalRecord::Insert { key, hv } => {
                buf.push(TAG_INSERT);
                codec::put_long_string(&mut buf, key);
                codec::put_hv(&mut buf, hv)?;
            }
            WalRecord::Remove { key } => {
                buf.push(TAG_REMOVE);
                codec::put_long_string(&mut buf, key);
            }
            WalRecord::Fit { hv, label } => {
                buf.push(TAG_FIT);
                codec::put_u64(&mut buf, *label);
                codec::put_hv(&mut buf, hv)?;
            }
            WalRecord::FitValue { hv, value } => {
                buf.push(TAG_FIT_VALUE);
                codec::put_f64(&mut buf, *value);
                codec::put_hv(&mut buf, hv)?;
            }
        }
        Ok(buf)
    }

    /// Decodes one frame payload. Rejects unknown tags, truncated fields
    /// and trailing bytes — a CRC-valid but undecodable record means a
    /// format mismatch, which replay treats as loud corruption everywhere
    /// (never as a tolerable torn tail).
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] for any malformed payload.
    pub fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut cursor = Cursor::new(payload);
        let record = match cursor.u8()? {
            TAG_INSERT => {
                let key = cursor.long_string()?;
                let hv = cursor.hv()?;
                WalRecord::Insert { key, hv }
            }
            TAG_REMOVE => WalRecord::Remove {
                key: cursor.long_string()?,
            },
            TAG_FIT => {
                let label = cursor.u64()?;
                let hv = cursor.hv()?;
                WalRecord::Fit { hv, label }
            }
            TAG_FIT_VALUE => {
                let value = cursor.f64()?;
                let hv = cursor.hv()?;
                WalRecord::FitValue { hv, value }
            }
            tag => return Err(codec::invalid(format!("unknown WAL record tag {tag}"))),
        };
        cursor.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE check value: CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let hv = BinaryHypervector::random(300, &mut rng);
        let records = [
            WalRecord::Insert {
                key: "user-1".into(),
                hv: hv.clone(),
            },
            WalRecord::Remove { key: String::new() },
            WalRecord::Fit {
                hv: hv.clone(),
                label: 3,
            },
            WalRecord::FitValue { hv, value: -1.5 },
        ];
        for record in records {
            let payload = record.encode().unwrap();
            assert_eq!(WalRecord::decode(&payload).unwrap(), record);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        let mut payload = WalRecord::Remove { key: "k".into() }.encode().unwrap();
        payload.push(0);
        assert!(WalRecord::decode(&payload).is_err(), "trailing byte");
    }
}
