//! Durability for the serving runtime: a segmented write-ahead log, atomic
//! snapshot installation and a paged item-memory backend.
//!
//! Three layers, composable from the bottom up:
//!
//! * [`Wal`] — an append-only segmented log of [`WalRecord`]s
//!   (`insert`/`remove`/`fit`/`fit_value`), one CRC-protected frame per
//!   record, rotated into fixed-size segment files. Replay tolerates a torn
//!   tail in the **last** segment (the write the crash interrupted) by
//!   truncating to the longest valid prefix; corruption anywhere earlier is
//!   loud — those records were acknowledged and must not be silently
//!   dropped.
//! * [`Store`] — the recovery orchestrator: a `MANIFEST` (written
//!   atomically via tmp+rename) names the newest installed snapshot and the
//!   log sequence number it covers, [`Store::open`] hands back the snapshot
//!   bytes plus every record logged at or after that point, and the
//!   [`SnapshotInstaller`] half installs new snapshots off the serving
//!   threads and garbage-collects the segments they retire.
//! * [`ItemStore`] / [`PagedStore`] — the tiered item memory: a trait over
//!   keyed hypervector storage with an in-RAM [`ResidentStore`] default and
//!   a file-backed implementation that pages fixed-size hypervector slots
//!   by key with an LRU-cached hot set, so resident memory is bounded by
//!   the cache budget instead of key cardinality.
//!
//! The crate deliberately knows nothing about models or pipelines: snapshot
//! payloads are opaque bytes (framed and CRC-protected here, interpreted by
//! the serving crate), and the only identity carried end to end is the
//! caller's 64-bit spec digest, checked on every segment header so a log
//! can never replay into a model with a different spec.
//!
//! The binary conventions mirror the serving crate's `codec`: big-endian
//! integers, length-prefixed UTF-8 keys, `u32`-dimension hypervectors with
//! clean-tail validation, and bounds-checked decoding whose preallocations
//! are clamped by the bytes actually present.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod compress;
mod group_commit;
mod paged;
mod record;
mod store;
mod wal;

pub use group_commit::{GroupAck, GroupCommitConfig, GroupCommitWal};
pub use paged::{ItemStore, PagedStore, ResidentStore};
pub use record::{crc32, WalRecord};
pub use store::{Recovery, SnapshotInstaller, Store, MANIFEST_MAGIC, SNAPSHOT_BLOB_MAGIC};
pub use wal::{Wal, DEFAULT_SEGMENT_BYTES, SEGMENT_MAGIC, SEGMENT_VERSION};

use std::path::PathBuf;
use std::time::Duration;

/// When appended log records reach the platters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every appended record. Strongest guarantee, one disk
    /// round-trip per record.
    Always,
    /// `fsync` once per micro-batch (the caller invokes [`Wal::sync`] at
    /// its batch boundary, amortizing one flush over every record and
    /// acknowledgement in the batch). The default.
    #[default]
    EveryBatch,
    /// Never `fsync`; the OS page cache decides. Appends still reach the
    /// kernel immediately (a SIGKILL loses nothing, a power cut may), so
    /// this is the honest baseline for measuring WAL overhead.
    Never,
}

/// How record frame payloads are encoded on disk, negotiated per segment
/// in the segment header (so mixed-codec logs replay unambiguously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalCodec {
    /// Plain [`WalRecord`] payloads, exactly the pre-compression layout.
    Raw,
    /// Per-record adaptive compression: every payload carries a one-byte
    /// record codec choosing raw, sparse set/clear-bit, delta-against-a
    /// -recent-record, or word-wise RLE encoding of the hypervector —
    /// whichever measured smallest for that record. Level/circular
    /// pipelines produce low-density flip structure, so deltas between
    /// nearby records routinely collapse a `dim/8`-byte hypervector to a
    /// handful of varint gaps. The default.
    #[default]
    Adaptive,
}

/// Tuning of the write-ahead log itself — the slice of
/// [`DurabilityConfig`] that [`Store::open`] threads down to
/// [`Wal::open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// When appended records are `fsync`ed.
    pub sync: SyncPolicy,
    /// How record payloads are encoded in newly created segments.
    pub codec: WalCodec,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            sync: SyncPolicy::default(),
            codec: WalCodec::default(),
        }
    }
}

/// Configuration of the durability subsystem a serving runtime opens at
/// spawn. Everything lives under one directory: WAL segments, installed
/// snapshots, the `MANIFEST`, and (when [`page_cache`](Self::page_cache)
/// is set) the paged item-memory files under `items/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory of the store (created if missing).
    pub dir: PathBuf,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Log records between automatic background snapshots; `0` disables
    /// periodic snapshotting (recovery then replays the whole log).
    pub snapshot_every: u64,
    /// When appended records are `fsync`ed.
    pub sync: SyncPolicy,
    /// `Some(budget)` switches the runtime's item memory to the paged
    /// file-backed [`PagedStore`] with at most `budget` hypervectors
    /// resident in its LRU cache; `None` keeps items in RAM.
    pub page_cache: Option<usize>,
    /// Group-commit collection window: the bound on the extra latency
    /// coalescing may add. Once the flusher wakes for a commit ticket it
    /// lingers at most this long **minus the previous `fdatasync`'s
    /// measured duration** (or until
    /// [`group_commit_max`](Self::group_commit_max) tickets are parked),
    /// then retires the whole group with **one** `fdatasync` — on slow
    /// storage the in-flight flush is itself the collection window, so
    /// the flusher flushes eagerly. `Duration::ZERO` disables the
    /// flusher and degenerates exactly to the inline
    /// one-flush-per-micro-batch schedule.
    pub group_commit_window: Duration,
    /// Ticket cap per flush group: the flusher stops collecting early
    /// once this many commits are parked, bounding ack latency under
    /// sustained load.
    pub group_commit_max: usize,
    /// How WAL record payloads are encoded in newly created segments.
    pub codec: WalCodec,
}

impl DurabilityConfig {
    /// A store rooted at `dir` with default tuning: 4 MiB segments,
    /// a background snapshot every 4096 records, one `fsync` per
    /// flush group, a 200 µs group-commit window, adaptive record
    /// compression, in-RAM item memory.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            snapshot_every: 4096,
            sync: SyncPolicy::EveryBatch,
            page_cache: None,
            group_commit_window: Duration::from_micros(200),
            group_commit_max: 256,
            codec: WalCodec::Adaptive,
        }
    }

    /// The WAL slice of this configuration, as [`Store::open`] wants it.
    #[must_use]
    pub fn wal_config(&self) -> WalConfig {
        WalConfig {
            segment_bytes: self.segment_bytes,
            sync: self.sync,
            codec: self.codec,
        }
    }

    /// The group-commit slice of this configuration, as
    /// [`GroupCommitWal::new`] wants it.
    #[must_use]
    pub fn group_commit_config(&self) -> GroupCommitConfig {
        GroupCommitConfig {
            window: self.group_commit_window,
            max_group: self.group_commit_max,
        }
    }
}
