//! Durability for the serving runtime: a segmented write-ahead log, atomic
//! snapshot installation and a paged item-memory backend.
//!
//! Three layers, composable from the bottom up:
//!
//! * [`Wal`] — an append-only segmented log of [`WalRecord`]s
//!   (`insert`/`remove`/`fit`/`fit_value`), one CRC-protected frame per
//!   record, rotated into fixed-size segment files. Replay tolerates a torn
//!   tail in the **last** segment (the write the crash interrupted) by
//!   truncating to the longest valid prefix; corruption anywhere earlier is
//!   loud — those records were acknowledged and must not be silently
//!   dropped.
//! * [`Store`] — the recovery orchestrator: a `MANIFEST` (written
//!   atomically via tmp+rename) names the newest installed snapshot and the
//!   log sequence number it covers, [`Store::open`] hands back the snapshot
//!   bytes plus every record logged at or after that point, and the
//!   [`SnapshotInstaller`] half installs new snapshots off the serving
//!   threads and garbage-collects the segments they retire.
//! * [`ItemStore`] / [`PagedStore`] — the tiered item memory: a trait over
//!   keyed hypervector storage with an in-RAM [`ResidentStore`] default and
//!   a file-backed implementation that pages fixed-size hypervector slots
//!   by key with an LRU-cached hot set, so resident memory is bounded by
//!   the cache budget instead of key cardinality.
//!
//! The crate deliberately knows nothing about models or pipelines: snapshot
//! payloads are opaque bytes (framed and CRC-protected here, interpreted by
//! the serving crate), and the only identity carried end to end is the
//! caller's 64-bit spec digest, checked on every segment header so a log
//! can never replay into a model with a different spec.
//!
//! The binary conventions mirror the serving crate's `codec`: big-endian
//! integers, length-prefixed UTF-8 keys, `u32`-dimension hypervectors with
//! clean-tail validation, and bounds-checked decoding whose preallocations
//! are clamped by the bytes actually present.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod paged;
mod record;
mod store;
mod wal;

pub use paged::{ItemStore, PagedStore, ResidentStore};
pub use record::{crc32, WalRecord};
pub use store::{Recovery, SnapshotInstaller, Store, MANIFEST_MAGIC, SNAPSHOT_BLOB_MAGIC};
pub use wal::{Wal, DEFAULT_SEGMENT_BYTES, SEGMENT_MAGIC, SEGMENT_VERSION};

use std::path::PathBuf;

/// When appended log records reach the platters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every appended record. Strongest guarantee, one disk
    /// round-trip per record.
    Always,
    /// `fsync` once per micro-batch (the caller invokes [`Wal::sync`] at
    /// its batch boundary, amortizing one flush over every record and
    /// acknowledgement in the batch). The default.
    #[default]
    EveryBatch,
    /// Never `fsync`; the OS page cache decides. Appends still reach the
    /// kernel immediately (a SIGKILL loses nothing, a power cut may), so
    /// this is the honest baseline for measuring WAL overhead.
    Never,
}

/// Configuration of the durability subsystem a serving runtime opens at
/// spawn. Everything lives under one directory: WAL segments, installed
/// snapshots, the `MANIFEST`, and (when [`page_cache`](Self::page_cache)
/// is set) the paged item-memory files under `items/`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Root directory of the store (created if missing).
    pub dir: PathBuf,
    /// Segment rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Log records between automatic background snapshots; `0` disables
    /// periodic snapshotting (recovery then replays the whole log).
    pub snapshot_every: u64,
    /// When appended records are `fsync`ed.
    pub sync: SyncPolicy,
    /// `Some(budget)` switches the runtime's item memory to the paged
    /// file-backed [`PagedStore`] with at most `budget` hypervectors
    /// resident in its LRU cache; `None` keeps items in RAM.
    pub page_cache: Option<usize>,
}

impl DurabilityConfig {
    /// A store rooted at `dir` with default tuning: 4 MiB segments,
    /// a background snapshot every 4096 records, one `fsync` per
    /// micro-batch, in-RAM item memory.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            snapshot_every: 4096,
            sync: SyncPolicy::EveryBatch,
            page_cache: None,
        }
    }
}
