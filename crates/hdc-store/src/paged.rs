//! The tiered item memory: the [`ItemStore`] trait over keyed hypervector
//! storage, the in-RAM [`ResidentStore`] default, and the file-backed
//! [`PagedStore`] that bounds resident memory by an LRU cache budget
//! instead of key cardinality.
//!
//! # `PagedStore` on-disk layout (under one directory)
//!
//! * `pages.dat` — a 32-byte header (`"HDCP"`, `u16` version, `u64`
//!   dimension, padding) followed by fixed-size slots of
//!   `dim.div_ceil(64) * 8` bytes, one stored hypervector each. Slots are
//!   recycled through a free list; slot writes are in-place (a torn slot
//!   write is healed by WAL replay of the insert that caused it, which is
//!   an idempotent upsert).
//! * `keys.idx` — an append-only key index of CRC-framed bind/tombstone
//!   records (`key → slot`). Scanned at open to rebuild the in-memory
//!   index; a torn tail is truncated (the binding it lost is re-appended
//!   when WAL replay re-applies the insert). Compacted down to the live
//!   bindings (tmp+rename) when tombstones dominate.
//!
//! Reads go through an LRU hot set of at most `budget` decoded
//! hypervectors — [`resident`](ItemStore::resident) reports its size so
//! tests can assert the bound — while the key index (small: key + slot)
//! stays fully resident for O(1) lookups.

use std::collections::{HashMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use hdc_core::{BinaryHypervector, HdcError};

use crate::codec::{be_u32, be_u64};
use crate::record::crc32;
use crate::wal::storage;

/// Keyed hypervector storage behind the serving runtime's item plane:
/// upsert, point read, remove, full scan. Implementations must make
/// `insert`/`remove` idempotent (WAL replay re-applies them) and `get`
/// return exactly the last inserted vector for the key — the serving layer
/// asserts bit-identity between backends on top of this contract.
pub trait ItemStore: Send {
    /// Upserts `hv` under `key`. Returns `true` if a previous entry was
    /// replaced.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on backend I/O failure and
    /// [`HdcError::DimensionMismatch`] for a wrong-width vector.
    fn insert(&mut self, key: &str, hv: &BinaryHypervector) -> Result<bool, HdcError>;

    /// The vector stored under `key`, if any. `&mut` because a paged
    /// backend promotes the entry into its hot cache.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on backend I/O failure.
    fn get(&mut self, key: &str) -> Result<Option<BinaryHypervector>, HdcError>;

    /// Removes `key`. Returns `true` if it was stored.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on backend I/O failure.
    fn remove(&mut self, key: &str) -> Result<bool, HdcError>;

    /// Whether `key` is stored (no promotion, no I/O).
    fn contains(&self, key: &str) -> bool;

    /// Number of stored keys.
    fn len(&self) -> usize;

    /// Whether no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every stored `(key, vector)`, sorted by key for deterministic
    /// snapshots. Reads around the hot cache — a full scan must not evict
    /// the working set.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on backend I/O failure.
    fn entries(&mut self) -> Result<Vec<(String, BinaryHypervector)>, HdcError>;

    /// Entries currently resident in RAM (the whole store for
    /// [`ResidentStore`], the hot cache for [`PagedStore`]).
    fn resident(&self) -> usize;

    /// Flushes buffered state to durable storage (no-op for RAM).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on backend I/O failure.
    fn flush(&mut self) -> Result<(), HdcError>;
}

/// The in-RAM default: a `HashMap` with the trait's contract, `resident`
/// equal to `len`.
#[derive(Debug, Default)]
pub struct ResidentStore {
    map: HashMap<String, BinaryHypervector>,
}

impl ResidentStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ItemStore for ResidentStore {
    fn insert(&mut self, key: &str, hv: &BinaryHypervector) -> Result<bool, HdcError> {
        Ok(self.map.insert(key.to_string(), hv.clone()).is_some())
    }

    fn get(&mut self, key: &str) -> Result<Option<BinaryHypervector>, HdcError> {
        Ok(self.map.get(key).cloned())
    }

    fn remove(&mut self, key: &str) -> Result<bool, HdcError> {
        Ok(self.map.remove(key).is_some())
    }

    fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn entries(&mut self) -> Result<Vec<(String, BinaryHypervector)>, HdcError> {
        let mut entries: Vec<(String, BinaryHypervector)> = self
            .map
            .iter()
            .map(|(key, hv)| (key.clone(), hv.clone()))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(entries)
    }

    fn resident(&self) -> usize {
        self.map.len()
    }

    fn flush(&mut self) -> Result<(), HdcError> {
        Ok(())
    }
}

const PAGES_MAGIC: [u8; 4] = *b"HDCP";
const PAGES_VERSION: u16 = 1;
const PAGES_HEADER_LEN: u64 = 32;

const IDX_BIND: u8 = 1;
const IDX_TOMBSTONE: u8 = 2;

/// The file-backed paged item memory. See the module docs for the layout.
#[derive(Debug)]
pub struct PagedStore {
    dir: PathBuf,
    dim: usize,
    slot_bytes: u64,
    data: File,
    index_log: File,
    slots: HashMap<String, u64>,
    free: Vec<u64>,
    slot_count: u64,
    /// Index records appended since the last compaction — when this
    /// dominates the live count, `flush` rewrites the index to just the
    /// live bindings.
    index_appended: u64,
    cache: HashMap<String, (BinaryHypervector, u64)>,
    lru: VecDeque<(String, u64)>,
    tick: u64,
    budget: usize,
}

impl PagedStore {
    /// Opens (creating if needed) the paged store in `dir` for
    /// `dim`-dimensional vectors with at most `budget` cached entries.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure, a foreign data file,
    /// or a dimension mismatch with an existing store.
    pub fn open(dir: impl Into<PathBuf>, dim: usize, budget: usize) -> Result<Self, HdcError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| storage(&format!("creating {}", dir.display()), e))?;
        let data_path = dir.join("pages.dat");
        let mut data = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&data_path)
            .map_err(|e| storage(&format!("opening {}", data_path.display()), e))?;
        let data_len = data
            .metadata()
            .map_err(|e| storage(&format!("inspecting {}", data_path.display()), e))?
            .len();
        let slot_bytes = (dim.div_ceil(64) * 8) as u64;
        if data_len == 0 {
            let mut header = Vec::with_capacity(PAGES_HEADER_LEN as usize);
            header.extend_from_slice(&PAGES_MAGIC);
            header.extend_from_slice(&PAGES_VERSION.to_be_bytes());
            header.extend_from_slice(&(dim as u64).to_be_bytes());
            header.resize(PAGES_HEADER_LEN as usize, 0);
            data.write_all(&header)
                .map_err(|e| storage(&format!("writing {}", data_path.display()), e))?;
        } else {
            let mut header = [0u8; PAGES_HEADER_LEN as usize];
            data.rewind()
                .and_then(|()| data.read_exact(&mut header))
                .map_err(|e| storage(&format!("reading {}", data_path.display()), e))?;
            if header[..4] != PAGES_MAGIC {
                return Err(HdcError::Storage(format!(
                    "{}: bad magic; not a paged item memory",
                    data_path.display()
                )));
            }
            if header[4..6] != PAGES_VERSION.to_be_bytes() {
                return Err(HdcError::Storage(format!(
                    "{}: unsupported page file version",
                    data_path.display()
                )));
            }
            let found = be_u64(&header, 6).ok_or_else(|| {
                HdcError::Storage(format!(
                    "{}: truncated page-file header",
                    data_path.display()
                ))
            })?;
            if found != dim as u64 {
                return Err(HdcError::Storage(format!(
                    "{}: stores {found}-dimensional vectors, model expects {dim}",
                    data_path.display()
                )));
            }
        }
        // A torn slot write can leave a partial trailing slot; rounding
        // down is safe because its binding (appended after the data write)
        // can only exist if the slot write completed.
        let slot_count = data_len.saturating_sub(PAGES_HEADER_LEN) / slot_bytes;

        let (index_log, slots, index_appended) = Self::open_index(&dir, slot_count)?;
        let mut used: Vec<bool> = vec![false; slot_count as usize];
        for &slot in slots.values() {
            used[slot as usize] = true;
        }
        let free = (0..slot_count).filter(|&s| !used[s as usize]).collect();
        Ok(Self {
            dir,
            dim,
            slot_bytes,
            data,
            index_log,
            slots,
            free,
            slot_count,
            index_appended,
            cache: HashMap::new(),
            lru: VecDeque::new(),
            tick: 0,
            budget,
        })
    }

    /// Scans (or creates) `keys.idx`, rebuilding the key → slot map.
    /// Bindings pointing past the data file's slot count are dropped (a
    /// crash between index append and a lost data-file write — replay
    /// re-binds them); a torn tail is truncated.
    fn open_index(
        dir: &Path,
        slot_count: u64,
    ) -> Result<(File, HashMap<String, u64>, u64), HdcError> {
        let path = dir.join("keys.idx");
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(error) => return Err(storage(&format!("reading {}", path.display()), error)),
        };
        let mut slots = HashMap::new();
        let mut at = 0usize;
        let mut appended = 0u64;
        while at < bytes.len() {
            if bytes.len() - at < 8 {
                break;
            }
            let (Some(len), Some(crc)) = (be_u32(&bytes, at), be_u32(&bytes, at + 4)) else {
                break;
            };
            let len = len as usize;
            if bytes.len() - at - 8 < len || len < 9 {
                break;
            }
            let payload = &bytes[at + 8..at + 8 + len];
            if crc32(payload) != crc {
                break;
            }
            let tag = payload[0];
            let Some(slot) = be_u64(payload, 1) else {
                break;
            };
            let Ok(key) = std::str::from_utf8(&payload[9..]) else {
                break;
            };
            match tag {
                IDX_BIND if slot < slot_count => {
                    slots.insert(key.to_string(), slot);
                }
                IDX_BIND => {} // binding to a slot the data file lost
                IDX_TOMBSTONE => {
                    slots.remove(key);
                }
                _ => break,
            }
            appended += 1;
            at += 8 + len;
        }
        if at < bytes.len() {
            // Torn or foreign tail: truncate to the valid prefix.
            let file = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)
                .map_err(|e| storage(&format!("opening {}", path.display()), e))?;
            file.set_len(at as u64)
                .map_err(|e| storage(&format!("truncating {}", path.display()), e))?;
        }
        let index_log = OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| storage(&format!("opening {}", path.display()), e))?;
        Ok((index_log, slots, appended))
    }

    fn append_index(&mut self, tag: u8, slot: u64, key: &str) -> Result<(), HdcError> {
        let mut payload = Vec::with_capacity(9 + key.len());
        payload.push(tag);
        payload.extend_from_slice(&slot.to_be_bytes());
        payload.extend_from_slice(key.as_bytes());
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        self.index_log
            .write_all(&frame)
            .map_err(|e| storage("appending to keys.idx", e))?;
        self.index_appended += 1;
        Ok(())
    }

    fn slot_offset(&self, slot: u64) -> u64 {
        PAGES_HEADER_LEN + slot * self.slot_bytes
    }

    fn write_slot(&mut self, slot: u64, hv: &BinaryHypervector) -> Result<(), HdcError> {
        let offset = self.slot_offset(slot);
        let mut buf = Vec::with_capacity(self.slot_bytes as usize);
        for word in hv.as_words() {
            buf.extend_from_slice(&word.to_be_bytes());
        }
        self.data
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.data.write_all(&buf))
            .map_err(|e| storage("writing pages.dat slot", e))
    }

    fn read_slot(&mut self, slot: u64) -> Result<BinaryHypervector, HdcError> {
        let offset = self.slot_offset(slot);
        let mut buf = vec![0u8; self.slot_bytes as usize];
        self.data
            .seek(SeekFrom::Start(offset))
            .and_then(|_| self.data.read_exact(&mut buf))
            .map_err(|e| storage("reading pages.dat slot", e))?;
        // `chunks_exact(8)` only yields full chunks, so the filter never
        // actually drops one — but the panic-free form keeps this path
        // clean under the `panic-free-hot-path` lint.
        let mut words: Vec<u64> = buf
            .chunks_exact(8)
            .filter_map(|chunk| be_u64(chunk, 0))
            .collect();
        // Mask the tail defensively: a torn in-place overwrite awaiting its
        // healing replay must not panic the clean-tail invariant.
        let rem = self.dim % 64;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        Ok(BinaryHypervector::from_words(self.dim, words))
    }

    fn check_dim(&self, hv: &BinaryHypervector) -> Result<(), HdcError> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                found: hv.dim(),
            });
        }
        Ok(())
    }

    /// Promotes `key` into the hot cache, evicting least-recently-used
    /// entries past the budget (lazy LRU: stale queue entries are skipped
    /// by tick comparison, and the queue itself is compacted when it
    /// outgrows the cache by 4×).
    fn cache_put(&mut self, key: &str, hv: BinaryHypervector) {
        if self.budget == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        self.lru.push_back((key.to_string(), tick));
        self.cache.insert(key.to_string(), (hv, tick));
        while self.cache.len() > self.budget {
            let Some((old_key, old_tick)) = self.lru.pop_front() else {
                break;
            };
            if self
                .cache
                .get(&old_key)
                .is_some_and(|&(_, tick)| tick == old_tick)
            {
                self.cache.remove(&old_key);
            }
        }
        if self.lru.len() > 4 * self.budget.max(4) {
            let cache = &self.cache;
            self.lru
                .retain(|(key, tick)| cache.get(key).is_some_and(|&(_, t)| t == *tick));
        }
    }

    /// Rewrites `keys.idx` down to the live bindings (tmp+rename) once the
    /// appended-record count dwarfs them.
    fn compact_index(&mut self) -> Result<(), HdcError> {
        let path = self.dir.join("keys.idx");
        let tmp = self.dir.join("keys.idx.tmp");
        let mut buf = Vec::new();
        let mut live: Vec<(&String, &u64)> = self.slots.iter().collect();
        live.sort_unstable_by_key(|(key, _)| key.as_str());
        for (key, &slot) in live {
            let mut payload = Vec::with_capacity(9 + key.len());
            payload.push(IDX_BIND);
            payload.extend_from_slice(&slot.to_be_bytes());
            payload.extend_from_slice(key.as_bytes());
            buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            buf.extend_from_slice(&crc32(&payload).to_be_bytes());
            buf.extend_from_slice(&payload);
        }
        let write = || -> std::io::Result<File> {
            let mut file = File::create(&tmp)?;
            file.write_all(&buf)?;
            file.sync_data()?;
            std::fs::rename(&tmp, &path)?;
            OpenOptions::new().append(true).open(&path)
        };
        self.index_log = write().map_err(|e| storage("compacting keys.idx", e))?;
        self.index_appended = self.slots.len() as u64;
        Ok(())
    }

    /// Syncs `pages.dat` and `keys.idx` to disk without the compaction
    /// heuristic that [`ItemStore::flush`] applies — the group-commit
    /// boundary wants exactly the durability barrier, not a potential
    /// index rewrite on the serving path.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] if either fsync fails.
    pub fn sync_files(&mut self) -> Result<(), HdcError> {
        self.data
            .sync_data()
            .map_err(|e| storage("syncing pages.dat", e))?;
        self.index_log
            .sync_data()
            .map_err(|e| storage("syncing keys.idx", e))
    }
}

impl ItemStore for PagedStore {
    fn insert(&mut self, key: &str, hv: &BinaryHypervector) -> Result<bool, HdcError> {
        self.check_dim(hv)?;
        if let Some(&slot) = self.slots.get(key) {
            self.write_slot(slot, hv)?;
            self.cache_put(key, hv.clone());
            return Ok(true);
        }
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = self.slot_count;
                self.slot_count += 1;
                slot
            }
        };
        // Data before index: a crash between the two leaves an orphaned
        // slot (reclaimed by the free-list scan), never a binding to
        // unwritten data.
        self.write_slot(slot, hv)?;
        self.append_index(IDX_BIND, slot, key)?;
        self.slots.insert(key.to_string(), slot);
        self.cache_put(key, hv.clone());
        Ok(false)
    }

    fn get(&mut self, key: &str) -> Result<Option<BinaryHypervector>, HdcError> {
        if let Some((hv, _)) = self.cache.get(key) {
            let hv = hv.clone();
            self.cache_put(key, hv.clone());
            return Ok(Some(hv));
        }
        let Some(&slot) = self.slots.get(key) else {
            return Ok(None);
        };
        let hv = self.read_slot(slot)?;
        self.cache_put(key, hv.clone());
        Ok(Some(hv))
    }

    fn remove(&mut self, key: &str) -> Result<bool, HdcError> {
        let Some(slot) = self.slots.remove(key) else {
            return Ok(false);
        };
        self.append_index(IDX_TOMBSTONE, slot, key)?;
        self.free.push(slot);
        self.cache.remove(key);
        Ok(true)
    }

    fn contains(&self, key: &str) -> bool {
        self.slots.contains_key(key)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn entries(&mut self) -> Result<Vec<(String, BinaryHypervector)>, HdcError> {
        let mut keys: Vec<(String, u64)> = self
            .slots
            .iter()
            .map(|(key, &slot)| (key.clone(), slot))
            .collect();
        keys.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut entries = Vec::with_capacity(keys.len());
        for (key, slot) in keys {
            // Bypass the cache on purpose: a full scan (snapshot, warm-join
            // stream) must not evict the serving working set.
            let hv = match self.cache.get(&key) {
                Some((hv, _)) => hv.clone(),
                None => self.read_slot(slot)?,
            };
            entries.push((key, hv));
        }
        Ok(entries)
    }

    fn resident(&self) -> usize {
        self.cache.len()
    }

    fn flush(&mut self) -> Result<(), HdcError> {
        if self.index_appended > 2 * self.slots.len() as u64 + 64 {
            self.compact_index()?;
        }
        self.data
            .sync_data()
            .map_err(|e| storage("syncing pages.dat", e))?;
        self.index_log
            .sync_data()
            .map_err(|e| storage("syncing keys.idx", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdc-paged-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn vectors(n: usize, dim: usize) -> Vec<BinaryHypervector> {
        let mut rng = StdRng::seed_from_u64(42);
        (0..n)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect()
    }

    #[test]
    fn paged_matches_resident_and_bounds_residency() {
        let dir = tmp_dir("parity");
        let budget = 8;
        let mut paged = PagedStore::open(&dir, 300, budget).unwrap();
        let mut resident = ResidentStore::new();
        let hvs = vectors(100, 300);
        for (i, hv) in hvs.iter().enumerate() {
            let key = format!("user-{i}");
            assert_eq!(
                paged.insert(&key, hv).unwrap(),
                resident.insert(&key, hv).unwrap()
            );
        }
        // Overwrites, removals, misses.
        assert!(paged.insert("user-3", &hvs[0]).unwrap());
        assert!(resident.insert("user-3", &hvs[0]).unwrap());
        assert_eq!(
            paged.remove("user-7").unwrap(),
            resident.remove("user-7").unwrap()
        );
        assert!(!paged.remove("ghost").unwrap());
        assert!(paged.get("ghost").unwrap().is_none());

        // 10× the budget served with bounded residency, bit-identically.
        assert_eq!(paged.len(), resident.len());
        for i in 0..100 {
            let key = format!("user-{i}");
            assert_eq!(
                paged.get(&key).unwrap(),
                resident.get(&key).unwrap(),
                "key {key}"
            );
            assert!(paged.resident() <= budget, "cache bound violated");
        }
        assert_eq!(paged.entries().unwrap(), resident.entries().unwrap());
        assert!(
            paged.resident() <= budget,
            "a full scan must not blow the cache bound"
        );

        // Reopen: everything survives without the cache.
        paged.flush().unwrap();
        drop(paged);
        let mut reopened = PagedStore::open(&dir, 300, budget).unwrap();
        assert_eq!(reopened.entries().unwrap(), resident.entries().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slots_are_recycled_and_index_compacts() {
        let dir = tmp_dir("recycle");
        let mut paged = PagedStore::open(&dir, 64, 4).unwrap();
        let hvs = vectors(4, 64);
        // Insert/remove churn on a small store: slot count must not grow
        // past the peak live set.
        for round in 0..150 {
            let key = format!("churn-{}", round % 3);
            paged.insert(&key, &hvs[round % 4]).unwrap();
            if round % 2 == 1 {
                paged.remove(&key).unwrap();
            }
        }
        assert!(paged.slot_count <= 4, "slots recycled, not leaked");
        let before = std::fs::metadata(dir.join("keys.idx")).unwrap().len();
        paged.flush().unwrap();
        let after = std::fs::metadata(dir.join("keys.idx")).unwrap().len();
        assert!(after < before, "compaction shrank the index log");
        // State intact after compaction + reopen.
        let live: Vec<String> = paged
            .entries()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        drop(paged);
        let mut reopened = PagedStore::open(&dir, 64, 4).unwrap();
        let live_again: Vec<String> = reopened
            .entries()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(live, live_again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_with_wrong_dimension_is_loud() {
        let dir = tmp_dir("dim");
        let mut paged = PagedStore::open(&dir, 128, 2).unwrap();
        paged.insert("k", &vectors(1, 128)[0]).unwrap();
        assert!(matches!(
            paged.insert("w", &vectors(1, 64)[0]),
            Err(HdcError::DimensionMismatch { .. })
        ));
        drop(paged);
        let err = PagedStore::open(&dir, 256, 2).unwrap_err();
        assert!(err.to_string().contains("128"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_index_tail_is_truncated() {
        let dir = tmp_dir("torn-idx");
        let mut paged = PagedStore::open(&dir, 64, 2).unwrap();
        let hvs = vectors(3, 64);
        for (i, hv) in hvs.iter().enumerate() {
            paged.insert(&format!("k{i}"), hv).unwrap();
        }
        drop(paged);
        let path = dir.join("keys.idx");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let mut reopened = PagedStore::open(&dir, 64, 2).unwrap();
        // The torn binding is gone; re-inserting it (as WAL replay would)
        // restores the full set.
        assert_eq!(reopened.len(), 2);
        reopened.insert("k2", &hvs[2]).unwrap();
        assert_eq!(reopened.get("k2").unwrap().unwrap(), hvs[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
