//! The per-record WAL compression codec behind [`WalCodec::Adaptive`]:
//! every frame payload in a tagged segment opens with one record-codec
//! byte choosing how the record's hypervector is encoded, and the choice
//! is made per record by *measuring* every candidate and keeping the
//! smallest.
//!
//! # Why this pays
//!
//! Level and circular bases build adjacent levels by flipping a small
//! slice of coordinates, so the hypervectors a serving stream logs are
//! low-effective-information: consecutive observations of a slowly
//! moving signal differ by a sparse set of flips, and a bounded stream
//! revisits the same level vectors over and over. The codec exploits
//! exactly that structure:
//!
//! * **delta** — XOR against one of the last [`DICT_SLOTS`] hypervectors
//!   in the same segment (an exact revisit costs ~4 bytes; an adjacent
//!   level costs one varint gap per flipped bit);
//! * **sparse** — gap-coded set-bit (or clear-bit) positions, for
//!   intrinsically low/high-density vectors;
//! * **RLE** — word-wise run-length encoding, the fallback for constant
//!   regions (all-zero / all-one stretches);
//! * **raw** — the plain [`WalRecord`] payload, kept whenever nothing
//!   measured smaller, so dense random vectors never regress.
//!
//! # Determinism contract
//!
//! The delta dictionary is a ring of the hypervectors carried by the
//! last [`DICT_SLOTS`] hv-bearing records, updated identically by the
//! encoder and the decoder from the *decoded* content, and reset at
//! every segment boundary — so any segment replays standalone, in one
//! forward pass, bit-identically to what was appended. An unknown
//! record-codec byte is a format mismatch and decodes loudly (the WAL
//! treats it as corruption of acknowledged state, never a torn tail).

use std::io;

use hdc_core::BinaryHypervector;

use crate::codec::{self, Cursor};
use crate::record::WalRecord;

/// Record-codec byte: the payload after it is a plain [`WalRecord`].
pub(crate) const REC_RAW: u8 = 0;
/// Gap-coded set-bit positions of the hypervector.
const REC_SPARSE: u8 = 1;
/// Gap-coded clear-bit positions (for high-density vectors).
const REC_SPARSE_INV: u8 = 2;
/// Gap-coded XOR against a recent record's hypervector.
const REC_DELTA: u8 = 3;
/// Word-wise run-length encoding.
const REC_RLE: u8 = 4;

/// Ring capacity of the delta dictionary. Sixteen recent hypervectors
/// cover the working set of a level walk without making the per-record
/// nearest-neighbour scan noticeable next to the 1.25 KB raw encode.
const DICT_SLOTS: usize = 16;

/// The delta dictionary: a ring of the hypervectors carried by the most
/// recent hv-bearing records of the current segment. Both halves of the
/// codec maintain it from decoded content, so it never needs to be
/// persisted.
#[derive(Debug, Default)]
pub(crate) struct CodecDict {
    entries: Vec<BinaryHypervector>,
    next: usize,
}

impl CodecDict {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Forgets everything — called at every segment boundary so segments
    /// stay self-contained.
    pub(crate) fn reset(&mut self) {
        self.entries.clear();
        self.next = 0;
    }

    fn push(&mut self, hv: &BinaryHypervector) {
        if self.entries.len() < DICT_SLOTS {
            self.entries.push(hv.clone());
        } else {
            self.entries[self.next] = hv.clone();
        }
        self.next = (self.next + 1) % DICT_SLOTS;
    }

    /// The closest dictionary entry of the same dimension, by Hamming
    /// distance.
    fn nearest(&self, hv: &BinaryHypervector) -> Option<(usize, usize)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, entry)| entry.dim() == hv.dim())
            .map(|(slot, entry)| (slot, entry.hamming(hv)))
            .min_by_key(|&(_, distance)| distance)
    }
}

/// Appends the ascending `indices` as varint gaps: the first index
/// verbatim, then successor-minus-predecessor-minus-one.
fn put_gaps(buf: &mut Vec<u8>, indices: &[u32]) {
    codec::put_varint(buf, indices.len() as u64);
    let mut previous = None;
    for &index in indices {
        match previous {
            None => codec::put_varint(buf, u64::from(index)),
            Some(p) => codec::put_varint(buf, u64::from(index - p - 1)),
        }
        previous = Some(index);
    }
}

/// Reads gap-coded indices back, validating ascending order and the
/// `dim` bound.
fn read_gaps(cursor: &mut Cursor<'_>, dim: usize) -> io::Result<Vec<u32>> {
    let count = cursor.varint()?;
    let count = usize::try_from(count).map_err(|_| codec::invalid("gap count exceeds usize"))?;
    if count > dim {
        return Err(codec::invalid("more gap indices than dimensions"));
    }
    let mut indices = Vec::with_capacity(count.min(cursor.remaining() + 1));
    let mut at: u64 = 0;
    for i in 0..count {
        let gap = cursor.varint()?;
        at = if i == 0 { gap } else { at + 1 + gap };
        if at >= dim as u64 {
            return Err(codec::invalid("gap index beyond the hypervector dimension"));
        }
        indices.push(at as u32);
    }
    Ok(indices)
}

/// The set-bit positions of `hv` (optionally inverted), ascending.
fn bit_positions(hv: &BinaryHypervector, inverted: bool) -> Vec<u32> {
    let dim = hv.dim();
    let mut positions = Vec::new();
    for (w, &word) in hv.as_words().iter().enumerate() {
        let mut bits = if inverted { !word } else { word };
        if inverted {
            // Mask padding bits past the dimension in the last word.
            let rem = dim % 64;
            if rem != 0 && w == hv.as_words().len() - 1 {
                bits &= (1u64 << rem) - 1;
            }
        }
        let base = (w * 64) as u32;
        while bits != 0 {
            positions.push(base + bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
    positions
}

/// The XOR flip positions between two same-dimension hypervectors.
fn xor_positions(a: &BinaryHypervector, b: &BinaryHypervector) -> Vec<u32> {
    let mut positions = Vec::new();
    for (w, (&wa, &wb)) in a.as_words().iter().zip(b.as_words()).enumerate() {
        let mut bits = wa ^ wb;
        let base = (w * 64) as u32;
        while bits != 0 {
            positions.push(base + bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
    positions
}

fn hv_from_positions(dim: usize, positions: &[u32]) -> BinaryHypervector {
    let mut hv = BinaryHypervector::zeros(dim);
    for &p in positions {
        hv.set(p as usize, true);
    }
    hv
}

/// Word-wise runs of `hv`: `(run_length, word)` pairs.
fn word_runs(hv: &BinaryHypervector) -> Vec<(u64, u64)> {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for &word in hv.as_words() {
        match runs.last_mut() {
            Some((len, w)) if *w == word => *len += 1,
            _ => runs.push((1, word)),
        }
    }
    runs
}

/// The record tag and non-hypervector fields, exactly as the raw codec
/// lays them out — the compressed layouts reuse this prefix and replace
/// only the trailing hypervector block.
fn record_prefix(record: &WalRecord) -> Option<Vec<u8>> {
    let mut buf = Vec::with_capacity(16);
    match record {
        WalRecord::Insert { key, hv: _ } => {
            buf.push(1);
            codec::put_long_string(&mut buf, key);
        }
        WalRecord::Fit { hv: _, label } => {
            buf.push(3);
            codec::put_u64(&mut buf, *label);
        }
        WalRecord::FitValue { hv: _, value } => {
            buf.push(4);
            codec::put_f64(&mut buf, *value);
        }
        WalRecord::Remove { .. } => return None,
    }
    Some(buf)
}

fn record_hv(record: &WalRecord) -> Option<&BinaryHypervector> {
    match record {
        WalRecord::Insert { hv, .. }
        | WalRecord::Fit { hv, .. }
        | WalRecord::FitValue { hv, .. } => Some(hv),
        WalRecord::Remove { .. } => None,
    }
}

/// Encodes one record for a tagged segment, measuring every plausible
/// candidate and keeping the smallest payload. Always correct, never
/// larger than raw plus the one-byte record-codec tag.
pub(crate) fn encode_tagged(record: &WalRecord, dict: &mut CodecDict) -> io::Result<Vec<u8>> {
    let raw = record.encode()?;
    let mut best = Vec::with_capacity(raw.len() + 1);
    best.push(REC_RAW);
    best.extend_from_slice(&raw);

    if let (Some(prefix), Some(hv)) = (record_prefix(record), record_hv(record)) {
        let dim = hv.dim();
        let assemble = |tag: u8, block: &[u8]| {
            let mut buf = Vec::with_capacity(1 + prefix.len() + block.len());
            buf.push(tag);
            buf.extend_from_slice(&prefix);
            buf.extend_from_slice(block);
            buf
        };
        // Delta against the nearest recent record: the big win for
        // level/circular streams (revisits and adjacent levels).
        if let Some((slot, distance)) = dict.nearest(hv) {
            if distance + 8 < best.len() {
                let mut block = Vec::with_capacity(8 + 2 * distance);
                codec::put_varint(&mut block, dim as u64);
                block.push(slot as u8);
                put_gaps(&mut block, &xor_positions(hv, &dict.entries[slot]));
                if 1 + prefix.len() + block.len() < best.len() {
                    best = assemble(REC_DELTA, &block);
                }
            }
        }
        // Sparse set/clear bits, whichever side is lighter.
        let ones = hv.count_ones();
        let (sparse_tag, inverted, k) = if ones <= dim - ones {
            (REC_SPARSE, false, ones)
        } else {
            (REC_SPARSE_INV, true, dim - ones)
        };
        if k + 8 < best.len() {
            let mut block = Vec::with_capacity(8 + 2 * k);
            codec::put_varint(&mut block, dim as u64);
            put_gaps(&mut block, &bit_positions(hv, inverted));
            if 1 + prefix.len() + block.len() < best.len() {
                best = assemble(sparse_tag, &block);
            }
        }
        // Word-wise RLE: catches constant regions the bit codecs miss.
        let runs = word_runs(hv);
        if runs.len() * 9 + 8 < best.len() {
            let mut block = Vec::with_capacity(8 + runs.len() * 12);
            codec::put_varint(&mut block, dim as u64);
            codec::put_varint(&mut block, runs.len() as u64);
            for (len, word) in &runs {
                codec::put_varint(&mut block, *len);
                codec::put_u64(&mut block, *word);
            }
            if 1 + prefix.len() + block.len() < best.len() {
                best = assemble(REC_RLE, &block);
            }
        }
        dict.push(hv);
    }
    Ok(best)
}

fn read_dim(cursor: &mut Cursor<'_>) -> io::Result<usize> {
    let dim = cursor.varint()?;
    if dim == 0 || dim > u64::from(u32::MAX) {
        return Err(codec::invalid("compressed record has invalid dimension"));
    }
    Ok(dim as usize)
}

/// Decodes one tagged-segment payload, updating the dictionary exactly
/// as the encoder did. Unknown record-codec bytes, bounds violations and
/// trailing bytes are all loud [`io::ErrorKind::InvalidData`] — a
/// CRC-valid but undecodable record means acknowledged state the reader
/// cannot reproduce.
pub(crate) fn decode_tagged(payload: &[u8], dict: &mut CodecDict) -> io::Result<WalRecord> {
    let Some((&rec_codec, body)) = payload.split_first() else {
        return Err(codec::invalid("empty tagged record payload"));
    };
    if rec_codec == REC_RAW {
        let record = WalRecord::decode(body)?;
        if let Some(hv) = record_hv(&record) {
            dict.push(hv);
        }
        return Ok(record);
    }
    if !(REC_SPARSE..=REC_RLE).contains(&rec_codec) {
        return Err(codec::invalid(format!(
            "unknown WAL record codec {rec_codec}"
        )));
    }
    let mut cursor = Cursor::new(body);
    let tag = cursor.u8()?;
    enum Prefix {
        Insert(String),
        Fit(u64),
        FitValue(f64),
    }
    let prefix = match tag {
        1 => Prefix::Insert(cursor.long_string()?),
        3 => Prefix::Fit(cursor.u64()?),
        4 => Prefix::FitValue(cursor.f64()?),
        tag => {
            return Err(codec::invalid(format!(
                "record tag {tag} cannot carry a compressed hypervector"
            )))
        }
    };
    let dim = read_dim(&mut cursor)?;
    let hv = match rec_codec {
        REC_SPARSE => hv_from_positions(dim, &read_gaps(&mut cursor, dim)?),
        REC_SPARSE_INV => {
            let mut hv = BinaryHypervector::ones(dim);
            for p in read_gaps(&mut cursor, dim)? {
                hv.set(p as usize, false);
            }
            hv
        }
        REC_DELTA => {
            let slot = cursor.u8()? as usize;
            let base = dict.entries.get(slot).ok_or_else(|| {
                codec::invalid("delta record references an empty dictionary slot")
            })?;
            if base.dim() != dim {
                return Err(codec::invalid(
                    "delta record dimension differs from its dictionary base",
                ));
            }
            let mut hv = base.clone();
            for p in read_gaps(&mut cursor, dim)? {
                hv.flip(p as usize);
            }
            hv
        }
        REC_RLE => {
            let words = dim.div_ceil(64);
            let nruns = cursor.varint()?;
            let nruns =
                usize::try_from(nruns).map_err(|_| codec::invalid("run count exceeds usize"))?;
            let mut packed = Vec::with_capacity(words.min(cursor.remaining() + 1));
            for _ in 0..nruns {
                let len = cursor.varint()?;
                let word = cursor.u64()?;
                for _ in 0..len {
                    if packed.len() == words {
                        return Err(codec::invalid("RLE runs exceed the hypervector width"));
                    }
                    packed.push(word);
                }
            }
            if packed.len() != words {
                return Err(codec::invalid("RLE runs do not cover the hypervector"));
            }
            let rem = dim % 64;
            if rem != 0 && packed.last().is_some_and(|&last| last >> rem != 0) {
                return Err(codec::invalid("bits set beyond the hypervector dimension"));
            }
            BinaryHypervector::from_words(dim, packed)
        }
        _ => unreachable!("codec byte validated above"),
    };
    cursor.finish()?;
    dict.push(&hv);
    Ok(match prefix {
        Prefix::Insert(key) => WalRecord::Insert { key, hv },
        Prefix::Fit(label) => WalRecord::Fit { hv, label },
        Prefix::FitValue(value) => WalRecord::FitValue { hv, value },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(records: &[WalRecord]) {
        let mut enc = CodecDict::new();
        let mut dec = CodecDict::new();
        for record in records {
            let payload = encode_tagged(record, &mut enc).unwrap();
            let back = decode_tagged(&payload, &mut dec).unwrap();
            assert_eq!(&back, record);
        }
    }

    #[test]
    fn dense_random_records_round_trip_as_raw() {
        let mut rng = StdRng::seed_from_u64(3);
        let records: Vec<WalRecord> = (0..8)
            .map(|i| WalRecord::Fit {
                hv: BinaryHypervector::random(1024, &mut rng),
                label: i,
            })
            .collect();
        // Dense random vectors are incompressible; the adaptive codec
        // must not bloat them past raw + tag.
        let mut dict = CodecDict::new();
        for record in &records {
            let payload = encode_tagged(record, &mut dict).unwrap();
            assert!(payload.len() <= record.encode().unwrap().len() + 1);
        }
        roundtrip(&records);
    }

    #[test]
    fn level_walk_compresses_via_delta() {
        // A slow level walk: each record flips 8 bits of its predecessor
        // — the structure circular/level bases produce.
        let mut rng = StdRng::seed_from_u64(4);
        let mut hv = BinaryHypervector::random(4096, &mut rng);
        let mut records = Vec::new();
        for i in 0..32 {
            let flips: Vec<usize> = (0..8).map(|_| rng.random_range(0..4096)).collect();
            hv.flip_positions(&flips);
            records.push(WalRecord::Fit {
                hv: hv.clone(),
                label: i,
            });
        }
        let mut dict = CodecDict::new();
        let mut total = 0usize;
        for record in &records {
            total += encode_tagged(record, &mut dict).unwrap().len();
        }
        let raw: usize = records.iter().map(|r| r.encode().unwrap().len()).sum();
        assert!(
            total * 3 < raw,
            "delta coding must compress a level walk at least 3x ({total} vs {raw})"
        );
        roundtrip(&records);
    }

    #[test]
    fn sparse_and_rle_and_mixed_records_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sparse = BinaryHypervector::zeros(2048);
        for _ in 0..20 {
            sparse.set(rng.random_range(0..2048), true);
        }
        let mut dense = BinaryHypervector::ones(2000);
        for _ in 0..20 {
            dense.set(rng.random_range(0..2000), false);
        }
        let records = vec![
            WalRecord::Insert {
                key: "sparse".into(),
                hv: sparse,
            },
            WalRecord::Remove { key: "gone".into() },
            WalRecord::FitValue {
                hv: dense,
                value: -2.5,
            },
            WalRecord::Fit {
                hv: BinaryHypervector::zeros(777),
                label: 1,
            },
            WalRecord::Fit {
                hv: BinaryHypervector::random(333, &mut rng),
                label: 2,
            },
        ];
        roundtrip(&records);
    }

    #[test]
    fn unknown_record_codec_is_loud() {
        let err = decode_tagged(&[9, 3, 0], &mut CodecDict::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("unknown WAL record codec"));
    }

    #[test]
    fn delta_against_missing_slot_is_loud() {
        // Craft a delta record by encoding against a warm dictionary,
        // then decode with a cold one.
        let mut enc = CodecDict::new();
        let mut rng = StdRng::seed_from_u64(6);
        let base = BinaryHypervector::random(512, &mut rng);
        encode_tagged(
            &WalRecord::Fit {
                hv: base.clone(),
                label: 0,
            },
            &mut enc,
        )
        .unwrap();
        let mut step = base.clone();
        step.flip(7);
        let payload = encode_tagged(&WalRecord::Fit { hv: step, label: 1 }, &mut enc).unwrap();
        assert_eq!(payload[0], REC_DELTA);
        let err = decode_tagged(&payload, &mut CodecDict::new()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut dict = CodecDict::new();
        let mut payload = encode_tagged(
            &WalRecord::Fit {
                hv: BinaryHypervector::zeros(256),
                label: 0,
            },
            &mut dict,
        )
        .unwrap();
        assert_ne!(payload[0], REC_RAW, "zeros vector must compress");
        payload.push(0);
        assert!(decode_tagged(&payload, &mut CodecDict::new()).is_err());
    }
}
