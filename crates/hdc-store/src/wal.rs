//! The segmented write-ahead log: fixed-threshold segment files of
//! CRC-framed [`WalRecord`]s, appended by exactly one writer, replayed at
//! open with a truncated-tail tolerance in the last segment only.
//!
//! # On-disk layout
//!
//! Each segment is `wal-{first_seq:016x}.log`:
//!
//! ```text
//! "HDCW"  u16 version  u64 first_seq  u64 spec_digest  u8 codec   (23-byte header)
//! [ u32 payload_len  u32 crc32(payload)  payload ]*               (record frames)
//! ```
//!
//! `first_seq` is the sequence number of the segment's first record;
//! record `k` of the segment has sequence `first_seq + k`. The digest in
//! every header is the owning pipeline spec's 64-bit digest, so a log can
//! never replay into a model with a different spec.
//!
//! The header's `codec` byte negotiates how frame payloads are encoded —
//! `0` for plain [`WalRecord`] payloads, `1` for per-record adaptively
//! compressed payloads (see [`compress`](crate::compress)) — fixed for
//! the segment's lifetime, so every segment replays standalone. Version-1
//! segments (22-byte header, no codec byte, raw payloads) written before
//! compression existed still replay; an *unknown* version or codec byte
//! is loud, never guessed at.
//!
//! # Corruption contract
//!
//! A short frame header, a payload extending past end-of-file, or a CRC
//! mismatch in the **last** segment is a torn tail — exactly what a crash
//! mid-append leaves behind. Replay stops at the longest valid prefix and
//! truncates the file there, because nothing past that point was ever
//! acknowledged (acks follow the `fsync`). The same damage in any earlier
//! segment, a bad header, an unknown codec, or a CRC-valid but
//! undecodable payload is loud ([`HdcError::Storage`]): those bytes were
//! once readable, so losing them silently would drop acknowledged state.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use hdc_core::HdcError;

use crate::codec::{be_u16, be_u32, be_u64};
use crate::compress::{self, CodecDict};
use crate::record::{crc32, WalRecord};
use crate::{SyncPolicy, WalCodec, WalConfig};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"HDCW";
/// Version tag of the segment layout (bumped on layout changes; version 1
/// had no codec byte and is still readable).
pub const SEGMENT_VERSION: u16 = 2;
/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

const SEGMENT_HEADER_LEN_V1: u64 = 22;
const SEGMENT_HEADER_LEN: u64 = 23;
const FRAME_HEADER_LEN: usize = 8;

/// Header codec byte: plain [`WalRecord`] frame payloads.
const HEADER_CODEC_RAW: u8 = 0;
/// Header codec byte: per-record adaptively compressed payloads.
const HEADER_CODEC_TAGGED: u8 = 1;

fn codec_byte(codec: WalCodec) -> u8 {
    match codec {
        WalCodec::Raw => HEADER_CODEC_RAW,
        WalCodec::Adaptive => HEADER_CODEC_TAGGED,
    }
}

pub(crate) fn storage(context: &str, error: impl std::fmt::Display) -> HdcError {
    HdcError::Storage(format!("{context}: {error}"))
}

/// The segment file name carrying the records starting at `first_seq`.
fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:016x}.log")
}

fn segment_header(first_seq: u64, spec_digest: u64, codec: u8) -> Vec<u8> {
    let mut buf = Vec::with_capacity(SEGMENT_HEADER_LEN as usize);
    buf.extend_from_slice(&SEGMENT_MAGIC);
    buf.extend_from_slice(&SEGMENT_VERSION.to_be_bytes());
    buf.extend_from_slice(&first_seq.to_be_bytes());
    buf.extend_from_slice(&spec_digest.to_be_bytes());
    buf.push(codec);
    buf
}

/// Lists `dir`'s segment files sorted by their `first_seq` (parsed from the
/// file name; files that don't match the pattern are ignored).
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, HdcError> {
    let mut segments = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| storage(&format!("listing {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| storage(&format!("listing {}", dir.display()), e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(hex) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
        else {
            continue;
        };
        let Ok(first_seq) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        segments.push((first_seq, entry.path()));
    }
    segments.sort_unstable_by_key(|&(first_seq, _)| first_seq);
    Ok(segments)
}

/// What scanning one segment found.
struct SegmentScan {
    records: Vec<(u64, WalRecord)>,
    /// Byte length of the longest valid prefix (where a torn tail, if any,
    /// begins).
    valid_len: u64,
    /// Sequence number one past the last frame in the valid prefix.
    next_seq: u64,
    /// `Some(reason)` if the bytes past `valid_len` are damaged.
    torn: Option<String>,
    /// The header's negotiated codec byte.
    codec: u8,
    /// Decoder dictionary state after the valid prefix — what the append
    /// half must resume from when this is the active segment.
    dict: CodecDict,
}

/// Scans one segment's bytes, validating the header against the expected
/// `first_seq` (from the file name) and `spec_digest`. Every frame in the
/// valid prefix is decoded (compressed records chain through the codec
/// dictionary), but only records with sequence `>= from_seq` are
/// collected. Frame-level damage stops the scan and is reported via
/// `torn`; header damage — including an unknown version or codec byte —
/// and undecodable CRC-valid payloads are immediate errors.
fn scan_segment(
    bytes: &[u8],
    path: &Path,
    first_seq: u64,
    spec_digest: u64,
    from_seq: u64,
) -> Result<SegmentScan, HdcError> {
    if bytes.len() < SEGMENT_HEADER_LEN_V1 as usize {
        return Err(HdcError::Storage(format!(
            "{}: truncated segment header",
            path.display()
        )));
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(HdcError::Storage(format!(
            "{}: bad magic; not a WAL segment",
            path.display()
        )));
    }
    let truncated = || HdcError::Storage(format!("{}: truncated segment header", path.display()));
    let version = be_u16(bytes, 4).ok_or_else(truncated)?;
    let header_len = match version {
        1 => SEGMENT_HEADER_LEN_V1 as usize,
        2 => SEGMENT_HEADER_LEN as usize,
        other => {
            return Err(HdcError::Storage(format!(
                "{}: unsupported segment version {other} (this build reads 1 and 2)",
                path.display()
            )))
        }
    };
    if bytes.len() < header_len {
        return Err(HdcError::Storage(format!(
            "{}: truncated segment header",
            path.display()
        )));
    }
    let found_seq = be_u64(bytes, 6).ok_or_else(truncated)?;
    let found_digest = be_u64(bytes, 14).ok_or_else(truncated)?;
    if found_digest != spec_digest {
        return Err(HdcError::Storage(format!(
            "{}: spec digest mismatch (log {found_digest:016x}, model {spec_digest:016x}) — \
             this log belongs to a different pipeline spec",
            path.display()
        )));
    }
    if found_seq != first_seq {
        return Err(HdcError::Storage(format!(
            "{}: bad segment header (sequence mismatch)",
            path.display()
        )));
    }
    let codec = if version == 1 {
        HEADER_CODEC_RAW
    } else {
        bytes[22]
    };
    if !matches!(codec, HEADER_CODEC_RAW | HEADER_CODEC_TAGGED) {
        return Err(HdcError::Storage(format!(
            "{}: unknown WAL codec {codec} in the segment header — \
             written by a newer build; refusing to guess at acknowledged records",
            path.display()
        )));
    }
    let mut records = Vec::new();
    let mut dict = CodecDict::new();
    let mut at = header_len;
    let mut seq = first_seq;
    let torn = loop {
        if at == bytes.len() {
            break None;
        }
        if bytes.len() - at < FRAME_HEADER_LEN {
            break Some("short frame header".to_string());
        }
        let (Some(len), Some(crc)) = (be_u32(bytes, at), be_u32(bytes, at + 4)) else {
            break Some("short frame header".to_string());
        };
        let len = len as usize;
        if bytes.len() - at - FRAME_HEADER_LEN < len {
            break Some(format!("frame of {len} bytes extends past end of file"));
        }
        let payload = &bytes[at + FRAME_HEADER_LEN..at + FRAME_HEADER_LEN + len];
        if crc32(payload) != crc {
            break Some(format!("CRC mismatch at record {seq}"));
        }
        // Decode every frame — compressed records chain through the
        // dictionary, so even records the caller skips must be walked.
        let record = match codec {
            HEADER_CODEC_RAW => WalRecord::decode(payload),
            _ => compress::decode_tagged(payload, &mut dict),
        }
        .map_err(|e| {
            HdcError::Storage(format!(
                "{}: record {seq} is CRC-valid but undecodable: {e}",
                path.display()
            ))
        })?;
        if seq >= from_seq {
            records.push((seq, record));
        }
        at += FRAME_HEADER_LEN + len;
        seq += 1;
    };
    Ok(SegmentScan {
        records,
        valid_len: at as u64,
        next_seq: seq,
        torn,
        codec,
        dict,
    })
}

/// The append half of the log: owned by exactly one writer — the serving
/// dispatcher directly, or a [`GroupCommitWal`](crate::GroupCommitWal)
/// flusher on its behalf — which appends records, [`sync`](Wal::sync)s at
/// its flush boundaries, and rotates segments at the configured threshold.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    spec_digest: u64,
    segment_bytes: u64,
    sync_policy: SyncPolicy,
    codec: WalCodec,
    /// The active segment's negotiated codec byte — adopted from the
    /// header when appending into an existing segment, the configured
    /// codec for every fresh one.
    active_codec: u8,
    dict: CodecDict,
    active: File,
    active_len: u64,
    next_seq: u64,
    dirty: bool,
    syncs: u64,
    appended_bytes: u64,
}

impl Wal {
    /// Opens (creating if needed) the log in `dir`, replaying every record
    /// with sequence `>= from_seq` and returning the log positioned for
    /// appending after the last valid record.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure, a spec-digest
    /// mismatch, or corruption anywhere but the last segment's tail (see
    /// the module-level corruption contract).
    pub fn open(
        dir: impl Into<PathBuf>,
        spec_digest: u64,
        config: WalConfig,
        from_seq: u64,
    ) -> Result<(Self, Vec<(u64, WalRecord)>), HdcError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| storage(&format!("creating {}", dir.display()), e))?;
        let mut segments = list_segments(&dir)?;
        // A crash between creating a fresh segment and writing its header
        // leaves a sub-header-length *last* file with no records in it;
        // drop it and append into its predecessor instead. (Anywhere else
        // a short header is loud, like all sealed-segment damage.)
        while let Some((_, path)) = segments.last() {
            let len = std::fs::metadata(path)
                .map_err(|e| storage(&format!("inspecting {}", path.display()), e))?
                .len();
            if len >= SEGMENT_HEADER_LEN_V1 {
                break;
            }
            std::fs::remove_file(path)
                .map_err(|e| storage(&format!("removing {}", path.display()), e))?;
            segments.pop();
        }
        let mut replayed = Vec::new();
        let mut active_meta: Option<(PathBuf, u64, u64, u8, CodecDict)> = None;
        let last = segments.len().checked_sub(1);
        for (index, (first_seq, path)) in segments.iter().enumerate() {
            let bytes = std::fs::read(path)
                .map_err(|e| storage(&format!("reading {}", path.display()), e))?;
            let scan = scan_segment(&bytes, path, *first_seq, spec_digest, from_seq)?;
            let is_last = Some(index) == last;
            if let Some(reason) = &scan.torn {
                if !is_last {
                    return Err(HdcError::Storage(format!(
                        "{}: {reason} in a sealed segment — acknowledged records are damaged; \
                         refusing to recover silently",
                        path.display()
                    )));
                }
                // The torn tail of the last segment is the write the crash
                // interrupted; nothing past the valid prefix was ever
                // acknowledged. Drop it so appends restart cleanly.
                let file = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| storage(&format!("opening {}", path.display()), e))?;
                file.set_len(scan.valid_len)
                    .map_err(|e| storage(&format!("truncating {}", path.display()), e))?;
                file.sync_data()
                    .map_err(|e| storage(&format!("syncing {}", path.display()), e))?;
            }
            replayed.extend(scan.records);
            if is_last {
                active_meta = Some((
                    path.clone(),
                    scan.valid_len,
                    scan.next_seq,
                    scan.codec,
                    scan.dict,
                ));
            }
        }
        let (active, active_len, next_seq, active_codec, dict) = match active_meta {
            Some((path, valid_len, next_seq, codec, dict)) => {
                let active = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| storage(&format!("opening {}", path.display()), e))?;
                (active, valid_len, next_seq, codec, dict)
            }
            None => {
                let first_seq = from_seq;
                let codec = codec_byte(config.codec);
                let path = dir.join(segment_name(first_seq));
                let mut active = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| storage(&format!("creating {}", path.display()), e))?;
                active
                    .write_all(&segment_header(first_seq, spec_digest, codec))
                    .map_err(|e| storage(&format!("writing {}", path.display()), e))?;
                (
                    active,
                    SEGMENT_HEADER_LEN,
                    first_seq,
                    codec,
                    CodecDict::new(),
                )
            }
        };
        Ok((
            Self {
                dir,
                spec_digest,
                segment_bytes: config.segment_bytes.max(SEGMENT_HEADER_LEN + 1),
                sync_policy: config.sync,
                codec: config.codec,
                active_codec,
                dict,
                active,
                active_len,
                next_seq,
                dirty: false,
                syncs: 0,
                appended_bytes: 0,
            },
            replayed,
        ))
    }

    /// The sequence number the next appended record will carry — also the
    /// exclusive upper bound of everything logged so far.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The configured flush policy.
    #[must_use]
    pub fn sync_policy(&self) -> SyncPolicy {
        self.sync_policy
    }

    /// Data `fsync`s issued since open (appends under
    /// [`SyncPolicy::Always`], [`sync`](Self::sync) calls that had work,
    /// segment seals, and group flushes) — the observable flush schedule,
    /// which the group-commit degeneration test pins down.
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Frame bytes appended since open (headers excluded) — what the
    /// compression benches divide by records to get bytes/fit.
    #[must_use]
    pub fn bytes_appended(&self) -> u64 {
        self.appended_bytes
    }

    /// Appends one record, returning its sequence number. Under
    /// [`SyncPolicy::Always`] the record is `fsync`ed before returning;
    /// otherwise it reaches the kernel immediately and the platters at the
    /// next [`sync`](Self::sync) (or the OS's leisure).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, HdcError> {
        self.append_inner(record, matches!(self.sync_policy, SyncPolicy::Always))
    }

    /// Appends one record *without* the [`SyncPolicy::Always`] inline
    /// `fsync` — the group-commit path, where a flusher issues one
    /// `fdatasync` for the whole ticket group before any ack is released.
    /// Rotation still seals the outgoing segment durably.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure.
    pub fn append_deferred(&mut self, record: &WalRecord) -> Result<u64, HdcError> {
        self.append_inner(record, false)
    }

    fn append_inner(&mut self, record: &WalRecord, inline_sync: bool) -> Result<u64, HdcError> {
        let payload = match self.active_codec {
            HEADER_CODEC_RAW => record.encode(),
            _ => compress::encode_tagged(record, &mut self.dict),
        }
        .map_err(|e| storage("encoding WAL record", e))?;
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        self.active
            .write_all(&frame)
            .map_err(|e| storage("appending WAL record", e))?;
        self.active_len += frame.len() as u64;
        self.appended_bytes += frame.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.dirty = true;
        if inline_sync {
            self.active
                .sync_data()
                .map_err(|e| storage("syncing WAL segment", e))?;
            self.syncs += 1;
            self.dirty = false;
        }
        if self.active_len >= self.segment_bytes {
            self.rotate()?;
        }
        Ok(seq)
    }

    /// Flushes appended records to disk — the batch-boundary call under
    /// [`SyncPolicy::EveryBatch`]; a no-op when nothing is pending or the
    /// policy is [`SyncPolicy::Never`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure.
    pub fn sync(&mut self) -> Result<(), HdcError> {
        if self.dirty && !matches!(self.sync_policy, SyncPolicy::Never) {
            self.active
                .sync_data()
                .map_err(|e| storage("syncing WAL segment", e))?;
            self.syncs += 1;
            self.dirty = false;
        }
        Ok(())
    }

    /// First half of a group flush: a duplicated handle to the active
    /// segment plus the sequence the flush will cover, so the `fdatasync`
    /// itself can run **off** the WAL lock (appends proceed while the
    /// platters spin). Pass the cover point back to
    /// [`finish_group_sync`](Self::finish_group_sync) afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] if the handle cannot be duplicated.
    pub fn begin_group_sync(&mut self) -> Result<(File, u64), HdcError> {
        let file = self
            .active
            .try_clone()
            .map_err(|e| storage("duplicating WAL segment handle", e))?;
        Ok((file, self.next_seq))
    }

    /// Second half of a group flush: accounts the `fdatasync` the flusher
    /// just issued. The segment only counts as clean if nothing was
    /// appended past the covered sequence in the meantime.
    pub fn finish_group_sync(&mut self, covered: u64) {
        self.syncs += 1;
        if self.next_seq == covered {
            self.dirty = false;
        }
    }

    /// Seals the active segment and starts a fresh one at the current
    /// sequence.
    fn rotate(&mut self) -> Result<(), HdcError> {
        // Seal durably before moving on, whatever the policy: once a
        // segment is no longer last, replay treats its damage as loud.
        self.active
            .sync_data()
            .map_err(|e| storage("sealing WAL segment", e))?;
        self.syncs += 1;
        self.dirty = false;
        let codec = codec_byte(self.codec);
        let path = self.dir.join(segment_name(self.next_seq));
        let mut active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| storage(&format!("creating {}", path.display()), e))?;
        active
            .write_all(&segment_header(self.next_seq, self.spec_digest, codec))
            .map_err(|e| storage(&format!("writing {}", path.display()), e))?;
        self.active = active;
        self.active_len = SEGMENT_HEADER_LEN;
        self.active_codec = codec;
        self.dict.reset();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::BinaryHypervector;
    use rand::{rngs::StdRng, SeedableRng};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdc-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(segment_bytes: u64, sync: SyncPolicy) -> WalConfig {
        WalConfig {
            segment_bytes,
            sync,
            codec: WalCodec::Raw,
        }
    }

    fn tagged(segment_bytes: u64, sync: SyncPolicy) -> WalConfig {
        WalConfig {
            segment_bytes,
            sync,
            codec: WalCodec::Adaptive,
        }
    }

    fn sample_records(n: usize) -> Vec<WalRecord> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| WalRecord::Fit {
                hv: BinaryHypervector::random(256, &mut rng),
                label: (i % 3) as u64,
            })
            .collect()
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tmp_dir("roundtrip");
        let records = sample_records(10);
        {
            let (mut wal, replayed) =
                Wal::open(&dir, 9, cfg(512, SyncPolicy::EveryBatch), 0).unwrap();
            assert!(replayed.is_empty());
            for (i, record) in records.iter().enumerate() {
                assert_eq!(wal.append(record).unwrap(), i as u64);
            }
            wal.sync().unwrap();
        }
        // 512-byte segments force several rotations for 10 records of ~300
        // bytes; replay must stitch them back in order.
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        let (wal, replayed) = Wal::open(&dir, 9, cfg(512, SyncPolicy::EveryBatch), 0).unwrap();
        assert_eq!(wal.next_seq(), 10);
        assert_eq!(
            replayed,
            records
                .iter()
                .enumerate()
                .map(|(i, r)| (i as u64, r.clone()))
                .collect::<Vec<_>>()
        );
        // Replay from the middle skips the snapshotted prefix.
        let (_, tail) = Wal::open(&dir, 9, cfg(512, SyncPolicy::EveryBatch), 7).unwrap();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].0, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compressed_segments_replay_bit_identically() {
        let dir = tmp_dir("tagged");
        // A level walk (delta-compressible) mixed with dense random
        // records (kept raw inside the tagged segment) and item ops.
        let mut rng = StdRng::seed_from_u64(2);
        let mut level = BinaryHypervector::random(512, &mut rng);
        let mut records = Vec::new();
        for i in 0..24u64 {
            level.flip_positions(&[(i as usize * 7) % 512, (i as usize * 13) % 512]);
            records.push(WalRecord::Fit {
                hv: level.clone(),
                label: i % 3,
            });
            if i % 6 == 0 {
                records.push(WalRecord::Insert {
                    key: format!("item-{i}"),
                    hv: BinaryHypervector::random(512, &mut rng),
                });
            }
        }
        records.push(WalRecord::Remove {
            key: "item-0".into(),
        });
        {
            let (mut wal, _) = Wal::open(&dir, 9, tagged(700, SyncPolicy::EveryBatch), 0).unwrap();
            for record in &records {
                wal.append(record).unwrap();
            }
            wal.sync().unwrap();
        }
        // Rotation at 700 bytes means delta chains restart per segment
        // and replay crosses segment boundaries.
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        let (wal, replayed) = Wal::open(&dir, 9, tagged(700, SyncPolicy::EveryBatch), 0).unwrap();
        assert_eq!(wal.next_seq(), records.len() as u64);
        assert_eq!(
            replayed.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            records
        );
        // Replay from the middle still decodes bit-identically: the delta
        // chain is walked from each segment's start regardless.
        let from = records.len() as u64 / 2;
        let (_, tail) = Wal::open(&dir, 9, tagged(700, SyncPolicy::EveryBatch), from).unwrap();
        assert_eq!(
            tail.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            records[from as usize..]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopening_with_a_different_codec_adopts_the_active_segment() {
        let dir = tmp_dir("mixed-codec");
        let records = sample_records(6);
        {
            let (mut wal, _) = Wal::open(&dir, 9, cfg(u64::MAX, SyncPolicy::Never), 0).unwrap();
            for record in &records[..3] {
                wal.append(record).unwrap();
            }
        }
        {
            // Reopened with compression configured: the active raw segment
            // keeps its negotiated codec, so the file stays self-consistent.
            let (mut wal, replayed) =
                Wal::open(&dir, 9, tagged(u64::MAX, SyncPolicy::Never), 0).unwrap();
            assert_eq!(replayed.len(), 3);
            for record in &records[3..] {
                wal.append(record).unwrap();
            }
        }
        let (_, replayed) = Wal::open(&dir, 9, tagged(u64::MAX, SyncPolicy::Never), 0).unwrap();
        assert_eq!(
            replayed.into_iter().map(|(_, r)| r).collect::<Vec<_>>(),
            records
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_segments_still_replay() {
        let dir = tmp_dir("v1");
        let records = sample_records(3);
        // Hand-write a version-1 segment: 22-byte header, raw payloads.
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&1u16.to_be_bytes());
        bytes.extend_from_slice(&0u64.to_be_bytes());
        bytes.extend_from_slice(&9u64.to_be_bytes());
        for record in &records {
            let payload = record.encode().unwrap();
            bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            bytes.extend_from_slice(&crc32(&payload).to_be_bytes());
            bytes.extend_from_slice(&payload);
        }
        std::fs::write(dir.join(segment_name(0)), &bytes).unwrap();
        let (mut wal, replayed) =
            Wal::open(&dir, 9, tagged(u64::MAX, SyncPolicy::Never), 0).unwrap();
        assert_eq!(
            replayed.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            records
        );
        // Appends adopt the v1 segment's raw codec.
        wal.append(&records[0]).unwrap();
        let (_, replayed) = Wal::open(&dir, 9, tagged(u64::MAX, SyncPolicy::Never), 0).unwrap();
        assert_eq!(replayed.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_header_codec_is_loud() {
        let dir = tmp_dir("badcodec");
        {
            let (mut wal, _) = Wal::open(&dir, 9, tagged(u64::MAX, SyncPolicy::Never), 0).unwrap();
            wal.append(&sample_records(1)[0]).unwrap();
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[22] = 99; // an unassigned codec byte
        std::fs::write(&path, &bytes).unwrap();
        let err = Wal::open(&dir, 9, tagged(u64::MAX, SyncPolicy::Never), 0).unwrap_err();
        let HdcError::Storage(reason) = err else {
            panic!("expected a storage error")
        };
        assert!(reason.contains("unknown WAL codec"), "{reason}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_in_last_segment_is_truncated() {
        let dir = tmp_dir("torn");
        let records = sample_records(3);
        {
            let (mut wal, _) = Wal::open(&dir, 9, cfg(u64::MAX, SyncPolicy::Never), 0).unwrap();
            for record in &records {
                wal.append(record).unwrap();
            }
        }
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (mut wal, replayed) = Wal::open(&dir, 9, cfg(u64::MAX, SyncPolicy::Never), 0).unwrap();
        assert_eq!(replayed.len(), 2, "the torn third record is dropped");
        assert_eq!(wal.next_seq(), 2);
        // Appending after truncation reuses the freed sequence.
        assert_eq!(wal.append(&records[2]).unwrap(), 2);
        let (_, replayed) = Wal::open(&dir, 9, cfg(u64::MAX, SyncPolicy::Never), 0).unwrap();
        assert_eq!(replayed.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_sealed_segment_is_loud() {
        let dir = tmp_dir("sealed");
        {
            let (mut wal, _) = Wal::open(&dir, 9, cfg(512, SyncPolicy::Never), 0).unwrap();
            for record in sample_records(10) {
                wal.append(&record).unwrap();
            }
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1);
        let (_, first) = &segments[0];
        let mut bytes = std::fs::read(first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(first, &bytes).unwrap();
        let err = Wal::open(&dir, 9, cfg(512, SyncPolicy::Never), 0).unwrap_err();
        assert!(matches!(err, HdcError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_digest_mismatch_is_loud() {
        let dir = tmp_dir("digest");
        {
            let (mut wal, _) = Wal::open(&dir, 9, cfg(u64::MAX, SyncPolicy::Never), 0).unwrap();
            wal.append(&sample_records(1)[0]).unwrap();
        }
        let err = Wal::open(&dir, 10, cfg(u64::MAX, SyncPolicy::Never), 0).unwrap_err();
        let HdcError::Storage(reason) = err else {
            panic!("expected a storage error")
        };
        assert!(reason.contains("spec digest mismatch"), "{reason}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
