//! Binary encode/decode primitives for the store's durable formats — the
//! same conventions as the serving crate's codec (big-endian integers,
//! length-prefixed UTF-8 strings, `u32`-dimension hypervectors with
//! clean-tail validation), duplicated here because the helpers are private
//! to each crate: the on-disk formats are the contract, the helpers are
//! not.

use std::io;

use hdc_core::BinaryHypervector;

pub(crate) fn put_u32(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_be_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_be_bytes());
}

pub(crate) fn put_f64(buf: &mut Vec<u8>, value: f64) {
    buf.extend_from_slice(&value.to_be_bytes());
}

/// Writes a string with a `u64` length prefix — keys are unbounded in the
/// item-memory API, so the log format must carry any length the snapshot
/// format carries.
pub(crate) fn put_long_string(buf: &mut Vec<u8>, value: &str) {
    put_u64(buf, value.len() as u64);
    buf.extend_from_slice(value.as_bytes());
}

pub(crate) fn put_hv(buf: &mut Vec<u8>, hv: &BinaryHypervector) -> io::Result<()> {
    let dim = u32::try_from(hv.dim()).map_err(|_| invalid("dimension exceeds u32"))?;
    put_u32(buf, dim);
    for word in hv.as_words() {
        put_u64(buf, *word);
    }
    Ok(())
}

/// Writes an LEB128 varint — the compressed record codec's integer
/// format, where gap-encoded bit indices are usually one byte.
pub(crate) fn put_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

pub(crate) fn invalid(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Reads a big-endian `u16` at byte offset `at`, or `None` when the
/// slice ends first — the panic-free form the durability paths use
/// instead of `bytes[a..b].try_into().expect(..)`, which would turn a
/// truncated or corrupt file into a process abort instead of an
/// [`HdcError`](hdc_core::HdcError).
pub(crate) fn be_u16(bytes: &[u8], at: usize) -> Option<u16> {
    let arr: [u8; 2] = bytes.get(at..at.checked_add(2)?)?.try_into().ok()?;
    Some(u16::from_be_bytes(arr))
}

/// Reads a big-endian `u32` at byte offset `at` (see [`be_u16`]).
pub(crate) fn be_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let arr: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_be_bytes(arr))
}

/// Reads a big-endian `u64` at byte offset `at` (see [`be_u16`]).
pub(crate) fn be_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let arr: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_be_bytes(arr))
}

/// A bounds-checked reader over one decoded body: every `take` validates
/// the remaining length, and [`finish`](Cursor::finish) rejects trailing
/// garbage so a well-formed prefix cannot smuggle extra bytes.
pub(crate) struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(body: &'a [u8]) -> Self {
        Self { body, at: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.body.len())
            .ok_or_else(|| invalid("truncated frame body"))?;
        let slice = &self.body[self.at..end];
        self.at = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub(crate) fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Bytes left unread — the bound every length-driven preallocation
    /// must respect, so a corrupt declared count cannot trigger a giant
    /// reservation before the first failed read.
    pub(crate) fn remaining(&self) -> usize {
        self.body.len() - self.at
    }

    /// Reads an LEB128 varint (see [`put_varint`]); rejects encodings
    /// longer than a `u64` can hold.
    pub(crate) fn varint(&mut self) -> io::Result<u64> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            value |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(invalid("varint exceeds u64"))
    }

    /// Reads a `u64`-length-prefixed string (see [`put_long_string`]).
    pub(crate) fn long_string(&mut self) -> io::Result<String> {
        let len = self.u64()?;
        let len = usize::try_from(len).map_err(|_| invalid("string length exceeds usize"))?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| invalid("key is not valid UTF-8"))
    }

    pub(crate) fn hv(&mut self) -> io::Result<BinaryHypervector> {
        let dim = self.u32()? as usize;
        if dim == 0 {
            return Err(invalid("hypervector dimension 0"));
        }
        let words = dim.div_ceil(64);
        // Capacity clamped by the bytes actually present: a corrupt dim
        // fails on the first missing word instead of reserving gigabytes.
        let mut packed = Vec::with_capacity(words.min(self.remaining() / 8 + 1));
        for _ in 0..words {
            packed.push(self.u64()?);
        }
        let rem = dim % 64;
        if rem != 0 && packed.last().is_some_and(|&last| last >> rem != 0) {
            return Err(invalid("bits set beyond the hypervector dimension"));
        }
        Ok(BinaryHypervector::from_words(dim, packed))
    }

    pub(crate) fn finish(self) -> io::Result<()> {
        if self.at != self.body.len() {
            return Err(invalid("trailing bytes after frame body"));
        }
        Ok(())
    }
}
