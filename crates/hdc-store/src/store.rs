//! The recovery orchestrator over one durability directory: `MANIFEST` +
//! installed snapshot blobs + WAL segments.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/MANIFEST              which snapshot is current, and from which
//!                             log sequence replay must start
//! <dir>/snap-{upto:016x}.hdcs one installed snapshot blob (opaque payload,
//!                             CRC-framed here)
//! <dir>/wal-{seq:016x}.log    WAL segments (see `wal`)
//! <dir>/items/                the paged item memory, when enabled
//! ```
//!
//! `MANIFEST` is `"HDCM"  u16 version  u64 spec_digest  u64 upto
//! u16-len snapshot-file-name  u32 crc32(everything before the crc)`,
//! written via tmp+rename so it is atomically either the old or the new
//! manifest. A snapshot blob is `"HDSN"  u16 version  u64 upto
//! u32 crc32(payload)  u64 payload-len  payload`.
//!
//! [`Store::open`] returns the [`Recovery`] (snapshot payload + records to
//! replay) and splits into the [`Wal`] append half (owned by the serving
//! dispatcher) and the [`SnapshotInstaller`] (owned by a background
//! snapshotter thread): installation touches only sealed segments and
//! atomically-replaced files, so the two halves need no lock between them.

use std::path::{Path, PathBuf};

use hdc_core::HdcError;

use crate::record::{crc32, WalRecord};
use crate::wal::{list_segments, storage, Wal};
use crate::WalConfig;

/// Magic bytes opening the `MANIFEST` file.
pub const MANIFEST_MAGIC: [u8; 4] = *b"HDCM";
/// Magic bytes opening an installed snapshot blob.
pub const SNAPSHOT_BLOB_MAGIC: [u8; 4] = *b"HDSN";

const MANIFEST_VERSION: u16 = 1;
const SNAPSHOT_BLOB_VERSION: u16 = 1;

fn snapshot_name(upto: u64) -> String {
    format!("snap-{upto:016x}.hdcs")
}

/// What [`Store::open`] recovered: the newest installed snapshot's payload
/// (if any) and every record logged at or after the point that snapshot
/// covers, in log order. Applying the snapshot and then replaying the
/// records reproduces the last-acknowledged state bit-identically.
#[derive(Debug)]
pub struct Recovery {
    /// The installed snapshot's opaque payload, if one was installed.
    pub snapshot: Option<Vec<u8>>,
    /// Records to replay on top, in log order (sequence numbers are
    /// contiguous from the snapshot's cover point).
    pub records: Vec<WalRecord>,
}

/// The durability store over one directory, opened at runtime spawn and
/// split into its two independently-owned halves with
/// [`into_parts`](Store::into_parts).
#[derive(Debug)]
pub struct Store {
    wal: Wal,
    installer: SnapshotInstaller,
}

impl Store {
    /// Opens (creating if needed) the store in `dir`: reads the manifest,
    /// loads and CRC-checks the current snapshot blob, and replays the WAL
    /// from the snapshot's cover point.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure, a manifest or
    /// snapshot blob that fails its CRC, a spec-digest mismatch, or WAL
    /// corruption outside the last segment's tail.
    pub fn open(
        dir: impl Into<PathBuf>,
        spec_digest: u64,
        config: WalConfig,
    ) -> Result<(Self, Recovery), HdcError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| storage(&format!("creating {}", dir.display()), e))?;
        let manifest = read_manifest(&dir, spec_digest)?;
        let (snapshot, from_seq) = match manifest {
            Some((name, upto)) => {
                let payload = read_snapshot_blob(&dir.join(&name), upto)?;
                (Some(payload), upto)
            }
            None => (None, 0),
        };
        let (wal, replayed) = Wal::open(&dir, spec_digest, config, from_seq)?;
        let records = replayed.into_iter().map(|(_, record)| record).collect();
        Ok((
            Self {
                wal,
                installer: SnapshotInstaller { dir, spec_digest },
            },
            Recovery { snapshot, records },
        ))
    }

    /// Splits the store into the dispatcher-owned append half and the
    /// snapshotter-owned install half.
    #[must_use]
    pub fn into_parts(self) -> (Wal, SnapshotInstaller) {
        (self.wal, self.installer)
    }
}

/// The snapshot-installation half of a [`Store`]: writes snapshot blobs
/// and the manifest atomically (tmp+rename, `fsync`ed — snapshots are rare
/// enough that they always earn a real flush), then garbage-collects the
/// WAL segments and older snapshots the new one retires. Runs on a
/// background thread; never touches the active segment the [`Wal`] half is
/// appending to.
#[derive(Debug)]
pub struct SnapshotInstaller {
    dir: PathBuf,
    spec_digest: u64,
}

impl SnapshotInstaller {
    /// Installs `payload` as the snapshot covering every record below
    /// `upto`: blob write, manifest swap, then GC of retired segments and
    /// superseded snapshots.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::Storage`] on I/O failure. GC failures after a
    /// successful manifest swap are not errors (the next install retries
    /// them); the snapshot itself is already durable.
    pub fn install(&self, payload: &[u8], upto: u64) -> Result<(), HdcError> {
        let name = snapshot_name(upto);
        let path = self.dir.join(&name);
        write_snapshot_blob(&path, payload, upto)?;
        self.write_manifest(&name, upto)?;
        // Both GC passes are best-effort by design: the manifest no longer
        // references any of these files, so a failure here only leaks disk
        // until the next install.
        let _ = self.collect_segments(upto);
        let _ = self.collect_snapshots(upto);
        Ok(())
    }

    fn write_manifest(&self, snapshot: &str, upto: u64) -> Result<(), HdcError> {
        let mut body = Vec::with_capacity(32 + snapshot.len());
        body.extend_from_slice(&MANIFEST_MAGIC);
        body.extend_from_slice(&MANIFEST_VERSION.to_be_bytes());
        body.extend_from_slice(&self.spec_digest.to_be_bytes());
        body.extend_from_slice(&upto.to_be_bytes());
        let name_len = u16::try_from(snapshot.len())
            .map_err(|_| HdcError::Storage("snapshot file name exceeds u16 bytes".into()))?;
        body.extend_from_slice(&name_len.to_be_bytes());
        body.extend_from_slice(snapshot.as_bytes());
        let crc = crc32(&body);
        body.extend_from_slice(&crc.to_be_bytes());
        atomic_write(&self.dir.join("MANIFEST"), &body)
    }

    /// Deletes every sealed segment whose records all precede `upto` — a
    /// segment is retired when its *successor* starts at or below `upto`,
    /// which structurally protects the last (active) segment.
    fn collect_segments(&self, upto: u64) -> Result<(), HdcError> {
        let segments = list_segments(&self.dir)?;
        for window in segments.windows(2) {
            let (_, path) = &window[0];
            let (successor_first, _) = window[1];
            if successor_first <= upto {
                std::fs::remove_file(path)
                    .map_err(|e| storage(&format!("removing {}", path.display()), e))?;
            }
        }
        Ok(())
    }

    fn collect_snapshots(&self, upto: u64) -> Result<(), HdcError> {
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| storage(&format!("listing {}", self.dir.display()), e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name
                .strip_prefix("snap-")
                .and_then(|rest| rest.strip_suffix(".hdcs"))
            else {
                continue;
            };
            if u64::from_str_radix(hex, 16).is_ok_and(|covered| covered < upto) {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

/// tmp + write + `fsync` + rename: the file at `path` is atomically either
/// its old content or `bytes`, never a mix.
fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), HdcError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let write = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        file.sync_data()
    };
    write().map_err(|e| storage(&format!("writing {}", tmp.display()), e))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| storage(&format!("renaming into {}", path.display()), e))
}

fn write_snapshot_blob(path: &Path, payload: &[u8], upto: u64) -> Result<(), HdcError> {
    let mut buf = Vec::with_capacity(26 + payload.len());
    buf.extend_from_slice(&SNAPSHOT_BLOB_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_BLOB_VERSION.to_be_bytes());
    buf.extend_from_slice(&upto.to_be_bytes());
    buf.extend_from_slice(&crc32(payload).to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    buf.extend_from_slice(payload);
    atomic_write(path, &buf)
}

fn read_snapshot_blob(path: &Path, expected_upto: u64) -> Result<Vec<u8>, HdcError> {
    let bytes =
        std::fs::read(path).map_err(|e| storage(&format!("reading {}", path.display()), e))?;
    let fail = |reason: &str| HdcError::Storage(format!("{}: {reason}", path.display()));
    if bytes.len() < 26 {
        return Err(fail("truncated snapshot blob header"));
    }
    if bytes[..4] != SNAPSHOT_BLOB_MAGIC {
        return Err(fail("bad magic; not a snapshot blob"));
    }
    if bytes[4..6] != SNAPSHOT_BLOB_VERSION.to_be_bytes() {
        return Err(fail("unsupported snapshot blob version"));
    }
    let upto = u64::from_be_bytes(bytes[6..14].try_into().expect("8 bytes"));
    if upto != expected_upto {
        return Err(fail(
            "snapshot blob does not match the manifest's cover point",
        ));
    }
    let crc = u32::from_be_bytes(bytes[14..18].try_into().expect("4 bytes"));
    let len = u64::from_be_bytes(bytes[18..26].try_into().expect("8 bytes"));
    let payload = &bytes[26..];
    if len != payload.len() as u64 {
        return Err(fail("truncated snapshot blob payload"));
    }
    if crc32(payload) != crc {
        return Err(fail(
            "snapshot blob fails its CRC — refusing to restore from damaged state",
        ));
    }
    Ok(payload.to_vec())
}

/// Reads and validates the manifest; `Ok(None)` when none exists yet.
fn read_manifest(dir: &Path, spec_digest: u64) -> Result<Option<(String, u64)>, HdcError> {
    let path = dir.join("MANIFEST");
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(error) if error.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(error) => return Err(storage(&format!("reading {}", path.display()), error)),
    };
    let fail = |reason: &str| HdcError::Storage(format!("{}: {reason}", path.display()));
    if bytes.len() < 28 {
        return Err(fail("truncated manifest"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_be_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != crc {
        return Err(fail("manifest fails its CRC"));
    }
    if body[..4] != MANIFEST_MAGIC {
        return Err(fail("bad magic; not a manifest"));
    }
    if body[4..6] != MANIFEST_VERSION.to_be_bytes() {
        return Err(fail("unsupported manifest version"));
    }
    let found_digest = u64::from_be_bytes(body[6..14].try_into().expect("8 bytes"));
    if found_digest != spec_digest {
        return Err(fail(&format!(
            "spec digest mismatch (manifest {found_digest:016x}, model {spec_digest:016x}) — \
             this store belongs to a different pipeline spec"
        )));
    }
    let upto = u64::from_be_bytes(body[14..22].try_into().expect("8 bytes"));
    let name_len = u16::from_be_bytes(body[22..24].try_into().expect("2 bytes")) as usize;
    if body.len() != 24 + name_len {
        return Err(fail("manifest length disagrees with its name field"));
    }
    let name = std::str::from_utf8(&body[24..])
        .map_err(|_| fail("snapshot file name is not valid UTF-8"))?;
    if name.contains(['/', '\\']) || name.contains("..") {
        return Err(fail("snapshot file name escapes the store directory"));
    }
    Ok(Some((name.to_string(), upto)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SyncPolicy, WalCodec};
    use hdc_core::BinaryHypervector;
    use rand::{rngs::StdRng, SeedableRng};

    fn small() -> WalConfig {
        WalConfig {
            segment_bytes: 256,
            sync: SyncPolicy::EveryBatch,
            codec: WalCodec::Raw,
        }
    }

    fn unbounded() -> WalConfig {
        WalConfig {
            segment_bytes: u64::MAX,
            sync: SyncPolicy::Never,
            codec: WalCodec::Raw,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdc-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fit(seed: u64, label: u64) -> WalRecord {
        let mut rng = StdRng::seed_from_u64(seed);
        WalRecord::Fit {
            hv: BinaryHypervector::random(128, &mut rng),
            label,
        }
    }

    #[test]
    fn snapshot_install_cuts_replay_and_collects_segments() {
        let dir = tmp_dir("install");
        let (store, recovery) = Store::open(&dir, 7, small()).unwrap();
        assert!(recovery.snapshot.is_none());
        assert!(recovery.records.is_empty());
        let (mut wal, installer) = store.into_parts();
        for i in 0..12 {
            wal.append(&fit(i, i)).unwrap();
        }
        wal.sync().unwrap();
        let segments_before = list_segments(&dir).unwrap().len();
        assert!(segments_before > 1, "tiny threshold forces rotation");
        // Install a snapshot covering the first 8 records.
        installer.install(b"state-after-8", 8).unwrap();
        assert!(list_segments(&dir).unwrap().len() < segments_before);

        let (_, recovery) = Store::open(&dir, 7, small()).unwrap();
        assert_eq!(recovery.snapshot.as_deref(), Some(&b"state-after-8"[..]));
        let labels: Vec<u64> = recovery
            .records
            .iter()
            .map(|r| match r {
                WalRecord::Fit { label, .. } => *label,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(labels, vec![8, 9, 10, 11]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newer_snapshot_supersedes_older() {
        let dir = tmp_dir("supersede");
        let (store, _) = Store::open(&dir, 7, unbounded()).unwrap();
        let (mut wal, installer) = store.into_parts();
        for i in 0..4 {
            wal.append(&fit(i, i)).unwrap();
        }
        installer.install(b"at-2", 2).unwrap();
        installer.install(b"at-4", 4).unwrap();
        assert!(!dir.join(snapshot_name(2)).exists(), "old blob collected");
        let (_, recovery) = Store::open(&dir, 7, unbounded()).unwrap();
        assert_eq!(recovery.snapshot.as_deref(), Some(&b"at-4"[..]));
        assert!(recovery.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_snapshot_blob_and_manifest_are_loud() {
        let dir = tmp_dir("damage");
        let (store, _) = Store::open(&dir, 7, unbounded()).unwrap();
        let (mut wal, installer) = store.into_parts();
        wal.append(&fit(0, 0)).unwrap();
        installer.install(b"payload-bytes", 1).unwrap();

        // Flip one payload byte in the blob: CRC failure, loud.
        let blob = dir.join(snapshot_name(1));
        let mut bytes = std::fs::read(&blob).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&blob, &bytes).unwrap();
        let err = Store::open(&dir, 7, unbounded()).unwrap_err();
        assert!(err.to_string().contains("CRC"), "{err}");
        bytes[last] ^= 0x01;
        std::fs::write(&blob, &bytes).unwrap();

        // A manifest with a different spec digest is refused.
        let err = Store::open(&dir, 8, unbounded()).unwrap_err();
        assert!(err.to_string().contains("spec digest mismatch"), "{err}");

        // A truncated manifest is loud, not treated as absent.
        let manifest = dir.join("MANIFEST");
        let bytes = std::fs::read(&manifest).unwrap();
        std::fs::write(&manifest, &bytes[..bytes.len() - 2]).unwrap();
        assert!(Store::open(&dir, 7, unbounded()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
