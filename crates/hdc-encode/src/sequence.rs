use hdc_core::{kernels, ops, BinaryHypervector, HdcError, HvMut, TieBreak};
use rand::Rng;

use crate::scratch::with_bundle_scratch;
use crate::{CategoricalEncoder, Encoder};

/// Order-aware encoder for sequences of symbols (paper §3.1):
/// `φ(w) = ⊕ᵢ Πⁱ φ_R(αᵢ)` — each symbol's random hypervector is permuted by
/// its position and the results are bundled. Also provides binding-based
/// n-gram encoding for sliding-window features.
///
/// # Example
///
/// ```
/// use hdc_encode::SequenceEncoder;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(6);
/// // An alphabet of 26 symbols.
/// let enc = SequenceEncoder::new(26, 10_000, &mut rng)?;
/// let cat = enc.encode(&[2, 0, 19], &mut rng)?; // "cat"
/// let act = enc.encode(&[0, 2, 19], &mut rng)?; // "act"
/// // Same letters, different order → clearly separated encodings (they
/// // still share the final 't', so the distance sits below 0.5).
/// assert!(cat.normalized_hamming(&act) > 0.25);
/// # Ok::<(), hdc_encode::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SequenceEncoder {
    symbols: CategoricalEncoder,
}

impl SequenceEncoder {
    /// Creates a sequence encoder over an alphabet of `n` symbols.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `n == 0` or `dim == 0`.
    pub fn new(n: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        Ok(Self {
            symbols: CategoricalEncoder::new(n, dim, rng)?,
        })
    }

    /// Creates a sequence encoder over an existing symbol encoder.
    #[must_use]
    pub fn from_symbols(symbols: CategoricalEncoder) -> Self {
        Self { symbols }
    }

    /// The underlying symbol encoder.
    #[must_use]
    pub fn symbols(&self) -> &CategoricalEncoder {
        &self.symbols
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.symbols.dim()
    }

    /// Encodes a sequence of symbol indices by bundling position-permuted
    /// symbol hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty sequence.
    ///
    /// # Panics
    ///
    /// Panics if any symbol index is out of range for the alphabet.
    pub fn encode(
        &self,
        sequence: &[usize],
        rng: &mut impl Rng,
    ) -> Result<BinaryHypervector, HdcError> {
        let hvs: Vec<&BinaryHypervector> =
            sequence.iter().map(|&s| self.symbols.encode(s)).collect();
        ops::bundle_sequence(hvs, rng).ok_or(HdcError::EmptyInput)
    }

    /// Encodes an n-gram by *binding* position-permuted symbol hypervectors
    /// (`⊗ᵢ Πⁱ φ_R(αᵢ)`), the encoding used for sliding windows over longer
    /// streams.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty n-gram.
    ///
    /// # Panics
    ///
    /// Panics if any symbol index is out of range for the alphabet.
    pub fn encode_ngram(&self, ngram: &[usize]) -> Result<BinaryHypervector, HdcError> {
        let hvs: Vec<&BinaryHypervector> = ngram.iter().map(|&s| self.symbols.encode(s)).collect();
        ops::bind_sequence(hvs).ok_or(HdcError::EmptyInput)
    }

    /// Encodes a long stream as the bundle of all its `n`-grams — a common
    /// HDC text/biosignal pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] if the stream is shorter than `n` or
    /// `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics if any symbol index is out of range for the alphabet.
    pub fn encode_ngram_stream(
        &self,
        stream: &[usize],
        n: usize,
        rng: &mut impl Rng,
    ) -> Result<BinaryHypervector, HdcError> {
        if n == 0 || stream.len() < n {
            return Err(HdcError::EmptyInput);
        }
        let grams: Vec<BinaryHypervector> = stream
            .windows(n)
            .map(|w| self.encode_ngram(w).expect("window is non-empty"))
            .collect();
        ops::bundle(grams.iter(), rng).ok_or(HdcError::EmptyInput)
    }
}

/// The trait form of [`encode`](SequenceEncoder::encode) with the
/// deterministic [`TieBreak::Alternate`] policy instead of a caller RNG, so
/// batched and per-sample encodings agree bit for bit.
impl Encoder<[usize]> for SequenceEncoder {
    fn dim(&self) -> usize {
        self.symbols.dim()
    }

    /// Allocation-free: each symbol hypervector is rotated into a reusable
    /// per-thread word buffer (`kernels::permute_into`), accumulated into
    /// reusable majority counters, and the vote is resolved straight into
    /// the output row.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or contains an out-of-range symbol.
    fn encode_into(&self, input: &[usize], mut out: HvMut<'_>) {
        assert!(!input.is_empty(), "cannot encode an empty sequence");
        let dim = self.dim();
        with_bundle_scratch(dim, |counts, permuted| {
            for (i, &symbol) in input.iter().enumerate() {
                kernels::permute_into(
                    self.symbols.encode(symbol).as_words(),
                    dim,
                    i % dim,
                    permuted,
                );
                kernels::accumulate(counts, permuted, 1);
            }
            out.set_majority(counts, TieBreak::Alternate);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5_150)
    }

    #[test]
    fn order_matters() {
        let mut r = rng();
        let enc = SequenceEncoder::new(8, 10_000, &mut r).unwrap();
        let ab = enc.encode(&[0, 1], &mut r).unwrap();
        let ba = enc.encode(&[1, 0], &mut r).unwrap();
        assert!((ab.normalized_hamming(&ba) - 0.5).abs() < 0.1);
    }

    #[test]
    fn shared_prefix_increases_similarity() {
        let mut r = rng();
        let enc = SequenceEncoder::new(8, 10_000, &mut r).unwrap();
        let abc = enc.encode(&[0, 1, 2], &mut r).unwrap();
        let abd = enc.encode(&[0, 1, 3], &mut r).unwrap();
        let xyz = enc.encode(&[5, 6, 7], &mut r).unwrap();
        assert!(abc.normalized_hamming(&abd) < abc.normalized_hamming(&xyz));
    }

    #[test]
    fn empty_sequence_is_error() {
        let mut r = rng();
        let enc = SequenceEncoder::new(4, 256, &mut r).unwrap();
        assert!(matches!(enc.encode(&[], &mut r), Err(HdcError::EmptyInput)));
        assert!(matches!(enc.encode_ngram(&[]), Err(HdcError::EmptyInput)));
        assert!(matches!(
            enc.encode_ngram_stream(&[0, 1], 3, &mut r),
            Err(HdcError::EmptyInput)
        ));
        assert!(matches!(
            enc.encode_ngram_stream(&[0, 1], 0, &mut r),
            Err(HdcError::EmptyInput)
        ));
    }

    #[test]
    fn ngram_is_deterministic_binding() {
        let mut r = rng();
        let enc = SequenceEncoder::new(4, 512, &mut r).unwrap();
        let g1 = enc.encode_ngram(&[0, 1, 2]).unwrap();
        let g2 = enc.encode_ngram(&[0, 1, 2]).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn ngram_stream_similar_to_component_grams() {
        let mut r = rng();
        let enc = SequenceEncoder::new(6, 10_000, &mut r).unwrap();
        let stream = [0usize, 1, 2, 3, 4, 5];
        let encoded = enc.encode_ngram_stream(&stream, 3, &mut r).unwrap();
        let first = enc.encode_ngram(&[0, 1, 2]).unwrap();
        assert!(encoded.normalized_hamming(&first) < 0.45);
    }

    #[test]
    fn from_symbols_reuses_alphabet() {
        let mut r = rng();
        let symbols = CategoricalEncoder::new(4, 256, &mut r).unwrap();
        let first = symbols.encode(0).clone();
        let enc = SequenceEncoder::from_symbols(symbols);
        assert_eq!(enc.symbols().encode(0), &first);
        assert_eq!(enc.dim(), 256);
    }
}
