use hdc_basis::{BasisSet, CircularBasis};
use hdc_core::{BinaryHypervector, HdcError, HvMut};
use rand::Rng;

use crate::table::HvTable;
use crate::{Encoder, Radians};

const TAU: f64 = std::f64::consts::TAU;

/// Encoder for *circular* quantities: angles in `[0, 2π)`, or any periodic
/// value via [`encode_periodic`](Self::encode_periodic) (hour-of-day,
/// day-of-year, orbital phase…).
///
/// The circle is quantized into `m` sectors; values wrap, so `2π − ε` and
/// `ε` land on neighbouring (or the same) hypervectors. Backed by a
/// [`CircularBasis`] by default so hyperspace distances are proportional to
/// angular distances (paper §5).
///
/// # Example
///
/// ```
/// use hdc_encode::AngleEncoder;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let enc = AngleEncoder::with_circular(360, 10_000, 0.0, &mut rng)?;
/// // December 31st and January 1st are neighbours on the yearly circle.
/// let dec31 = enc.encode_periodic(364.0, 365.0);
/// let jan1 = enc.encode_periodic(0.0, 365.0);
/// assert!(dec31.normalized_hamming(jan1) < 0.05);
/// # Ok::<(), hdc_encode::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AngleEncoder {
    table: HvTable,
}

impl AngleEncoder {
    /// Creates an encoder from an existing basis set; sector `i` represents
    /// the angle `2π·i/m`. Any basis works (the experiment harness swaps in
    /// random and level sets to reproduce the paper's comparisons), but only
    /// a circular basis gives wrap-correct distances.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if the basis has fewer than
    /// two members.
    pub fn from_basis<B: BasisSet + ?Sized>(basis: &B) -> Result<Self, HdcError> {
        Ok(Self {
            table: HvTable::from_basis(basis, 2)?,
        })
    }

    /// Creates an encoder backed by a fresh [`CircularBasis`] with `m`
    /// sectors and randomness `r`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `m < 2`, `dim == 0` or `r ∉ [0, 1]`.
    pub fn with_circular(
        m: usize,
        dim: usize,
        r: f64,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        let basis = CircularBasis::with_randomness(m, dim, r, rng)?;
        Self::from_basis(&basis)
    }

    /// Number of sectors `m`.
    #[must_use]
    pub fn sectors(&self) -> usize {
        self.table.len()
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// The sector whose center is nearest to `angle` (radians; wraps).
    #[must_use]
    pub fn index_of(&self, angle: f64) -> usize {
        let m = self.table.len();
        let w = angle.rem_euclid(TAU);
        ((w / TAU * m as f64).round() as usize) % m
    }

    /// The central angle of a sector (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.sectors()`.
    #[must_use]
    pub fn angle_of(&self, index: usize) -> f64 {
        assert!(
            index < self.table.len(),
            "sector {index} out of range for {}",
            self.table.len()
        );
        TAU * index as f64 / self.table.len() as f64
    }

    /// Encodes an angle in radians (wrapped automatically).
    #[must_use]
    pub fn encode(&self, angle: f64) -> &BinaryHypervector {
        self.table.get(self.index_of(angle))
    }

    /// Encodes a value from a periodic domain `[0, period)` — e.g.
    /// `encode_periodic(17.0, 24.0)` for 5 pm.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not finite and positive.
    #[must_use]
    pub fn encode_periodic(&self, value: f64, period: f64) -> &BinaryHypervector {
        assert!(
            period.is_finite() && period > 0.0,
            "period {period} must be positive and finite"
        );
        self.encode(value / period * TAU)
    }

    /// Decodes a (possibly noisy) hypervector to the central angle of the
    /// most similar sector.
    ///
    /// # Panics
    ///
    /// Panics if `hv` has a different dimensionality than the encoder.
    #[must_use]
    pub fn decode(&self, hv: &BinaryHypervector) -> f64 {
        self.angle_of(self.table.nearest(hv))
    }

    /// The stored sector hypervectors, sector 0 (angle 0) first.
    #[must_use]
    pub fn hypervectors(&self) -> &[BinaryHypervector] {
        self.table.hypervectors()
    }
}

/// The trait input is a [`Radians`] angle (wrapped), as for
/// [`encode`](AngleEncoder::encode) — a newtype rather than a bare `f64`
/// so domain values meant for a [`ScalarEncoder`](crate::ScalarEncoder)
/// cannot be fed to an angle encoder by accident; convert periodic domains
/// with [`Radians::periodic`].
impl Encoder<Radians> for AngleEncoder {
    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn encode_into(&self, input: &Radians, mut out: HvMut<'_>) {
        out.copy_from(self.table.get(self.index_of(input.0)).view());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_basis::{LevelBasis, RandomBasis};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31_337)
    }

    #[test]
    fn sector_selection_wraps() {
        let mut r = rng();
        let enc = AngleEncoder::with_circular(8, 512, 0.0, &mut r).unwrap();
        assert_eq!(enc.index_of(0.0), 0);
        assert_eq!(enc.index_of(TAU), 0);
        assert_eq!(enc.index_of(-0.01), 0); // rounds to sector 0 across the wrap
        assert_eq!(enc.index_of(TAU / 8.0), 1);
        // Just below 2π rounds up to sector 8 ≡ 0.
        assert_eq!(enc.index_of(TAU - 0.01), 0);
    }

    #[test]
    fn wrap_distance_is_small() {
        let mut r = rng();
        let enc = AngleEncoder::with_circular(24, 10_000, 0.0, &mut r).unwrap();
        let a = enc.encode_periodic(23.0, 24.0);
        let b = enc.encode_periodic(1.0, 24.0);
        assert!(a.normalized_hamming(b) < 0.15);
        // Opposite times of day are quasi-orthogonal.
        let noon = enc.encode_periodic(12.0, 24.0);
        let midnight = enc.encode_periodic(0.0, 24.0);
        assert!((noon.normalized_hamming(midnight) - 0.5).abs() < 0.06);
    }

    #[test]
    fn decode_round_trip() {
        let mut r = rng();
        let enc = AngleEncoder::with_circular(36, 8_192, 0.0, &mut r).unwrap();
        for i in 0..36 {
            let angle = enc.angle_of(i);
            assert_eq!(enc.decode(enc.encode(angle)), angle);
        }
    }

    #[test]
    fn decode_survives_noise() {
        let mut r = rng();
        let enc = AngleEncoder::with_circular(12, 10_000, 0.0, &mut r).unwrap();
        let hv = enc.encode(2.0).corrupt(0.1, &mut r);
        let decoded = enc.decode(&hv);
        let err = (decoded - enc.angle_of(enc.index_of(2.0))).abs();
        assert!(err < 1.2, "decoded angle off by {err}");
    }

    #[test]
    fn level_backed_encoder_does_not_wrap() {
        // The failure mode the paper fixes: with a level basis, the two ends
        // of the circle are maximally dissimilar.
        let mut r = rng();
        let basis = LevelBasis::new(24, 10_000, &mut r).unwrap();
        let enc = AngleEncoder::from_basis(&basis).unwrap();
        let d = enc
            .encode_periodic(23.0, 24.0)
            .normalized_hamming(enc.encode_periodic(0.0, 24.0));
        // δ(L_23, L_0) = 23/(2·23) = 0.5 under the level construction.
        assert!((d - 0.5).abs() < 0.06, "level basis should not wrap: {d}");
    }

    #[test]
    fn random_backed_encoder_has_no_structure() {
        let mut r = rng();
        let basis = RandomBasis::new(24, 10_000, &mut r).unwrap();
        let enc = AngleEncoder::from_basis(&basis).unwrap();
        let d = enc
            .encode_periodic(11.0, 24.0)
            .normalized_hamming(enc.encode_periodic(12.0, 24.0));
        assert!((d - 0.5).abs() < 0.06);
    }

    #[test]
    fn rejects_tiny_basis() {
        let mut r = rng();
        let basis = RandomBasis::new(1, 64, &mut r).unwrap();
        assert!(matches!(
            AngleEncoder::from_basis(&basis),
            Err(HdcError::InvalidBasisSize { .. })
        ));
    }

    proptest! {
        #[test]
        fn prop_index_in_range(angle in -100.0f64..100.0) {
            let mut r = StdRng::seed_from_u64(0);
            let enc = AngleEncoder::with_circular(10, 256, 0.0, &mut r).unwrap();
            prop_assert!(enc.index_of(angle) < 10);
        }

        #[test]
        fn prop_periodic_equivalence(hour in 0.0f64..24.0) {
            // encode_periodic(v, p) must agree with encode(v/p·2π).
            let mut r = StdRng::seed_from_u64(0);
            let enc = AngleEncoder::with_circular(24, 256, 0.0, &mut r).unwrap();
            prop_assert_eq!(
                enc.encode_periodic(hour, 24.0),
                enc.encode(hour / 24.0 * TAU)
            );
        }
    }
}
