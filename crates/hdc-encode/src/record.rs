use hdc_core::{kernels, BinaryHypervector, HdcError, HvMut, MajorityAccumulator, TieBreak};
use rand::Rng;

use crate::scratch::with_bundle_scratch;
use crate::Encoder;

/// Key–value record encoder: `⊕ᵢ Kᵢ ⊗ Vᵢ` (paper §6.1).
///
/// Each of the `fields` positions owns a fixed random *key* hypervector
/// `Kᵢ`; a record is encoded by binding every field's value hypervector to
/// its key and bundling the results. This is the encoding the paper uses for
/// the 18 kinematic variables of the JIGSAWS samples.
///
/// # Example
///
/// ```
/// use hdc_encode::{RecordEncoder, ScalarEncoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let value_enc = ScalarEncoder::with_levels(0.0, 1.0, 16, 10_000, &mut rng)?;
/// let record = RecordEncoder::new(3, 10_000, &mut rng)?;
///
/// let sample = record.encode(
///     &[value_enc.encode(0.1), value_enc.encode(0.5), value_enc.encode(0.9)],
///     &mut rng,
/// )?;
/// assert_eq!(sample.dim(), 10_000);
/// # Ok::<(), hdc_encode::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RecordEncoder {
    keys: Vec<BinaryHypervector>,
}

impl RecordEncoder {
    /// Creates a record encoder with `fields` random key hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `fields == 0` or
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn new(fields: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::InvalidDimension(dim));
        }
        if fields == 0 {
            return Err(HdcError::InvalidBasisSize {
                requested: 0,
                minimum: 1,
            });
        }
        Ok(Self {
            keys: (0..fields)
                .map(|_| BinaryHypervector::random(dim, rng))
                .collect(),
        })
    }

    /// Number of fields.
    #[must_use]
    pub fn fields(&self) -> usize {
        self.keys.len()
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.keys[0].dim()
    }

    /// The key hypervector of a field.
    ///
    /// # Panics
    ///
    /// Panics if `field >= self.fields()`.
    #[must_use]
    pub fn key(&self, field: usize) -> &BinaryHypervector {
        assert!(
            field < self.keys.len(),
            "field {field} out of range for {}",
            self.keys.len()
        );
        &self.keys[field]
    }

    /// Encodes a full record: `values[i]` is bound to key `i` and the bound
    /// pairs are bundled (majority, random tie-break).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if `values.len()` differs
    /// from the number of fields.
    ///
    /// # Panics
    ///
    /// Panics if any value hypervector has the wrong dimensionality.
    pub fn encode(
        &self,
        values: &[&BinaryHypervector],
        rng: &mut impl Rng,
    ) -> Result<BinaryHypervector, HdcError> {
        if values.len() != self.keys.len() {
            return Err(HdcError::DimensionMismatch {
                expected: self.keys.len(),
                found: values.len(),
            });
        }
        let mut acc = MajorityAccumulator::new(self.dim());
        for (key, value) in self.keys.iter().zip(values) {
            acc.push(&key.bind(value));
        }
        Ok(acc.finalize_random(rng))
    }

    /// Recovers (an approximation of) the value bound to `field` from an
    /// encoded record, exploiting the self-inverse property of binding:
    /// `Kᵢ ⊗ record ≈ Vᵢ + noise`. Clean up against a candidate set to get
    /// the exact value back.
    ///
    /// # Panics
    ///
    /// Panics if `field` is out of range or `record` has the wrong
    /// dimensionality.
    #[must_use]
    pub fn unbind(&self, record: &BinaryHypervector, field: usize) -> BinaryHypervector {
        self.key(field).bind(record)
    }
}

/// The trait form of [`encode`](RecordEncoder::encode): the input is the
/// slice of field values (one per key, in order) and bundling ties resolve
/// with the deterministic [`TieBreak::Alternate`] policy instead of a
/// caller RNG, so batched and per-sample encodings agree bit for bit.
impl Encoder<[BinaryHypervector]> for RecordEncoder {
    fn dim(&self) -> usize {
        self.keys[0].dim()
    }

    /// Allocation-free: each bound pair `Kᵢ ⊗ Vᵢ` is XORed into a reusable
    /// per-thread word buffer, accumulated into reusable majority counters,
    /// and the vote is resolved straight into the output row.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the number of fields or any
    /// value has the wrong dimensionality.
    fn encode_into(&self, input: &[BinaryHypervector], mut out: HvMut<'_>) {
        assert_eq!(
            input.len(),
            self.keys.len(),
            "record arity mismatch: expected {}, found {}",
            self.keys.len(),
            input.len()
        );
        let dim = self.keys[0].dim();
        with_bundle_scratch(dim, |counts, bound| {
            for (key, value) in self.keys.iter().zip(input) {
                assert_eq!(
                    dim,
                    value.dim(),
                    "dimension mismatch: expected {}, found {}",
                    dim,
                    value.dim()
                );
                kernels::xor(key.as_words(), value.as_words(), bound);
                kernels::accumulate(counts, bound, 1);
            }
            out.set_majority(counts, TieBreak::Alternate);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScalarEncoder;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(606)
    }

    #[test]
    fn record_similar_to_bound_pairs() {
        let mut r = rng();
        let enc = RecordEncoder::new(5, 10_000, &mut r).unwrap();
        let values: Vec<BinaryHypervector> = (0..5)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        let refs: Vec<&BinaryHypervector> = values.iter().collect();
        let record = enc.encode(&refs, &mut r).unwrap();
        for (i, v) in values.iter().enumerate() {
            let pair = enc.key(i).bind(v);
            assert!(record.normalized_hamming(&pair) < 0.45);
        }
    }

    #[test]
    fn unbind_recovers_values() {
        let mut r = rng();
        let enc = RecordEncoder::new(6, 10_000, &mut r).unwrap();
        let value_enc = ScalarEncoder::with_levels(0.0, 1.0, 4, 10_000, &mut r).unwrap();
        // Use well-separated scalar levels as values.
        let values: Vec<&BinaryHypervector> = vec![
            value_enc.encode(0.0),
            value_enc.encode(1.0),
            value_enc.encode(0.34),
            value_enc.encode(0.67),
            value_enc.encode(0.0),
            value_enc.encode(1.0),
        ];
        let record = enc.encode(&values, &mut r).unwrap();
        for (i, expected) in [0.0, 1.0, 0.34, 0.67, 0.0, 1.0].iter().enumerate() {
            let recovered = enc.unbind(&record, i);
            let decoded = value_enc.decode(&recovered);
            assert!(
                (decoded - expected).abs() < 0.35,
                "field {i}: decoded {decoded} want {expected}"
            );
        }
    }

    #[test]
    fn different_records_are_dissimilar() {
        let mut r = rng();
        let enc = RecordEncoder::new(4, 10_000, &mut r).unwrap();
        let a: Vec<BinaryHypervector> = (0..4)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        let b: Vec<BinaryHypervector> = (0..4)
            .map(|_| BinaryHypervector::random(10_000, &mut r))
            .collect();
        let ra = enc.encode(&a.iter().collect::<Vec<_>>(), &mut r).unwrap();
        let rb = enc.encode(&b.iter().collect::<Vec<_>>(), &mut r).unwrap();
        assert!((ra.normalized_hamming(&rb) - 0.5).abs() < 0.06);
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let mut r = rng();
        let enc = RecordEncoder::new(3, 512, &mut r).unwrap();
        let v = BinaryHypervector::random(512, &mut r);
        assert!(matches!(
            enc.encode(&[&v], &mut r),
            Err(HdcError::DimensionMismatch {
                expected: 3,
                found: 1
            })
        ));
    }

    #[test]
    fn rejects_invalid_construction() {
        let mut r = rng();
        assert!(RecordEncoder::new(0, 64, &mut r).is_err());
        assert!(RecordEncoder::new(3, 0, &mut r).is_err());
    }
}
