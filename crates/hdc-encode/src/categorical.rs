use hdc_basis::{BasisSet, RandomBasis};
use hdc_core::{BinaryHypervector, HdcError, HvMut};
use rand::Rng;

use crate::table::HvTable;
use crate::Encoder;

/// Encoder for symbolic/categorical information (paper §3.1): each of `n`
/// categories gets an independent random hypervector, so distinct categories
/// are quasi-orthogonal and carry no spurious ordinal structure.
///
/// # Example
///
/// ```
/// use hdc_encode::CategoricalEncoder;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let letters = CategoricalEncoder::new(26, 10_000, &mut rng)?;
/// let a = letters.encode(0);
/// let z = letters.encode(25);
/// assert!((a.normalized_hamming(z) - 0.5).abs() < 0.05);
/// # Ok::<(), hdc_encode::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CategoricalEncoder {
    table: HvTable,
}

impl CategoricalEncoder {
    /// Creates an encoder for `n` categories with fresh random
    /// hypervectors.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `n == 0` or
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn new(n: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        let basis = RandomBasis::new(n, dim, rng)?;
        Self::from_basis(&basis)
    }

    /// Creates an encoder from an existing basis set (cloning its members).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if the basis is empty.
    pub fn from_basis<B: BasisSet + ?Sized>(basis: &B) -> Result<Self, HdcError> {
        Ok(Self {
            table: HvTable::from_basis(basis, 1)?,
        })
    }

    /// Number of categories.
    #[must_use]
    pub fn categories(&self) -> usize {
        self.table.len()
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Encodes category `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.categories()`.
    #[must_use]
    pub fn encode(&self, index: usize) -> &BinaryHypervector {
        assert!(
            index < self.table.len(),
            "category {index} out of range for {} categories",
            self.table.len()
        );
        self.table.get(index)
    }

    /// Decodes a (possibly noisy) hypervector to the most similar category.
    ///
    /// # Panics
    ///
    /// Panics if `hv` has a different dimensionality than the encoder.
    #[must_use]
    pub fn decode(&self, hv: &BinaryHypervector) -> usize {
        self.table.nearest(hv)
    }

    /// The stored category hypervectors.
    #[must_use]
    pub fn hypervectors(&self) -> &[BinaryHypervector] {
        self.table.hypervectors()
    }
}

impl Encoder<usize> for CategoricalEncoder {
    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn encode_into(&self, input: &usize, mut out: HvMut<'_>) {
        out.copy_from(self.encode(*input).view());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1_000)
    }

    #[test]
    fn categories_are_quasi_orthogonal() {
        let mut r = rng();
        let enc = CategoricalEncoder::new(10, 10_000, &mut r).unwrap();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let d = enc.encode(i).normalized_hamming(enc.encode(j));
                assert!((d - 0.5).abs() < 0.05);
            }
        }
    }

    #[test]
    fn decode_inverts_encode_under_noise() {
        let mut r = rng();
        let enc = CategoricalEncoder::new(50, 10_000, &mut r).unwrap();
        for i in [0, 7, 49] {
            let noisy = enc.encode(i).corrupt(0.25, &mut r);
            assert_eq!(enc.decode(&noisy), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_rejects_bad_index() {
        let mut r = rng();
        let enc = CategoricalEncoder::new(3, 64, &mut r).unwrap();
        let _ = enc.encode(3);
    }

    #[test]
    fn rejects_empty() {
        let mut r = rng();
        assert!(CategoricalEncoder::new(0, 64, &mut r).is_err());
    }

    #[test]
    fn accessors() {
        let mut r = rng();
        let enc = CategoricalEncoder::new(4, 128, &mut r).unwrap();
        assert_eq!(enc.categories(), 4);
        assert_eq!(enc.dim(), 128);
        assert_eq!(enc.hypervectors().len(), 4);
    }
}
