use hdc_basis::BasisKind;
use hdc_core::{kernels, BinaryHypervector, HdcError, HvMut, TieBreak};
use rand::Rng;

use crate::scratch::with_bundle_scratch;
use crate::{AngleEncoder, CategoricalEncoder, Encoder, ScalarEncoder};

/// How one position of a [`FeatureRecordEncoder`] interprets its raw `f64`
/// feature value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldSpec {
    /// A linear quantity quantized over `[low, high]` (clamped), encoded
    /// through the record's basis family.
    Scalar {
        /// Lower bound of the field's interval.
        low: f64,
        /// Upper bound of the field's interval.
        high: f64,
    },
    /// A circular quantity in radians (wrapped into `[0, 2π)`), encoded
    /// through the record's basis family — wrap-correct when that family is
    /// circular.
    Angle,
    /// A symbol index in `0..n` (the value is rounded to the nearest
    /// integer), encoded through an independent random basis.
    Categorical {
        /// Number of categories.
        n: usize,
    },
}

impl FieldSpec {
    /// A linear field over `[low, high]`.
    #[must_use]
    pub fn scalar(low: f64, high: f64) -> Self {
        FieldSpec::Scalar { low, high }
    }

    /// A circular field (radians).
    #[must_use]
    pub fn angle() -> Self {
        FieldSpec::Angle
    }

    /// A categorical field with `n` symbols.
    #[must_use]
    pub fn categorical(n: usize) -> Self {
        FieldSpec::Categorical { n }
    }
}

#[derive(Debug, Clone)]
enum FieldEncoder {
    Scalar(ScalarEncoder),
    Angle(AngleEncoder),
    Categorical(CategoricalEncoder),
}

/// Record encoder over **raw feature rows**: a `&[f64]` sample is encoded
/// as `⊕ᵢ Kᵢ ⊗ φᵢ(xᵢ)`, with one [`FieldSpec`]-driven value encoder `φᵢ`
/// and one random key hypervector `Kᵢ` per field.
///
/// This is the one-object form of the paper's §6.1 pipeline (quantize each
/// of the 18 JIGSAWS kinematic variables, bind to its field key, bundle):
/// where [`RecordEncoder`](crate::RecordEncoder) takes already encoded
/// field hypervectors, this encoder owns the per-field value encoders too,
/// so a whole feature-vector workload needs no hand-wired glue. It is the
/// encoder behind `hdc-serve`'s record pipelines.
///
/// Ties resolve with the deterministic
/// [`TieBreak::Alternate`](hdc_core::TieBreak::Alternate) policy and the
/// hot path reuses per-thread scratch buffers, so per-sample encoding is
/// deterministic and allocation-free.
///
/// # Example
///
/// ```
/// use hdc_basis::BasisKind;
/// use hdc_encode::{Encoder, FeatureRecordEncoder, FieldSpec};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let enc = FeatureRecordEncoder::new(
///     &[
///         FieldSpec::scalar(0.0, 40.0),  // temperature
///         FieldSpec::angle(),            // wind direction (radians)
///         FieldSpec::categorical(4),     // season id
///     ],
///     16,
///     10_000,
///     BasisKind::Circular { randomness: 0.0 },
///     &mut rng,
/// )?;
/// let hv = enc.encode_hv(&[21.5, 1.2, 3.0][..]);
/// assert_eq!(hv.dim(), 10_000);
/// # Ok::<(), hdc_encode::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FeatureRecordEncoder {
    keys: Vec<BinaryHypervector>,
    fields: Vec<FieldEncoder>,
}

impl FeatureRecordEncoder {
    /// Creates an encoder with one value encoder and one random key per
    /// field. Scalar and angle fields quantize into `m` levels/sectors of
    /// the `kind` basis family; categorical fields use their own random
    /// basis (symbols carry no ordinal structure).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `fields` is empty, `dim == 0`, `m < 2`, a
    /// scalar interval is invalid or a categorical field has `n == 0`.
    pub fn new(
        fields: &[FieldSpec],
        m: usize,
        dim: usize,
        kind: BasisKind,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::InvalidDimension(dim));
        }
        if fields.is_empty() {
            return Err(HdcError::InvalidBasisSize {
                requested: 0,
                minimum: 1,
            });
        }
        let encoders = fields
            .iter()
            .map(|&field| {
                Ok(match field {
                    FieldSpec::Scalar { low, high } => FieldEncoder::Scalar(
                        ScalarEncoder::with_kind(low, high, m, dim, kind, rng)?,
                    ),
                    FieldSpec::Angle => {
                        let basis = kind.build(m, dim, rng)?;
                        FieldEncoder::Angle(AngleEncoder::from_basis(basis.as_ref())?)
                    }
                    FieldSpec::Categorical { n } => {
                        FieldEncoder::Categorical(CategoricalEncoder::new(n, dim, rng)?)
                    }
                })
            })
            .collect::<Result<Vec<_>, HdcError>>()?;
        Ok(Self {
            keys: (0..fields.len())
                .map(|_| BinaryHypervector::random(dim, rng))
                .collect(),
            fields: encoders,
        })
    }

    /// Number of fields.
    #[must_use]
    pub fn fields(&self) -> usize {
        self.keys.len()
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.keys[0].dim()
    }

    /// The encoded value hypervector of one field (before key binding).
    ///
    /// # Panics
    ///
    /// Panics if `field` is out of range or the value is invalid for the
    /// field (categorical index out of `0..n`).
    #[must_use]
    pub fn field_value(&self, field: usize, value: f64) -> &BinaryHypervector {
        assert!(
            field < self.fields.len(),
            "field {field} out of range for {}",
            self.fields.len()
        );
        match &self.fields[field] {
            FieldEncoder::Scalar(enc) => enc.encode(value),
            FieldEncoder::Angle(enc) => enc.encode(value),
            FieldEncoder::Categorical(enc) => {
                let n = enc.categories();
                let index = value.round();
                assert!(
                    index >= 0.0 && (index as usize) < n,
                    "categorical field {field} value {value} out of range for {n} categories"
                );
                enc.encode(index as usize)
            }
        }
    }
}

/// The input is the raw feature row, one `f64` per field in order.
impl Encoder<[f64]> for FeatureRecordEncoder {
    fn dim(&self) -> usize {
        self.keys[0].dim()
    }

    /// # Panics
    ///
    /// Panics if `input.len()` differs from the number of fields or a
    /// categorical value is out of range.
    fn encode_into(&self, input: &[f64], mut out: HvMut<'_>) {
        assert_eq!(
            input.len(),
            self.keys.len(),
            "record arity mismatch: expected {}, found {}",
            self.keys.len(),
            input.len()
        );
        let dim = self.dim();
        with_bundle_scratch(dim, |counts, bound| {
            for (field, (key, &value)) in self.keys.iter().zip(input).enumerate() {
                let value_hv = self.field_value(field, value);
                kernels::xor(key.as_words(), value_hv.as_words(), bound);
                kernels::accumulate(counts, bound, 1);
            }
            out.set_majority(counts, TieBreak::Alternate);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_core::MajorityAccumulator;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFEA7)
    }

    fn three_field_encoder(r: &mut StdRng) -> FeatureRecordEncoder {
        FeatureRecordEncoder::new(
            &[
                FieldSpec::scalar(0.0, 1.0),
                FieldSpec::angle(),
                FieldSpec::categorical(5),
            ],
            8,
            4_096,
            BasisKind::Circular { randomness: 0.0 },
            r,
        )
        .unwrap()
    }

    #[test]
    fn matches_manual_bind_bundle_reference() {
        let mut r = rng();
        let enc = three_field_encoder(&mut r);
        let sample = [0.4f64, 2.0, 3.0];
        let via_trait = enc.encode_hv(&sample[..]);
        let mut acc = MajorityAccumulator::new(4_096);
        for (i, &x) in sample.iter().enumerate() {
            let mut keys_bound = enc.field_value(i, x).clone();
            keys_bound.bind_assign(&enc.keys[i]);
            acc.push(&keys_bound);
        }
        assert_eq!(via_trait, acc.finalize(TieBreak::Alternate));
    }

    #[test]
    fn similar_samples_are_similar() {
        let mut r = rng();
        let enc = three_field_encoder(&mut r);
        let base = enc.encode_hv(&[0.50, 1.0, 2.0][..]);
        let near = enc.encode_hv(&[0.55, 1.1, 2.0][..]);
        let far = enc.encode_hv(&[0.95, 4.0, 4.0][..]);
        assert!(base.normalized_hamming(&near) < base.normalized_hamming(&far));
    }

    #[test]
    fn angle_fields_wrap() {
        let mut r = rng();
        let enc = FeatureRecordEncoder::new(
            &[FieldSpec::angle()],
            24,
            10_000,
            BasisKind::Circular { randomness: 0.0 },
            &mut r,
        )
        .unwrap();
        let tau = std::f64::consts::TAU;
        let before_wrap = enc.encode_hv(&[tau - 0.05][..]);
        let after_wrap = enc.encode_hv(&[0.05][..]);
        let opposite = enc.encode_hv(&[tau / 2.0][..]);
        assert!(
            before_wrap.normalized_hamming(&after_wrap) < before_wrap.normalized_hamming(&opposite)
        );
    }

    #[test]
    fn batched_matches_per_sample() {
        let mut r = rng();
        let enc = three_field_encoder(&mut r);
        let samples: Vec<Vec<f64>> = (0..9)
            .map(|i| vec![i as f64 / 8.0, i as f64, (i % 5) as f64])
            .collect();
        let batch = enc.encode_batch(samples.iter().map(Vec::as_slice));
        for (row, sample) in batch.rows().zip(&samples) {
            assert_eq!(row.to_hypervector(), enc.encode_hv(sample.as_slice()));
        }
    }

    #[test]
    fn rejects_invalid_construction() {
        let mut r = rng();
        let kind = BasisKind::Random;
        assert!(FeatureRecordEncoder::new(&[], 8, 64, kind, &mut r).is_err());
        assert!(FeatureRecordEncoder::new(&[FieldSpec::angle()], 8, 0, kind, &mut r).is_err());
        assert!(
            FeatureRecordEncoder::new(&[FieldSpec::scalar(1.0, 0.0)], 8, 64, kind, &mut r).is_err()
        );
        assert!(
            FeatureRecordEncoder::new(&[FieldSpec::categorical(0)], 8, 64, kind, &mut r).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        let mut r = rng();
        let enc = three_field_encoder(&mut r);
        let _ = enc.encode_hv(&[0.1][..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn categorical_out_of_range_panics() {
        let mut r = rng();
        let enc = three_field_encoder(&mut r);
        let _ = enc.encode_hv(&[0.1, 0.0, 7.0][..]);
    }

    #[test]
    fn accessors() {
        let mut r = rng();
        let enc = three_field_encoder(&mut r);
        assert_eq!(enc.fields(), 3);
        assert_eq!(enc.dim(), 4_096);
        assert_eq!(Encoder::dim(&enc), 4_096);
    }
}
