//! Encoders: mapping input-space objects to hypervectors.
//!
//! Encoding is "the most important stage in HDC" (paper §1): atomic pieces
//! of information are mapped through *basis-hypervector* sets, then combined
//! with binding, bundling and permutation into representations of whole
//! samples. This crate provides:
//!
//! * [`ScalarEncoder`] — quantizes an interval `[a, b]` into `m` levels
//!   (paper §3.2, `φ_L`) and decodes back (invertibility is what makes HDC
//!   regression possible, §2.3),
//! * [`AngleEncoder`] — quantizes the circle `[0, 2π)` into `m` circular
//!   hypervectors, wrapping correctly (paper §5),
//! * [`CategoricalEncoder`] — maps symbol indices through a random basis
//!   (paper §3.1),
//! * [`RecordEncoder`] — the key–value superposition `⊕ᵢ Kᵢ ⊗ Vᵢ` used for
//!   the JIGSAWS feature vectors (paper §6.1),
//! * [`FeatureRecordEncoder`] — the same superposition over **raw** `f64`
//!   feature rows, owning one [`FieldSpec`]-driven value encoder per field
//!   (the one-object form of the §6.1 pipeline),
//! * [`SequenceEncoder`] — order-aware sequence and n-gram encodings via
//!   permutation (paper §3.1).
//!
//! All of them implement the unifying [`Encoder`] trait, whose
//! [`encode_into`](Encoder::encode_into) writes directly into a borrowed
//! packed row and whose [`encode_batch`](Encoder::encode_batch) fills a
//! contiguous [`HypervectorBatch`](hdc_core::HypervectorBatch) arena in
//! parallel, bit-identically to the per-sample loop.
//!
//! # Example
//!
//! ```
//! use hdc_encode::{AngleEncoder, ScalarEncoder};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let temp = ScalarEncoder::with_levels(-20.0, 40.0, 64, 10_000, &mut rng)?;
//! let hv = temp.encode(21.3);
//! assert!((temp.decode(hv) - 21.3).abs() < 1.0); // quantization error ≤ step/2
//!
//! let hour = AngleEncoder::with_circular(24, 10_000, 0.0, &mut rng)?;
//! // 23h and 1h are two hours apart across midnight.
//! let d = hour.encode_periodic(23.0, 24.0).normalized_hamming(hour.encode_periodic(1.0, 24.0));
//! assert!(d < 0.15);
//! # Ok::<(), hdc_encode::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod angle;
mod categorical;
mod encoder;
mod feature_record;
mod record;
mod scalar;
mod scratch;
mod sequence;
mod table;

pub use angle::AngleEncoder;
pub use categorical::CategoricalEncoder;
pub use encoder::{Encoder, Radians};
pub use feature_record::{FeatureRecordEncoder, FieldSpec};
pub use hdc_core::HdcError;
pub use record::RecordEncoder;
pub use scalar::ScalarEncoder;
pub use sequence::SequenceEncoder;
