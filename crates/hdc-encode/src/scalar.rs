use hdc_basis::{BasisKind, BasisSet, LevelBasis};
use hdc_core::{BinaryHypervector, HdcError, HvMut};
use rand::Rng;

use crate::table::HvTable;
use crate::Encoder;

/// Quantizing encoder `φ_L` for real numbers over an interval `[a, b]`
/// (paper §3.2): `m` points `ξ_1 … ξ_m` are placed evenly over the interval
/// and a value maps to the hypervector of its nearest point.
///
/// The encoder is *invertible up to quantization*: [`decode`](Self::decode)
/// finds the nearest stored hypervector and returns its `ξ`, which is what
/// HDC regression uses to read labels back out of a model (paper §2.3).
///
/// Values outside `[a, b]` are clamped to the nearest endpoint level.
///
/// # Example
///
/// ```
/// use hdc_encode::ScalarEncoder;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let enc = ScalarEncoder::with_levels(0.0, 10.0, 11, 10_000, &mut rng)?;
/// assert_eq!(enc.index_of(3.2), 3); // nearest grid point ξ_4 = 3.0
/// assert_eq!(enc.decode(enc.encode(3.2)), 3.0);
/// # Ok::<(), hdc_encode::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ScalarEncoder {
    table: HvTable,
    low: f64,
    high: f64,
}

impl ScalarEncoder {
    /// Creates an encoder over `[low, high]` from an existing basis set
    /// (the hypervectors are cloned out of it; level `i` represents
    /// `ξ_i = low + i·(high − low)/(m − 1)`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidInterval`] for non-finite or inverted
    /// bounds and [`HdcError::InvalidBasisSize`] if the basis has fewer than
    /// two members.
    pub fn from_basis<B: BasisSet + ?Sized>(
        low: f64,
        high: f64,
        basis: &B,
    ) -> Result<Self, HdcError> {
        if !low.is_finite() || !high.is_finite() || low >= high {
            return Err(HdcError::InvalidInterval { low, high });
        }
        Ok(Self {
            table: HvTable::from_basis(basis, 2)?,
            low,
            high,
        })
    }

    /// Creates an encoder backed by a fresh interpolation [`LevelBasis`]
    /// (Algorithm 1) with `m` levels — the standard choice for linear data.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for an invalid interval, `m < 2` or `dim == 0`.
    pub fn with_levels(
        low: f64,
        high: f64,
        m: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        let basis = LevelBasis::new(m, dim, rng)?;
        Self::from_basis(low, high, &basis)
    }

    /// Creates an encoder backed by any [`BasisKind`] — used by the
    /// experiment harness to swap random/level/circular value encodings.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for an invalid interval or basis parameters.
    pub fn with_kind(
        low: f64,
        high: f64,
        m: usize,
        dim: usize,
        kind: BasisKind,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        let basis = kind.build(m, dim, rng)?;
        Self::from_basis(low, high, basis.as_ref())
    }

    /// Number of quantization levels `m`.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.table.len()
    }

    /// Hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.table.dim()
    }

    /// Lower bound of the encoded interval.
    #[must_use]
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound of the encoded interval.
    #[must_use]
    pub fn high(&self) -> f64 {
        self.high
    }

    /// The grid point `ξ_index` represented by a level (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.levels()`.
    #[must_use]
    pub fn value_of(&self, index: usize) -> f64 {
        assert!(
            index < self.table.len(),
            "level {index} out of range for {}",
            self.table.len()
        );
        self.low + index as f64 * (self.high - self.low) / (self.table.len() as f64 - 1.0)
    }

    /// The level whose grid point is nearest to `x` (clamped to the
    /// interval). NaN maps to the lowest level.
    #[must_use]
    pub fn index_of(&self, x: f64) -> usize {
        let m = self.table.len();
        let clamped = x.clamp(self.low, self.high);
        if clamped.is_nan() {
            return 0;
        }
        let t = (clamped - self.low) / (self.high - self.low);
        ((t * (m as f64 - 1.0)).round() as usize).min(m - 1)
    }

    /// Encodes `x` as the hypervector of its nearest level.
    #[must_use]
    pub fn encode(&self, x: f64) -> &BinaryHypervector {
        self.table.get(self.index_of(x))
    }

    /// Decodes a (possibly noisy) hypervector back to the grid point of the
    /// most similar level — the paper's `φ_ℓ⁻¹`.
    ///
    /// # Panics
    ///
    /// Panics if `hv` has a different dimensionality than the encoder.
    #[must_use]
    pub fn decode(&self, hv: &BinaryHypervector) -> f64 {
        self.value_of(self.table.nearest(hv))
    }

    /// The stored level hypervectors, lowest level first.
    #[must_use]
    pub fn hypervectors(&self) -> &[BinaryHypervector] {
        self.table.hypervectors()
    }
}

impl Encoder<f64> for ScalarEncoder {
    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn encode_into(&self, input: &f64, mut out: HvMut<'_>) {
        out.copy_from(self.table.get(self.index_of(*input)).view());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdc_basis::CircularBasis;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(700)
    }

    #[test]
    fn grid_points_are_even() {
        let mut r = rng();
        let enc = ScalarEncoder::with_levels(0.0, 100.0, 5, 256, &mut r).unwrap();
        assert_eq!(enc.value_of(0), 0.0);
        assert_eq!(enc.value_of(2), 50.0);
        assert_eq!(enc.value_of(4), 100.0);
        assert_eq!(enc.levels(), 5);
        assert_eq!(enc.dim(), 256);
        assert_eq!(enc.low(), 0.0);
        assert_eq!(enc.high(), 100.0);
    }

    #[test]
    fn nearest_level_selection() {
        let mut r = rng();
        let enc = ScalarEncoder::with_levels(0.0, 10.0, 11, 128, &mut r).unwrap();
        assert_eq!(enc.index_of(0.0), 0);
        assert_eq!(enc.index_of(0.49), 0);
        assert_eq!(enc.index_of(0.51), 1);
        assert_eq!(enc.index_of(10.0), 10);
        // Clamping.
        assert_eq!(enc.index_of(-5.0), 0);
        assert_eq!(enc.index_of(25.0), 10);
    }

    #[test]
    fn encode_decode_round_trip_within_half_step() {
        let mut r = rng();
        let enc = ScalarEncoder::with_levels(-1.0, 1.0, 21, 8_192, &mut r).unwrap();
        let step = 2.0 / 20.0;
        for i in 0..100 {
            let x = -1.0 + 2.0 * i as f64 / 99.0;
            let decoded = enc.decode(enc.encode(x));
            assert!(
                (decoded - x).abs() <= step / 2.0 + 1e-12,
                "x={x} decoded={decoded}"
            );
        }
    }

    #[test]
    fn decode_survives_noise() {
        let mut r = rng();
        let enc = ScalarEncoder::with_levels(0.0, 1.0, 16, 10_000, &mut r).unwrap();
        let hv = enc.encode(0.4);
        let noisy = hv.corrupt(0.15, &mut r);
        // Noise of 15% shifts distances by ±0.15; levels are 1/30 apart in
        // expected distance, so decoding may move by a level or two but not
        // across the interval.
        let decoded = enc.decode(&noisy);
        assert!((decoded - 0.4).abs() < 0.2, "decoded = {decoded}");
    }

    #[test]
    fn neighbouring_values_get_similar_hypervectors() {
        let mut r = rng();
        let enc = ScalarEncoder::with_levels(0.0, 1.0, 32, 10_000, &mut r).unwrap();
        let near = enc.encode(0.50).normalized_hamming(enc.encode(0.53));
        let far = enc.encode(0.50).normalized_hamming(enc.encode(0.95));
        assert!(near < far);
    }

    #[test]
    fn from_circular_basis_wraps() {
        let mut r = rng();
        let basis = CircularBasis::new(24, 10_000, &mut r).unwrap();
        let enc = ScalarEncoder::from_basis(0.0, 24.0, &basis).unwrap();
        // NOTE: the scalar grid maps 0 and 24 to *different levels* (0 and
        // 23) but the circular basis makes them similar anyway.
        let d = enc.encode(0.0).normalized_hamming(enc.encode(23.5));
        assert!(d < 0.15, "wrap distance {d}");
    }

    #[test]
    fn rejects_invalid_intervals() {
        let mut r = rng();
        for (lo, hi) in [
            (1.0, 1.0),
            (2.0, 1.0),
            (f64::NAN, 1.0),
            (0.0, f64::INFINITY),
        ] {
            assert!(matches!(
                ScalarEncoder::with_levels(lo, hi, 4, 64, &mut r),
                Err(HdcError::InvalidInterval { .. })
            ));
        }
        assert!(ScalarEncoder::with_levels(0.0, 1.0, 1, 64, &mut r).is_err());
    }

    #[test]
    fn with_kind_builds_all_variants() {
        let mut r = rng();
        for kind in [
            BasisKind::Random,
            BasisKind::Level { randomness: 0.1 },
            BasisKind::Circular { randomness: 0.0 },
        ] {
            let enc = ScalarEncoder::with_kind(0.0, 1.0, 8, 512, kind, &mut r).unwrap();
            assert_eq!(enc.levels(), 8);
        }
    }

    proptest! {
        #[test]
        fn prop_index_within_bounds(x in -1e3f64..1e3) {
            let mut r = StdRng::seed_from_u64(0);
            let enc = ScalarEncoder::with_levels(-10.0, 10.0, 13, 64, &mut r).unwrap();
            prop_assert!(enc.index_of(x) < 13);
        }

        #[test]
        fn prop_round_trip_error_bounded(x in 0.0f64..1.0, m in 2usize..40) {
            let mut r = StdRng::seed_from_u64(1);
            let enc = ScalarEncoder::with_levels(0.0, 1.0, m, 2_048, &mut r).unwrap();
            let step = 1.0 / (m as f64 - 1.0);
            let decoded = enc.value_of(enc.index_of(x));
            prop_assert!((decoded - x).abs() <= step / 2.0 + 1e-9);
        }
    }
}
