//! Per-thread scratch buffers for allocation-free bundling encoders.
//!
//! `RecordEncoder`, `SequenceEncoder` and `FeatureRecordEncoder` all encode
//! a sample as "accumulate a handful of derived hypervectors, then take the
//! majority". Doing that with owned intermediates costs several heap
//! allocations per sample (one per bind/permute temporary, one for the
//! accumulator, one for the finalized vector) — which is exactly the cost
//! the batched `encode_into` path is supposed to avoid.
//!
//! This module keeps one reusable pair of buffers per thread:
//!
//! * `counts` — the signed per-dimension majority counters,
//! * `words` — a packed word buffer the bind/permute temporaries are
//!   computed into.
//!
//! Encoders borrow both for the duration of one sample via
//! [`with_bundle_scratch`]; after the first sample on a thread, encoding is
//! allocation-free (the buffers are only re-zeroed). Worker threads of the
//! parallel `encode_batch` fan-out each get their own scratch, so the
//! batched path stays data-race-free without locking.

use std::cell::RefCell;

thread_local! {
    static SCRATCH: RefCell<(Vec<i32>, Vec<u64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f(counts, words)` with this thread's scratch buffers sized for
/// dimensionality `dim`: `counts` holds `dim` zeroed counters and `words`
/// holds `dim.div_ceil(64)` zeroed packed words.
pub(crate) fn with_bundle_scratch<R>(dim: usize, f: impl FnOnce(&mut [i32], &mut [u64]) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut scratch = cell.borrow_mut();
        let (counts, words) = &mut *scratch;
        counts.clear();
        counts.resize(dim, 0);
        words.clear();
        words.resize(dim.div_ceil(64), 0);
        f(counts, words)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_zeroed_and_sized_each_call() {
        with_bundle_scratch(100, |counts, words| {
            assert_eq!(counts.len(), 100);
            assert_eq!(words.len(), 2);
            counts.fill(7);
            words.fill(!0);
        });
        // A smaller follow-up call must not see the previous contents.
        with_bundle_scratch(65, |counts, words| {
            assert_eq!(counts.len(), 65);
            assert_eq!(words.len(), 2);
            assert!(counts.iter().all(|&c| c == 0));
            assert!(words.iter().all(|&w| w == 0));
        });
    }
}
