//! The unifying [`Encoder`] trait: one interface over all of this crate's
//! encoders, with in-place (`encode_into`) and batched (`encode_batch`)
//! forms.
//!
//! `Input` is the encoder's input type — `f64` (domain values) for
//! [`ScalarEncoder`](crate::ScalarEncoder), [`Radians`] for
//! [`AngleEncoder`](crate::AngleEncoder), `usize` for
//! [`CategoricalEncoder`](crate::CategoricalEncoder), `[usize]` for
//! [`SequenceEncoder`](crate::SequenceEncoder) and `[BinaryHypervector]`
//! for [`RecordEncoder`](crate::RecordEncoder) — so generic pipelines
//! (classifier training loops, batch throughput harnesses, the experiment
//! drivers) can be written once against `E: Encoder<I>`.
//!
//! The default [`encode_batch`](Encoder::encode_batch) writes each row of a
//! contiguous [`HypervectorBatch`] arena, fanning the rows out across
//! scoped worker threads (`minipool`). Rows are independent, so the batched
//! result is **bit-identical** to encoding samples one at a time.

use hdc_core::{BinaryHypervector, HvMut, HypervectorBatch};

/// An angle in radians (wrapped into `[0, 2π)` by the encoder) — the input
/// type of [`AngleEncoder`](crate::AngleEncoder)'s [`Encoder`] impl.
///
/// A distinct type rather than a bare `f64` so a generic pipeline written
/// against `E: Encoder<f64>` (domain values, e.g.
/// [`ScalarEncoder`](crate::ScalarEncoder)) cannot silently feed raw domain
/// values to an angle encoder: converting — for instance
/// `Radians::periodic(hour, 24.0)`, mirroring
/// [`encode_periodic`](crate::AngleEncoder::encode_periodic) — becomes a
/// visible, checkable step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Radians(pub f64);

impl Radians {
    /// The angle of `value` within a periodic domain `[0, period)` —
    /// `value / period · 2π` (e.g. `Radians::periodic(17.0, 24.0)` for
    /// 5 pm on the daily circle).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not finite and positive.
    #[must_use]
    pub fn periodic(value: f64, period: f64) -> Self {
        assert!(
            period.is_finite() && period > 0.0,
            "period {period} must be positive and finite"
        );
        Self(value / period * std::f64::consts::TAU)
    }
}

/// Common interface of hypervector encoders: map an input-space object into
/// a caller-provided packed row.
///
/// Implementations must be deterministic — the same input always produces
/// the same bits — so batched and per-sample encoding agree exactly. (The
/// inherent `encode` methods of [`RecordEncoder`](crate::RecordEncoder) and
/// [`SequenceEncoder`](crate::SequenceEncoder) break bundling ties with a
/// caller RNG; their trait impls use the deterministic
/// [`TieBreak::Alternate`](hdc_core::TieBreak::Alternate) policy instead.)
///
/// # Example
///
/// ```
/// use hdc_encode::{Encoder, ScalarEncoder};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(12);
/// let enc = ScalarEncoder::with_levels(0.0, 1.0, 16, 10_000, &mut rng)?;
/// let values = [0.1, 0.5, 0.9];
/// let batch = enc.encode_batch(&values);
/// assert_eq!(batch.len(), 3);
/// // Batched rows are bit-identical to per-sample encoding.
/// for (row, &x) in batch.rows().zip(&values) {
///     assert_eq!(row.hamming(enc.encode(x).view()), 0);
/// }
/// # Ok::<(), hdc_encode::HdcError>(())
/// ```
pub trait Encoder<Input: ?Sized> {
    /// Dimensionality `d` of the produced hypervectors.
    fn dim(&self) -> usize;

    /// Encodes `input` into the provided row, overwriting its contents.
    ///
    /// # Panics
    ///
    /// Panics if `out.dim() != self.dim()` or the input is invalid for this
    /// encoder (out-of-range symbol, wrong record arity, empty sequence —
    /// see the implementing type's documentation).
    fn encode_into(&self, input: &Input, out: HvMut<'_>);

    /// Encodes `input` into a freshly allocated owned hypervector.
    fn encode_hv(&self, input: &Input) -> BinaryHypervector {
        let dim = self.dim();
        let mut words = vec![0u64; dim.div_ceil(64)];
        self.encode_into(input, HvMut::new(dim, &mut words));
        BinaryHypervector::from_words(dim, words)
    }

    /// Encodes a batch of inputs into one contiguous arena, one row per
    /// input in order, parallelized across the available cores.
    ///
    /// Bit-identical to calling [`encode_into`](Self::encode_into) per
    /// sample: each worker owns a disjoint block of rows and rows carry no
    /// shared state.
    fn encode_batch<'a, I>(&self, inputs: I) -> HypervectorBatch
    where
        I: IntoIterator<Item = &'a Input>,
        Input: 'a + Sync,
        Self: Sync,
    {
        let refs: Vec<&Input> = inputs.into_iter().collect();
        let mut batch = HypervectorBatch::zeros(self.dim(), refs.len());
        if refs.is_empty() {
            return batch;
        }
        // Below the fan-out threshold one chunk covers everything, so the
        // fill below runs on the caller thread with no spawn overhead.
        let rows_per_chunk = if refs.len() < minipool::MIN_PARALLEL_ITEMS {
            refs.len()
        } else {
            refs.len().div_ceil(minipool::max_threads())
        };
        let mut chunks: Vec<_> = batch.chunks_mut(rows_per_chunk).collect();
        minipool::par_fill_indexed(&mut chunks, |_, chunk| {
            for (row_index, row) in chunk.rows_mut() {
                self.encode_into(refs[row_index], row);
            }
        });
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AngleEncoder, CategoricalEncoder, RecordEncoder, ScalarEncoder, SequenceEncoder};
    use hdc_core::{MajorityAccumulator, TieBreak};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xE2C)
    }

    #[test]
    fn scalar_batch_matches_per_sample_at_odd_dims() {
        let mut r = rng();
        for dim in [100usize, 128, 129, 1_000] {
            let enc = ScalarEncoder::with_levels(0.0, 1.0, 16, dim, &mut r).unwrap();
            let values: Vec<f64> = (0..33).map(|i| i as f64 / 32.0).collect();
            let batch = enc.encode_batch(&values);
            assert_eq!(batch.len(), values.len());
            assert_eq!(batch.dim(), dim);
            for (row, &x) in batch.rows().zip(&values) {
                assert_eq!(row.to_hypervector(), *enc.encode(x), "dim={dim} x={x}");
                assert_eq!(enc.encode_hv(&x), *enc.encode(x));
            }
        }
    }

    #[test]
    fn angle_and_categorical_trait_forms_agree_with_inherent() {
        let mut r = rng();
        let angle = AngleEncoder::with_circular(24, 300, 0.0, &mut r).unwrap();
        for i in 0..24 {
            let a = angle.angle_of(i);
            assert_eq!(angle.encode_hv(&Radians(a)), *angle.encode(a));
        }
        // Radians::periodic mirrors encode_periodic's rescaling.
        assert_eq!(
            angle.encode_hv(&Radians::periodic(17.0, 24.0)),
            *angle.encode_periodic(17.0, 24.0)
        );
        let cat = CategoricalEncoder::new(7, 300, &mut r).unwrap();
        let symbols: Vec<usize> = (0..7).collect();
        let batch = cat.encode_batch(&symbols);
        for (row, &s) in batch.rows().zip(&symbols) {
            assert_eq!(row.to_hypervector(), *cat.encode(s));
        }
    }

    #[test]
    fn sequence_trait_form_is_deterministic_alternate_bundle() {
        let mut r = rng();
        let enc = SequenceEncoder::new(5, 450, &mut r).unwrap();
        let seq = [0usize, 3, 1, 4];
        let via_trait = enc.encode_hv(&seq[..]);
        // Reference: position-permuted bundle with the Alternate tie-break.
        let mut acc = MajorityAccumulator::new(450);
        for (i, &s) in seq.iter().enumerate() {
            acc.push(&enc.symbols().encode(s).permute(i as isize));
        }
        assert_eq!(via_trait, acc.finalize(TieBreak::Alternate));
        // Batched form agrees row for row.
        let seqs: Vec<Vec<usize>> = vec![vec![0, 1], vec![2, 3, 4], vec![4]];
        let batch = enc.encode_batch(seqs.iter().map(Vec::as_slice));
        for (row, seq) in batch.rows().zip(&seqs) {
            assert_eq!(row.to_hypervector(), enc.encode_hv(seq.as_slice()));
        }
    }

    #[test]
    fn record_trait_form_matches_alternate_reference() {
        let mut r = rng();
        let enc = RecordEncoder::new(3, 320, &mut r).unwrap();
        let values: Vec<_> = (0..3)
            .map(|_| hdc_core::BinaryHypervector::random(320, &mut r))
            .collect();
        let via_trait = enc.encode_hv(&values[..]);
        let mut acc = MajorityAccumulator::new(320);
        for (i, v) in values.iter().enumerate() {
            acc.push(&enc.key(i).bind(v));
        }
        assert_eq!(via_trait, acc.finalize(TieBreak::Alternate));
        assert_eq!(Encoder::dim(&enc), 320);
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut r = rng();
        let enc = ScalarEncoder::with_levels(0.0, 1.0, 4, 64, &mut r).unwrap();
        let batch = enc.encode_batch(std::iter::empty::<&f64>());
        assert!(batch.is_empty());
        assert_eq!(batch.dim(), 64);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn sequence_trait_rejects_empty() {
        let mut r = rng();
        let enc = SequenceEncoder::new(3, 64, &mut r).unwrap();
        let _ = enc.encode_hv(&[][..]);
    }

    #[test]
    fn batch_encoding_is_deterministic_across_thread_counts() {
        // MINIPOOL_THREADS only changes the partitioning, never the bits;
        // emulate different chunkings by comparing against a 1-chunk fill.
        let mut r = rng();
        let enc = ScalarEncoder::with_levels(-5.0, 5.0, 32, 200, &mut r).unwrap();
        let values: Vec<f64> = (0..100).map(|_| r.random_range(-6.0f64..6.0)).collect();
        let parallel = enc.encode_batch(&values);
        let mut serial = hdc_core::HypervectorBatch::zeros(200, values.len());
        serial.fill_rows(|i, out| enc.encode_into(&values[i], out));
        assert_eq!(parallel, serial);
    }
}
