//! Shared storage behind the basis-backed encoders.
//!
//! [`ScalarEncoder`](crate::ScalarEncoder), [`AngleEncoder`](crate::AngleEncoder)
//! and [`CategoricalEncoder`](crate::CategoricalEncoder) are all "look up a
//! member of a fixed hypervector table" encoders; this module holds the one
//! implementation of that table (length/dimension accessors, indexed reads,
//! nearest-member decoding) they previously each carried a copy of.

use hdc_basis::BasisSet;
use hdc_core::{BinaryHypervector, HdcError, HvRef};

/// An ordered table of equally sized hypervectors cloned out of a basis
/// set, with nearest-member decoding.
#[derive(Debug, Clone)]
pub(crate) struct HvTable {
    hvs: Vec<BinaryHypervector>,
}

impl HvTable {
    /// Clones the members of a basis set, requiring at least `minimum`
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if the basis holds fewer than
    /// `minimum` members.
    pub(crate) fn from_basis<B: BasisSet + ?Sized>(
        basis: &B,
        minimum: usize,
    ) -> Result<Self, HdcError> {
        if basis.len() < minimum {
            return Err(HdcError::InvalidBasisSize {
                requested: basis.len(),
                minimum,
            });
        }
        Ok(Self {
            hvs: basis.hypervectors().to_vec(),
        })
    }

    /// Number of stored hypervectors.
    pub(crate) fn len(&self) -> usize {
        self.hvs.len()
    }

    /// Dimensionality shared by every member.
    pub(crate) fn dim(&self) -> usize {
        self.hvs[0].dim()
    }

    /// The `index`-th member.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub(crate) fn get(&self, index: usize) -> &BinaryHypervector {
        &self.hvs[index]
    }

    /// All members in order.
    pub(crate) fn hypervectors(&self) -> &[BinaryHypervector] {
        &self.hvs
    }

    /// Index of the member most similar to `hv` (ties to the earliest).
    ///
    /// # Panics
    ///
    /// Panics if `hv`'s dimensionality differs from the table's.
    pub(crate) fn nearest(&self, hv: &BinaryHypervector) -> usize {
        self.nearest_row(hv.view())
    }

    /// [`nearest`](Self::nearest) over a borrowed row view.
    ///
    /// # Panics
    ///
    /// Panics if the view's dimensionality differs from the table's.
    pub(crate) fn nearest_row(&self, row: HvRef<'_>) -> usize {
        hdc_core::similarity::nearest_to_row(row, &self.hvs)
            .expect("table always holds at least one member")
            .0
    }
}
