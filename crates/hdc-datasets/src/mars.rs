//! Synthetic surrogate of the Mars Express power-level telemetry used in
//! the paper's second regression task.
//!
//! The real data comes from ESA's Mars Express Power Challenge: available
//! electrical power fluctuates with the spacecraft's orbit and thermal
//! state. The paper regresses power on the **mean anomaly** of Mars' orbit
//! around the sun — a single circular feature.
//!
//! The surrogate derives power physically: solar-array output scales with
//! `1/r²` through a real Kepler solve of Mars' orbit ([`crate::orbit`]),
//! eclipse-season and thermal effects contribute harmonics of the anomaly,
//! and measurement noise is Gaussian. The result is a smooth, slightly
//! asymmetric periodic dependence of power on the anomaly — exactly the
//! circular-feature → linear-target structure the paper exploits.
//!
//! ```
//! use hdc_datasets::mars::{self, MarsConfig};
//!
//! let data = mars::generate(&MarsConfig::default());
//! assert_eq!(data.samples.len(), MarsConfig::default().samples);
//! // Power peaks near perihelion (anomaly ≈ 0) where solar flux is maximal.
//! let near = data.mean_power_in(6.0, 6.28);
//! let far = data.mean_power_in(2.9, 3.4);
//! assert!(near > far);
//! ```

use dirstats::{Normal, TAU};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::orbit::Orbit;

/// Generation parameters for the Mars Express surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct MarsConfig {
    /// Number of telemetry samples.
    pub samples: usize,
    /// Solar-array output at Mars' mean distance (W).
    pub solar_reference_power: f64,
    /// Amplitude of the eclipse-season dip (W).
    pub eclipse_amplitude: f64,
    /// Amplitude of the second-harmonic thermal term (W).
    pub thermal_amplitude: f64,
    /// Peak attenuation from the Martian dust season (W). Dust builds up
    /// slowly through southern spring/summer and clears quickly after the
    /// storm season — an *asymmetric* (sawtooth-like) function of the mean
    /// anomaly, continuous across the wrap.
    pub dust_amplitude: f64,
    /// Standard deviation of the measurement noise (W).
    pub noise_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MarsConfig {
    fn default() -> Self {
        Self {
            samples: 800,
            solar_reference_power: 600.0,
            eclipse_amplitude: 45.0,
            thermal_amplitude: 15.0,
            dust_amplitude: 110.0,
            noise_std: 20.0,
            seed: 0x3A25,
        }
    }
}

/// One telemetry record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarsSample {
    /// Mean anomaly of Mars' solar orbit, `[0, 2π)` — the circular feature.
    pub mean_anomaly: f64,
    /// Available power (W) — the regression target.
    pub power: f64,
}

/// The generated telemetry set.
#[derive(Debug, Clone, PartialEq)]
pub struct MarsDataset {
    /// Telemetry records (anomalies sampled uniformly over the orbit).
    pub samples: Vec<MarsSample>,
}

impl MarsDataset {
    /// The `(min, max)` of the power column, used to configure label
    /// encoders.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn power_range(&self) -> (f64, f64) {
        assert!(!self.samples.is_empty(), "empty dataset has no range");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in &self.samples {
            min = min.min(s.power);
            max = max.max(s.power);
        }
        (min, max)
    }

    /// Mean power of samples whose anomaly lies in `[from, to)` radians
    /// (no wrap-around).
    ///
    /// # Panics
    ///
    /// Panics if no sample falls in the window.
    #[must_use]
    pub fn mean_power_in(&self, from: f64, to: f64) -> f64 {
        let window: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| (from..to).contains(&s.mean_anomaly))
            .map(|s| s.power)
            .collect();
        assert!(
            !window.is_empty(),
            "no samples in anomaly window [{from}, {to})"
        );
        window.iter().sum::<f64>() / window.len() as f64
    }

    /// Writes the telemetry as CSV (`mean_anomaly,power`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "mean_anomaly,power")?;
        for s in &self.samples {
            writeln!(writer, "{:.6},{:.3}", s.mean_anomaly, s.power)?;
        }
        Ok(())
    }
}

/// Generates the surrogate telemetry.
///
/// # Panics
///
/// Panics if `config.samples == 0` or `config.noise_std` is invalid.
#[must_use]
pub fn generate(config: &MarsConfig) -> MarsDataset {
    assert!(config.samples > 0, "need at least one sample");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let orbit = Orbit::mars();
    let noise = Normal::new(0.0, config.noise_std).expect("valid noise std");
    let mean_radius = orbit.semi_major_axis();

    let samples = (0..config.samples)
        .map(|_| {
            let mean_anomaly = rng.random::<f64>() * TAU;
            let r = orbit.radius(mean_anomaly);
            // Inverse-square solar flux, referenced to the mean distance.
            let solar = config.solar_reference_power * (mean_radius / r).powi(2);
            // Eclipse seasons: a smooth dip once per orbit, offset from
            // perihelion, plus a weaker second harmonic from thermal load.
            let eclipse =
                -config.eclipse_amplitude * (0.5 + 0.5 * (mean_anomaly - 2.1).cos()).powi(3);
            let thermal = config.thermal_amplitude * (2.0 * mean_anomaly + 0.7).cos();
            let dust = -config.dust_amplitude * dust_attenuation(mean_anomaly);
            let power = solar + eclipse + thermal + dust + noise.sample(&mut rng);
            MarsSample {
                mean_anomaly,
                power,
            }
        })
        .collect();
    MarsDataset { samples }
}

/// Normalized dust attenuation profile over one orbit: builds up linearly
/// from `M = 1.6` to its peak at `M = 5.2`, clears by `M = 6.0`, and stays
/// zero through perihelion. Continuous (and periodic) but strongly
/// asymmetric — the slow-build/fast-clear shape of the Martian dust season.
fn dust_attenuation(mean_anomaly: f64) -> f64 {
    const RISE_START: f64 = 1.6;
    const PEAK: f64 = 5.2;
    const CLEAR: f64 = 6.0;
    let m = mean_anomaly.rem_euclid(TAU);
    if (RISE_START..PEAK).contains(&m) {
        (m - RISE_START) / (PEAK - RISE_START)
    } else if (PEAK..CLEAR).contains(&m) {
        (CLEAR - m) / (CLEAR - PEAK)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirstats::correlation;

    fn data() -> MarsDataset {
        generate(&MarsConfig::default())
    }

    #[test]
    fn anomalies_cover_the_circle() {
        let data = data();
        let mut bins = [0usize; 12];
        for s in &data.samples {
            bins[((s.mean_anomaly / TAU * 12.0) as usize).min(11)] += 1;
        }
        let expected = data.samples.len() / 12;
        for (i, &b) in bins.iter().enumerate() {
            assert!(
                b > expected / 2 && b < expected * 2,
                "bin {i} count {b} vs expected {expected}"
            );
        }
    }

    #[test]
    fn power_depends_circularly_on_anomaly() {
        let data = data();
        let angles: Vec<f64> = data.samples.iter().map(|s| s.mean_anomaly).collect();
        let powers: Vec<f64> = data.samples.iter().map(|s| s.power).collect();
        let r2 = correlation::circular_linear(&angles, &powers).unwrap();
        assert!(r2 > 0.5, "circular-linear R² = {r2}");
    }

    #[test]
    fn perihelion_power_exceeds_aphelion() {
        let data = data();
        let perihelion = data.mean_power_in(0.0, 0.4);
        let aphelion = data.mean_power_in(std::f64::consts::PI - 0.2, std::f64::consts::PI + 0.2);
        assert!(
            perihelion - aphelion > 50.0,
            "perihelion {perihelion} vs aphelion {aphelion}"
        );
    }

    #[test]
    fn power_is_not_a_pure_cosine() {
        // The Kepler + eclipse model is asymmetric: rising and falling
        // halves of the orbit differ. Compare mirrored windows.
        let data = data();
        let rising = data.mean_power_in(1.8, 2.4);
        let falling = data.mean_power_in(TAU - 2.4, TAU - 1.8);
        assert!(
            (rising - falling).abs() > 10.0,
            "rising {rising} vs falling {falling}"
        );
    }

    #[test]
    fn power_range_is_plausible() {
        let (min, max) = data().power_range();
        assert!(min > 300.0 && max < 900.0, "range [{min}, {max}]");
        assert!(max - min > 150.0, "dynamic range too small: {}", max - min);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&MarsConfig {
            samples: 100,
            ..Default::default()
        });
        let b = generate(&MarsConfig {
            samples: 100,
            ..Default::default()
        });
        assert_eq!(a, b);
        let c = generate(&MarsConfig {
            samples: 100,
            seed: 1,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn csv_export_shape() {
        let data = generate(&MarsConfig {
            samples: 50,
            ..Default::default()
        });
        let mut buffer = Vec::new();
        data.write_csv(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), 51);
        assert!(text.starts_with("mean_anomaly,power"));
    }
}
