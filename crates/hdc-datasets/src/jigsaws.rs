//! Synthetic surrogate of the JIGSAWS surgical-gesture dataset.
//!
//! The real JIGSAWS corpus (Gao et al.; Ahmidi et al.) contains kinematic
//! recordings of surgeons performing three training tasks on a da Vinci
//! robot, annotated with 15 gesture labels (G1–G15). The paper classifies
//! gestures from the 18 kinematic variables describing the rotation of the
//! left master tool manipulator and the patient-side manipulator.
//!
//! This surrogate preserves the properties that drive the paper's result:
//!
//! * **18 angular channels** per sample (manipulator orientation angles),
//!   each gesture having a characteristic von Mises signature per channel;
//! * a fraction of gesture signatures deliberately **straddles the ±π wrap
//!   point**, which is precisely where level encodings break and circular
//!   encodings shine;
//! * **eight surgeons** of varying skill (noisier kinematics for novices);
//!   the paper's protocol trains on the experienced surgeon "D" and tests
//!   on the rest;
//! * the three tasks use different **gesture vocabularies**, matching the
//!   real corpus (Suturing 10 gestures, Needle Passing 8, Knot Tying 6).
//!
//! ```
//! use hdc_datasets::jigsaws::{JigsawsConfig, JigsawsTask, TRAIN_SURGEON};
//!
//! let data = JigsawsTask::KnotTying.generate(&JigsawsConfig::default());
//! let (train, test) = data.train_test_split(TRAIN_SURGEON);
//! assert!(!train.is_empty() && !test.is_empty());
//! assert!(train.iter().all(|s| s.surgeon == TRAIN_SURGEON));
//! ```

use dirstats::{angles::wrap, Normal, VonMises};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Number of kinematic channels per sample (matching the paper's 18
/// rotation variables).
pub const CHANNELS: usize = 18;

/// Number of surgeons in the corpus.
pub const SURGEONS: usize = 8;

/// Index of the experienced surgeon ("D") whose trials form the training
/// split in the paper's protocol.
pub const TRAIN_SURGEON: usize = 2;

/// Total number of gesture labels across the corpus (G1–G15).
pub const GESTURES: usize = 15;

/// The three JIGSAWS surgical tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JigsawsTask {
    /// Tying a suture knot.
    KnotTying,
    /// Passing a needle through tissue loops.
    NeedlePassing,
    /// Suturing an incision.
    Suturing,
}

impl JigsawsTask {
    /// All three tasks, in the order of the paper's Table 1.
    pub const ALL: [JigsawsTask; 3] = [
        JigsawsTask::KnotTying,
        JigsawsTask::NeedlePassing,
        JigsawsTask::Suturing,
    ];

    /// Human-readable task name as printed in Table 1.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JigsawsTask::KnotTying => "Knot Tying",
            JigsawsTask::NeedlePassing => "Needle Passing",
            JigsawsTask::Suturing => "Suturing",
        }
    }

    /// The global gesture indices (0-based G1–G15) in this task's
    /// vocabulary, mirroring the real corpus' per-task gesture sets.
    #[must_use]
    pub fn gesture_vocabulary(self) -> &'static [usize] {
        match self {
            JigsawsTask::KnotTying => &[0, 10, 11, 12, 13, 14],
            JigsawsTask::NeedlePassing => &[0, 1, 2, 3, 4, 5, 7, 10],
            JigsawsTask::Suturing => &[0, 1, 2, 3, 4, 5, 7, 8, 9, 10],
        }
    }

    /// Generates the synthetic dataset for this task.
    #[must_use]
    pub fn generate(self, config: &JigsawsConfig) -> JigsawsDataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let signatures =
            GestureSignatures::draw(&mut rng, config.kappa_range, config.gesture_spread);

        // Per-surgeon skill: the training surgeon is experienced (precise),
        // others have increasingly noisy kinematics plus personal offsets.
        let offset_noise = Normal::new(0.0, config.surgeon_offset_std).expect("valid normal");
        let novice_span = (config.max_novice_noise - 1.0).max(0.0);
        let surgeons: Vec<Surgeon> = (0..SURGEONS)
            .map(|s| Surgeon {
                noise_scale: if s == TRAIN_SURGEON {
                    1.0
                } else {
                    1.0 + novice_span * (0.3 + 0.175 * ((s * 7 + 3) % 5) as f64)
                },
                offsets: if s == TRAIN_SURGEON {
                    vec![0.0; CHANNELS]
                } else {
                    (0..CHANNELS)
                        .map(|_| offset_noise.sample(&mut rng))
                        .collect()
                },
            })
            .collect();

        let vocabulary = self.gesture_vocabulary();
        let drift_step = Normal::new(0.0, config.drift_std).expect("valid normal");
        let mut samples = Vec::new();
        for (label, &gesture) in vocabulary.iter().enumerate() {
            for (surgeon_id, surgeon) in surgeons.iter().enumerate() {
                for _ in 0..config.trials_per_surgeon {
                    let mut drift = 0.0;
                    for _ in 0..config.frames_per_trial {
                        drift += drift_step.sample(&mut rng);
                        let angles = (0..CHANNELS)
                            .map(|c| {
                                let (mu, kappa) = signatures.channel(gesture, c);
                                let vm = VonMises::new(
                                    mu + surgeon.offsets[c] + drift,
                                    kappa / (surgeon.noise_scale * surgeon.noise_scale),
                                )
                                .expect("valid von Mises parameters");
                                vm.sample(&mut rng)
                            })
                            .collect();
                        let noisy_label =
                            if config.label_noise > 0.0 && rng.random_bool(config.label_noise) {
                                rng.random_range(0..vocabulary.len())
                            } else {
                                label
                            };
                        samples.push(JigsawsSample {
                            angles,
                            gesture: noisy_label,
                            surgeon: surgeon_id,
                        });
                    }
                }
            }
        }
        JigsawsDataset {
            task: self,
            gesture_count: vocabulary.len(),
            samples,
        }
    }
}

/// Generation parameters for the JIGSAWS surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawsConfig {
    /// Trials recorded per gesture per surgeon.
    pub trials_per_surgeon: usize,
    /// Frames (= classification samples) per trial.
    pub frames_per_trial: usize,
    /// Standard deviation of the per-frame trajectory drift (radians).
    pub drift_std: f64,
    /// Range of von Mises concentrations for gesture signatures; lower
    /// values make gestures angularly broader and harder to separate.
    pub kappa_range: (f64, f64),
    /// Standard deviation of per-surgeon channel offsets (radians). Larger
    /// offsets push test surgeons' angles into quantization bins the
    /// training surgeon never visited — the regime where basis structure
    /// matters.
    pub surgeon_offset_std: f64,
    /// Noise-scale multiplier of the least precise novice surgeon (the
    /// training surgeon is 1.0; others interpolate upward).
    pub max_novice_noise: f64,
    /// Angular spread (radians) of gesture means around each channel's
    /// shared posture anchor. Small spreads make gestures confusable —
    /// distinguishing them requires *fine* angular discrimination, which is
    /// where the choice of basis-hypervector set matters most.
    pub gesture_spread: f64,
    /// Fraction of frames whose label is replaced by another gesture of the
    /// task, modelling the segment-boundary/annotation ambiguity of real
    /// gesture corpora (an accuracy ceiling no encoder can beat).
    pub label_noise: f64,
    /// RNG seed; the same seed regenerates the identical corpus.
    pub seed: u64,
}

impl Default for JigsawsConfig {
    fn default() -> Self {
        Self {
            trials_per_surgeon: 3,
            frames_per_trial: 10,
            drift_std: 0.07,
            kappa_range: (9.0, 18.0),
            surgeon_offset_std: 0.10,
            max_novice_noise: 1.8,
            gesture_spread: 0.55,
            label_noise: 0.08,
            seed: 0x5151,
        }
    }
}

/// One kinematic frame: 18 manipulator orientation angles with its gesture
/// label (index into the task's vocabulary) and performing surgeon.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawsSample {
    /// The 18 orientation angles, wrapped to `[0, 2π)`.
    pub angles: Vec<f64>,
    /// Gesture label, `0..dataset.gesture_count`.
    pub gesture: usize,
    /// Surgeon index, `0..SURGEONS`.
    pub surgeon: usize,
}

/// A generated JIGSAWS-surrogate corpus for one task.
#[derive(Debug, Clone, PartialEq)]
pub struct JigsawsDataset {
    /// The task this corpus belongs to.
    pub task: JigsawsTask,
    /// Number of distinct gesture labels.
    pub gesture_count: usize,
    /// All frames, grouped by gesture then surgeon then trial.
    pub samples: Vec<JigsawsSample>,
}

impl JigsawsDataset {
    /// Number of kinematic channels per sample.
    #[must_use]
    pub fn channels(&self) -> usize {
        CHANNELS
    }

    /// Splits into (train, test) by surgeon: the paper trains on one
    /// surgeon's trials and tests on everyone else's.
    #[must_use]
    pub fn train_test_split(
        &self,
        train_surgeon: usize,
    ) -> (Vec<&JigsawsSample>, Vec<&JigsawsSample>) {
        self.samples
            .iter()
            .partition(|s| s.surgeon == train_surgeon)
    }

    /// Writes the corpus as CSV (`gesture,surgeon,angle_0..angle_17`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        write!(writer, "gesture,surgeon")?;
        for c in 0..CHANNELS {
            write!(writer, ",angle_{c}")?;
        }
        writeln!(writer)?;
        for s in &self.samples {
            write!(writer, "{},{}", s.gesture, s.surgeon)?;
            for a in &s.angles {
                write!(writer, ",{a:.6}")?;
            }
            writeln!(writer)?;
        }
        Ok(())
    }
}

struct Surgeon {
    noise_scale: f64,
    offsets: Vec<f64>,
}

/// Per-gesture, per-channel von Mises parameters.
struct GestureSignatures {
    mus: Vec<f64>,    // GESTURES × CHANNELS
    kappas: Vec<f64>, // GESTURES × CHANNELS
}

impl GestureSignatures {
    fn draw(rng: &mut StdRng, kappa_range: (f64, f64), gesture_spread: f64) -> Self {
        // Each channel has one shared *posture anchor* (the manipulator's
        // typical orientation for that joint during the task); gestures are
        // modest angular deviations around it. This makes classes
        // confusable — exactly like real kinematics, where all gestures of
        // a task share the same workspace posture. A third of the anchors
        // sit right at the wrap point, the regime where circular encodings
        // have the edge.
        let anchors: Vec<f64> = (0..CHANNELS)
            .map(|channel| {
                if channel % 3 == 0 {
                    wrap(rng.random_range(-0.3..0.3))
                } else {
                    rng.random_range(0.0..std::f64::consts::TAU)
                }
            })
            .collect();
        let deviation = Normal::new(0.0, gesture_spread).expect("valid normal");
        let mut mus = Vec::with_capacity(GESTURES * CHANNELS);
        let mut kappas = Vec::with_capacity(GESTURES * CHANNELS);
        for _gesture in 0..GESTURES {
            for &anchor in &anchors {
                mus.push(wrap(anchor + deviation.sample(rng)));
                kappas.push(rng.random_range(kappa_range.0..kappa_range.1));
            }
        }
        Self { mus, kappas }
    }

    fn channel(&self, gesture: usize, channel: usize) -> (f64, f64) {
        let idx = gesture * CHANNELS + channel;
        (self.mus[idx], self.kappas[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirstats::descriptive::mean_resultant_length;

    #[test]
    fn vocabulary_sizes_match_the_corpus() {
        assert_eq!(JigsawsTask::KnotTying.gesture_vocabulary().len(), 6);
        assert_eq!(JigsawsTask::NeedlePassing.gesture_vocabulary().len(), 8);
        assert_eq!(JigsawsTask::Suturing.gesture_vocabulary().len(), 10);
    }

    #[test]
    fn generated_sizes_are_consistent() {
        let config = JigsawsConfig {
            trials_per_surgeon: 2,
            frames_per_trial: 5,
            ..Default::default()
        };
        let data = JigsawsTask::KnotTying.generate(&config);
        assert_eq!(data.gesture_count, 6);
        assert_eq!(data.samples.len(), 6 * SURGEONS * 2 * 5);
        for s in &data.samples {
            assert_eq!(s.angles.len(), CHANNELS);
            assert!(s.gesture < 6);
            assert!(s.surgeon < SURGEONS);
            for &a in &s.angles {
                assert!(
                    (0.0..std::f64::consts::TAU).contains(&a),
                    "angle {a} not wrapped"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = JigsawsConfig {
            trials_per_surgeon: 1,
            frames_per_trial: 3,
            ..Default::default()
        };
        let a = JigsawsTask::Suturing.generate(&config);
        let b = JigsawsTask::Suturing.generate(&config);
        assert_eq!(a, b);
        let different = JigsawsTask::Suturing.generate(&JigsawsConfig {
            seed: 999,
            ..config
        });
        assert_ne!(a, different);
    }

    #[test]
    fn split_by_surgeon_partitions() {
        let data = JigsawsTask::NeedlePassing.generate(&JigsawsConfig {
            trials_per_surgeon: 1,
            frames_per_trial: 4,
            ..Default::default()
        });
        let (train, test) = data.train_test_split(TRAIN_SURGEON);
        assert_eq!(train.len() + test.len(), data.samples.len());
        assert!(train.iter().all(|s| s.surgeon == TRAIN_SURGEON));
        assert!(test.iter().all(|s| s.surgeon != TRAIN_SURGEON));
        // 1 of 8 surgeons in train.
        assert_eq!(train.len() * (SURGEONS - 1), test.len());
    }

    #[test]
    fn gesture_channels_are_concentrated() {
        // Within one gesture and surgeon, a channel's angles cluster
        // (high resultant length); across gestures they disperse.
        let data = JigsawsTask::KnotTying.generate(&JigsawsConfig {
            trials_per_surgeon: 6,
            frames_per_trial: 10,
            ..Default::default()
        });
        let gesture0_ch0: Vec<f64> = data
            .samples
            .iter()
            .filter(|s| s.gesture == 0 && s.surgeon == TRAIN_SURGEON)
            .map(|s| s.angles[0])
            .collect();
        assert!(gesture0_ch0.len() >= 30);
        let r = mean_resultant_length(&gesture0_ch0).unwrap();
        assert!(r > 0.8, "within-gesture concentration R̄ = {r}");

        let all_gestures_ch0: Vec<f64> = data
            .samples
            .iter()
            .filter(|s| s.surgeon == TRAIN_SURGEON)
            .map(|s| s.angles[0])
            .collect();
        let r_all = mean_resultant_length(&all_gestures_ch0).unwrap();
        assert!(r_all < r, "across-gesture dispersion {r_all} < within {r}");
    }

    #[test]
    fn some_signatures_straddle_the_wrap() {
        let data = JigsawsTask::Suturing.generate(&JigsawsConfig {
            trials_per_surgeon: 4,
            frames_per_trial: 10,
            ..Default::default()
        });
        // Count samples whose channel-0 angle is within 0.3 rad of the wrap.
        let near_wrap = data
            .samples
            .iter()
            .filter(|s| s.angles[0] < 0.3 || s.angles[0] > std::f64::consts::TAU - 0.3)
            .count();
        assert!(
            near_wrap > data.samples.len() / 50,
            "wrap-straddling mass: {near_wrap}"
        );
    }

    #[test]
    fn novice_surgeons_are_noisier() {
        let data = JigsawsTask::KnotTying.generate(&JigsawsConfig {
            trials_per_surgeon: 8,
            frames_per_trial: 10,
            ..Default::default()
        });
        let concentration = |surgeon: usize| {
            let angles: Vec<f64> = data
                .samples
                .iter()
                .filter(|s| s.gesture == 1 && s.surgeon == surgeon)
                .map(|s| s.angles[3])
                .collect();
            mean_resultant_length(&angles).unwrap()
        };
        // The experienced training surgeon is at least as concentrated as
        // the noisiest novice.
        let expert = concentration(TRAIN_SURGEON);
        let novices: Vec<f64> = (0..SURGEONS)
            .filter(|&s| s != TRAIN_SURGEON)
            .map(concentration)
            .collect();
        let min_novice = novices.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            expert >= min_novice - 0.05,
            "expert {expert} vs min novice {min_novice}"
        );
    }

    #[test]
    fn csv_export_shape() {
        let data = JigsawsTask::KnotTying.generate(&JigsawsConfig {
            trials_per_surgeon: 1,
            frames_per_trial: 2,
            ..Default::default()
        });
        let mut buffer = Vec::new();
        data.write_csv(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), data.samples.len() + 1);
        assert!(lines[0].starts_with("gesture,surgeon,angle_0"));
        assert_eq!(lines[1].split(',').count(), 2 + CHANNELS);
    }
}
