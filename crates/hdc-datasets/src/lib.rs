//! Synthetic surrogates of the paper's three evaluation datasets.
//!
//! The original data (JIGSAWS surgical kinematics, the UCI Beijing
//! air-quality series, ESA Mars Express telemetry) cannot be redistributed
//! or downloaded in this environment, so this crate generates statistically
//! faithful stand-ins that preserve exactly the structure the paper's
//! experiments exercise — see `DESIGN.md` §3 for the substitution argument:
//!
//! * [`jigsaws`] — per-gesture surgical kinematics: 18 angular channels
//!   drawn from gesture-specific von Mises distributions, several of which
//!   straddle the ±π wrap point; eight surgeons of varying skill; the three
//!   tasks (Knot Tying, Needle Passing, Suturing) with their own gesture
//!   vocabularies.
//! * [`beijing`] — four years of hourly temperature: annual + diurnal
//!   sinusoids, a warming trend, and AR(1) weather noise; features are
//!   (year, day-of-year, hour-of-day), the latter two circular.
//! * [`mars`] — satellite power as a function of the mean anomaly of Mars'
//!   solar orbit, computed through a real Kepler-equation solver
//!   ([`orbit`]) plus eclipse harmonics and Gaussian noise.
//! * [`noise`] — the AR(1) process used by the Beijing generator.
//!
//! All generators are deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use hdc_datasets::jigsaws::{JigsawsConfig, JigsawsTask};
//!
//! let data = JigsawsTask::Suturing.generate(&JigsawsConfig::default());
//! assert_eq!(data.channels(), 18);
//! assert!(data.samples.len() > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beijing;
pub mod jigsaws;
pub mod mars;
pub mod noise;
pub mod orbit;
