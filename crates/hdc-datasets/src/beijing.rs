//! Synthetic surrogate of the Beijing (Aotizhongxin station) hourly
//! temperature series used in the paper's first regression task.
//!
//! The real series (Zhang et al. 2017, UCI repository) spans March 2013 to
//! February 2017 at hourly resolution. The surrogate reproduces the
//! structure the paper's hypothesis rests on — temperature is
//! circular-linearly correlated with **day-of-year** (Earth's orbit) and
//! **hour-of-day** (Earth's rotation), plus a macro warming trend across
//! years:
//!
//! `T(t) = mean + trend·years + annual(doy) + diurnal(hour) + AR(1) noise`
//!
//! ```
//! use hdc_datasets::beijing::{self, BeijingConfig};
//!
//! let data = beijing::generate(&BeijingConfig::default());
//! // Four years of hourly samples.
//! assert_eq!(data.samples.len(), 4 * 365 * 24);
//! // July afternoons are hotter than January nights.
//! let july = data.samples.iter().find(|s| s.day_of_year > 190.0 && s.hour == 14.0).unwrap();
//! let january = data.samples.iter().find(|s| s.day_of_year > 10.0 && s.hour == 4.0).unwrap();
//! assert!(july.temperature > january.temperature);
//! ```

use dirstats::TAU;
use rand::{rngs::StdRng, SeedableRng};

use crate::noise::Ar1;

/// Days per (non-leap) year used by the generator's calendar.
pub const DAYS_PER_YEAR: f64 = 365.0;

/// Generation parameters for the Beijing surrogate.
#[derive(Debug, Clone, PartialEq)]
pub struct BeijingConfig {
    /// Number of years of hourly data.
    pub years: usize,
    /// Long-run mean temperature (°C).
    pub mean_temperature: f64,
    /// Amplitude of the annual cycle (°C).
    pub annual_amplitude: f64,
    /// Amplitude of the diurnal cycle (°C).
    pub diurnal_amplitude: f64,
    /// Linear warming trend (°C per year).
    pub warming_per_year: f64,
    /// Stationary standard deviation of the AR(1) weather noise (°C).
    pub noise_std: f64,
    /// Hour-to-hour autocorrelation of the weather noise.
    pub noise_rho: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BeijingConfig {
    fn default() -> Self {
        Self {
            years: 4,
            mean_temperature: 13.0,
            annual_amplitude: 14.5,
            diurnal_amplitude: 4.0,
            warming_per_year: 0.05,
            noise_std: 3.0,
            noise_rho: 0.95,
            seed: 0xBE11,
        }
    }
}

/// One hourly record of the surrogate series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeijingSample {
    /// Years elapsed since the start of the series (continuous, `0..years`).
    pub year: f64,
    /// Day of the year in `[0, 365)`.
    pub day_of_year: f64,
    /// Hour of the day in `[0, 24)`.
    pub hour: f64,
    /// Temperature (°C) — the regression target.
    pub temperature: f64,
}

/// The generated hourly series.
#[derive(Debug, Clone, PartialEq)]
pub struct BeijingDataset {
    /// Hourly records in chronological order.
    pub samples: Vec<BeijingSample>,
}

impl BeijingDataset {
    /// The `(min, max)` of the temperature column, used to configure label
    /// encoders.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn temperature_range(&self) -> (f64, f64) {
        assert!(!self.samples.is_empty(), "empty dataset has no range");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in &self.samples {
            min = min.min(s.temperature);
            max = max.max(s.temperature);
        }
        (min, max)
    }

    /// Chronological train/test split (`train_fraction` first).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `[0, 1]`.
    #[must_use]
    pub fn temporal_split(
        &self,
        train_fraction: f64,
    ) -> (Vec<&BeijingSample>, Vec<&BeijingSample>) {
        assert!(
            (0.0..=1.0).contains(&train_fraction),
            "train fraction {train_fraction} must lie in [0, 1]"
        );
        let cut = (self.samples.len() as f64 * train_fraction).round() as usize;
        let (a, b) = self.samples.split_at(cut);
        (a.iter().collect(), b.iter().collect())
    }

    /// Writes the series as CSV (`year,day_of_year,hour,temperature`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: std::io::Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "year,day_of_year,hour,temperature")?;
        for s in &self.samples {
            writeln!(
                writer,
                "{:.4},{:.1},{:.1},{:.3}",
                s.year, s.day_of_year, s.hour, s.temperature
            )?;
        }
        Ok(())
    }
}

/// Generates the surrogate series.
///
/// # Panics
///
/// Panics if `config.years == 0` or the noise parameters are invalid.
#[must_use]
pub fn generate(config: &BeijingConfig) -> BeijingDataset {
    assert!(config.years > 0, "need at least one year of data");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut weather = Ar1::with_stationary_std(config.noise_rho, config.noise_std)
        .expect("valid AR(1) parameters");

    let hours = config.years * DAYS_PER_YEAR as usize * 24;
    let samples = (0..hours)
        .map(|h| {
            let hour = (h % 24) as f64;
            let day_of_year = ((h / 24) % DAYS_PER_YEAR as usize) as f64;
            let year = h as f64 / (DAYS_PER_YEAR * 24.0);
            // Coldest around January 15 (day 15), warmest mid-July.
            let annual =
                -config.annual_amplitude * (TAU * (day_of_year - 15.0) / DAYS_PER_YEAR).cos();
            // Coldest around 5 am, warmest around 5 pm.
            let diurnal = -config.diurnal_amplitude * (TAU * (hour - 5.0) / 24.0).cos();
            let temperature = config.mean_temperature
                + config.warming_per_year * year
                + annual
                + diurnal
                + weather.next_value(&mut rng);
            BeijingSample {
                year,
                day_of_year,
                hour,
                temperature,
            }
        })
        .collect();
    BeijingDataset { samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirstats::{angles::to_angle, correlation};

    fn small() -> BeijingDataset {
        generate(&BeijingConfig {
            years: 2,
            ..Default::default()
        })
    }

    #[test]
    fn calendar_fields_are_in_range() {
        let data = small();
        assert_eq!(data.samples.len(), 2 * 365 * 24);
        for s in &data.samples {
            assert!((0.0..24.0).contains(&s.hour));
            assert!((0.0..365.0).contains(&s.day_of_year));
            assert!((0.0..2.0).contains(&s.year));
        }
        // Strictly chronological.
        for w in data.samples.windows(2) {
            assert!(w[1].year >= w[0].year);
        }
    }

    #[test]
    fn seasonal_cycle_dominates() {
        let data = small();
        let summer: Vec<f64> = data
            .samples
            .iter()
            .filter(|s| (170.0..220.0).contains(&s.day_of_year))
            .map(|s| s.temperature)
            .collect();
        let winter: Vec<f64> = data
            .samples
            .iter()
            .filter(|s| s.day_of_year < 30.0 || s.day_of_year > 350.0)
            .map(|s| s.temperature)
            .collect();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&summer) - mean(&winter) > 20.0,
            "seasonal swing too small"
        );
    }

    #[test]
    fn day_of_year_angle_is_circularly_correlated_with_temperature() {
        let data = small();
        let angles: Vec<f64> = data
            .samples
            .iter()
            .map(|s| to_angle(s.day_of_year, 365.0))
            .collect();
        let temps: Vec<f64> = data.samples.iter().map(|s| s.temperature).collect();
        let r2 = correlation::circular_linear(&angles, &temps).unwrap();
        assert!(r2 > 0.7, "circular-linear R² = {r2}");
    }

    #[test]
    fn hour_angle_correlates_within_a_day() {
        // Remove the seasonal component by looking at one week.
        let data = small();
        let week: Vec<&BeijingSample> = data
            .samples
            .iter()
            .filter(|s| (100.0..107.0).contains(&s.day_of_year))
            .collect();
        let angles: Vec<f64> = week.iter().map(|s| to_angle(s.hour, 24.0)).collect();
        let temps: Vec<f64> = week.iter().map(|s| s.temperature).collect();
        let r2 = correlation::circular_linear(&angles, &temps).unwrap();
        assert!(r2 > 0.2, "diurnal circular-linear R² = {r2}");
    }

    #[test]
    fn warming_trend_is_present() {
        let data = generate(&BeijingConfig {
            years: 4,
            warming_per_year: 1.0, // exaggerated for a clean statistical test
            noise_std: 1.0,
            ..Default::default()
        });
        let (first, last) = data.temporal_split(0.5);
        // Compare the same calendar windows (all seasons present in both).
        let mean =
            |xs: &[&BeijingSample]| xs.iter().map(|s| s.temperature).sum::<f64>() / xs.len() as f64;
        assert!(mean(&last) - mean(&first) > 1.0, "warming not detected");
    }

    #[test]
    fn temperature_range_covers_sensible_band() {
        let (min, max) = small().temperature_range();
        assert!(min < -5.0 && min > -35.0, "min = {min}");
        assert!(max > 25.0 && max < 50.0, "max = {max}");
    }

    #[test]
    fn temporal_split_is_chronological() {
        let data = small();
        let (train, test) = data.temporal_split(0.7);
        assert_eq!(train.len() + test.len(), data.samples.len());
        let last_train = train.last().unwrap().year;
        let first_test = test.first().unwrap().year;
        assert!(last_train <= first_test);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&BeijingConfig {
            years: 1,
            ..Default::default()
        });
        let b = generate(&BeijingConfig {
            years: 1,
            ..Default::default()
        });
        assert_eq!(a, b);
        let c = generate(&BeijingConfig {
            years: 1,
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn csv_export_shape() {
        let data = generate(&BeijingConfig {
            years: 1,
            ..Default::default()
        });
        let mut buffer = Vec::new();
        data.write_csv(&mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert_eq!(text.lines().count(), data.samples.len() + 1);
        assert!(text.starts_with("year,day_of_year,hour,temperature"));
    }
}
