//! Two-body orbital mechanics: the Kepler-equation substrate behind the
//! Mars Express surrogate.
//!
//! The *mean anomaly* `M` grows linearly with time; the *eccentric anomaly*
//! `E` solves Kepler's equation `E − e·sin E = M`; the heliocentric radius
//! is `r = a(1 − e·cos E)`. Solar flux at the spacecraft falls off as
//! `1/r²`, which is what couples the circular feature (mean anomaly) to the
//! linear target (power) in the paper's regression task.
//!
//! ```
//! use hdc_datasets::orbit::Orbit;
//!
//! let mars = Orbit::mars();
//! // Perihelion at M = 0, aphelion at M = π.
//! assert!(mars.radius(0.0) < mars.radius(std::f64::consts::PI));
//! ```

/// A Keplerian orbit described by its semi-major axis (astronomical units)
/// and eccentricity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Orbit {
    semi_major_axis: f64,
    eccentricity: f64,
}

impl Orbit {
    /// Creates an orbit.
    ///
    /// # Panics
    ///
    /// Panics unless `semi_major_axis > 0` and `0 ≤ eccentricity < 1`
    /// (closed orbits only).
    #[must_use]
    pub fn new(semi_major_axis: f64, eccentricity: f64) -> Self {
        assert!(
            semi_major_axis.is_finite() && semi_major_axis > 0.0,
            "semi-major axis {semi_major_axis} must be positive"
        );
        assert!(
            (0.0..1.0).contains(&eccentricity),
            "eccentricity {eccentricity} must lie in [0, 1) for a closed orbit"
        );
        Self {
            semi_major_axis,
            eccentricity,
        }
    }

    /// Mars' heliocentric orbit (a = 1.5237 au, e = 0.0934).
    #[must_use]
    pub fn mars() -> Self {
        Self::new(1.523_7, 0.093_4)
    }

    /// The semi-major axis in astronomical units.
    #[must_use]
    pub fn semi_major_axis(&self) -> f64 {
        self.semi_major_axis
    }

    /// The orbital eccentricity.
    #[must_use]
    pub fn eccentricity(&self) -> f64 {
        self.eccentricity
    }

    /// Solves Kepler's equation `E − e·sin E = M` for the eccentric anomaly
    /// by Newton iteration (converges quadratically for `e < 1`; the result
    /// satisfies the equation to better than 1e-12).
    #[must_use]
    pub fn eccentric_anomaly(&self, mean_anomaly: f64) -> f64 {
        let m = mean_anomaly.rem_euclid(std::f64::consts::TAU);
        let e = self.eccentricity;
        // Standard starting guess: E₀ = M + e·sin(M).
        let mut big_e = m + e * m.sin();
        for _ in 0..32 {
            let f = big_e - e * big_e.sin() - m;
            let fp = 1.0 - e * big_e.cos();
            let step = f / fp;
            big_e -= step;
            if step.abs() < 1e-14 {
                break;
            }
        }
        big_e
    }

    /// The heliocentric distance `r = a(1 − e·cos E)` at a given mean
    /// anomaly (astronomical units).
    #[must_use]
    pub fn radius(&self, mean_anomaly: f64) -> f64 {
        let big_e = self.eccentric_anomaly(mean_anomaly);
        self.semi_major_axis * (1.0 - self.eccentricity * big_e.cos())
    }

    /// The true anomaly `ν` (angle from perihelion as seen from the sun) at
    /// a given mean anomaly, in `[0, 2π)`.
    #[must_use]
    pub fn true_anomaly(&self, mean_anomaly: f64) -> f64 {
        let big_e = self.eccentric_anomaly(mean_anomaly);
        let e = self.eccentricity;
        let nu = 2.0
            * ((1.0 + e).sqrt() * (big_e / 2.0).sin())
                .atan2((1.0 - e).sqrt() * (big_e / 2.0).cos());
        nu.rem_euclid(std::f64::consts::TAU)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::{PI, TAU};

    #[test]
    fn circular_orbit_is_trivial() {
        let orbit = Orbit::new(1.0, 0.0);
        for m in [0.0, 1.0, PI, 5.0] {
            assert!((orbit.eccentric_anomaly(m) - m.rem_euclid(TAU)).abs() < 1e-12);
            assert!((orbit.radius(m) - 1.0).abs() < 1e-12);
            assert!((orbit.true_anomaly(m) - m.rem_euclid(TAU)).abs() < 1e-9);
        }
    }

    #[test]
    fn perihelion_and_aphelion() {
        let mars = Orbit::mars();
        let a = mars.semi_major_axis();
        let e = mars.eccentricity();
        assert!(
            (mars.radius(0.0) - a * (1.0 - e)).abs() < 1e-9,
            "perihelion"
        );
        assert!((mars.radius(PI) - a * (1.0 + e)).abs() < 1e-9, "aphelion");
    }

    #[test]
    fn high_eccentricity_converges() {
        let comet = Orbit::new(10.0, 0.95);
        for i in 0..50 {
            let m = TAU * i as f64 / 50.0;
            let big_e = comet.eccentric_anomaly(m);
            let residual = big_e - 0.95 * big_e.sin() - m.rem_euclid(TAU);
            assert!(residual.abs() < 1e-10, "M={m} residual={residual}");
        }
    }

    #[test]
    fn radius_bounds() {
        let mars = Orbit::mars();
        let a = mars.semi_major_axis();
        let e = mars.eccentricity();
        for i in 0..100 {
            let m = TAU * i as f64 / 100.0;
            let r = mars.radius(m);
            assert!(r >= a * (1.0 - e) - 1e-12 && r <= a * (1.0 + e) + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "eccentricity")]
    fn rejects_open_orbits() {
        let _ = Orbit::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_degenerate_axis() {
        let _ = Orbit::new(0.0, 0.5);
    }

    proptest! {
        #[test]
        fn prop_kepler_equation_holds(m in 0.0f64..TAU, e in 0.0f64..0.9) {
            let orbit = Orbit::new(1.0, e);
            let big_e = orbit.eccentric_anomaly(m);
            prop_assert!((big_e - e * big_e.sin() - m).abs() < 1e-9);
        }

        #[test]
        fn prop_true_anomaly_in_range(m in 0.0f64..TAU) {
            let nu = Orbit::mars().true_anomaly(m);
            prop_assert!((0.0..TAU).contains(&nu));
        }
    }
}
