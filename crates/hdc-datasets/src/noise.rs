//! Noise processes for synthetic time series.

use dirstats::Normal;
use rand::Rng;

/// A first-order autoregressive process `x_t = ρ·x_{t−1} + ε_t`,
/// `ε_t ~ N(0, σ_ε²)`, used to give the Beijing surrogate realistic weather
/// autocorrelation.
///
/// # Example
///
/// ```
/// use hdc_datasets::noise::Ar1;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// // Stationary standard deviation 3.0 with strong hour-to-hour memory.
/// let mut weather = Ar1::with_stationary_std(0.95, 3.0)?;
/// let x0 = weather.next_value(&mut rng);
/// let x1 = weather.next_value(&mut rng);
/// // Consecutive values are close relative to the stationary spread.
/// assert!((x1 - x0).abs() < 6.0);
/// # Ok::<(), dirstats::DirStatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ar1 {
    rho: f64,
    innovation: Normal,
    state: f64,
}

impl Ar1 {
    /// Creates an AR(1) process with autocorrelation `rho ∈ (−1, 1)` and
    /// innovation standard deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`dirstats::DirStatsError`] if `rho` is outside `(−1, 1)` or
    /// `sigma` is invalid.
    pub fn new(rho: f64, sigma: f64) -> Result<Self, dirstats::DirStatsError> {
        if !rho.is_finite() || rho.abs() >= 1.0 {
            return Err(dirstats::DirStatsError::InvalidParameter {
                name: "rho",
                value: rho,
            });
        }
        Ok(Self {
            rho,
            innovation: Normal::new(0.0, sigma)?,
            state: 0.0,
        })
    }

    /// Creates an AR(1) process whose *stationary* standard deviation is
    /// `stationary_std` (innovations are scaled by `sqrt(1 − ρ²)`).
    ///
    /// # Errors
    ///
    /// Returns [`dirstats::DirStatsError`] for invalid parameters.
    pub fn with_stationary_std(
        rho: f64,
        stationary_std: f64,
    ) -> Result<Self, dirstats::DirStatsError> {
        let sigma = stationary_std * (1.0 - rho * rho).max(0.0).sqrt();
        Self::new(rho, sigma)
    }

    /// The autocorrelation coefficient `ρ`.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Advances the process one step and returns the new value.
    pub fn next_value(&mut self, rng: &mut impl Rng) -> f64 {
        self.state = self.rho * self.state + self.innovation.sample(rng);
        self.state
    }

    /// Generates `n` consecutive values.
    pub fn series(&mut self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n).map(|_| self.next_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn stationary_std_matches_request() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut process = Ar1::with_stationary_std(0.9, 2.0).unwrap();
        // Burn in, then measure.
        let _ = process.series(500, &mut rng);
        let xs = process.series(30_000, &mut rng);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.25, "std = {}", var.sqrt());
    }

    #[test]
    fn autocorrelation_matches_rho() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut process = Ar1::with_stationary_std(0.8, 1.0).unwrap();
        let _ = process.series(500, &mut rng);
        let xs = process.series(30_000, &mut rng);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        let cov = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        assert!((cov / var - 0.8).abs() < 0.05, "rho_hat = {}", cov / var);
    }

    #[test]
    fn zero_rho_is_white_noise() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut process = Ar1::new(0.0, 1.0).unwrap();
        let xs = process.series(10_000, &mut rng);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05);
        assert_eq!(process.rho(), 0.0);
    }

    #[test]
    fn rejects_nonstationary_rho() {
        assert!(Ar1::new(1.0, 1.0).is_err());
        assert!(Ar1::new(-1.5, 1.0).is_err());
        assert!(Ar1::new(f64::NAN, 1.0).is_err());
        assert!(Ar1::new(0.5, -1.0).is_err());
    }
}
