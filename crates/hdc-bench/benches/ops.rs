//! Microbenchmarks of the three HDC operations plus similarity search —
//! the dimension-independent primitives whose throughput underpins the
//! paper's efficiency narrative (§2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_core::{BinaryHypervector, MajorityAccumulator};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xBE);
    let mut group = c.benchmark_group("ops");
    for dim in [1_024usize, 10_000, 32_768] {
        let a = BinaryHypervector::random(dim, &mut rng);
        let b = BinaryHypervector::random(dim, &mut rng);

        group.bench_with_input(BenchmarkId::new("bind", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).bind(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("hamming", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).hamming(black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("permute", dim), &dim, |bencher, _| {
            bencher.iter(|| black_box(&a).permute(black_box(37)));
        });
        group.bench_with_input(BenchmarkId::new("accumulate", dim), &dim, |bencher, _| {
            bencher.iter(|| {
                let mut acc = MajorityAccumulator::new(dim);
                acc.push(black_box(&a));
                acc.push(black_box(&b));
                acc
            });
        });
    }
    group.finish();
}

fn bench_similarity_search(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xBF);
    let dim = 10_000;
    let mut group = c.benchmark_group("similarity_search");
    for candidates in [16usize, 128, 1_024] {
        let items: Vec<BinaryHypervector> = (0..candidates)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect();
        let query = items[candidates / 2].corrupt(0.2, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("nearest", candidates),
            &candidates,
            |bencher, _| {
                bencher
                    .iter(|| hdc_core::similarity::nearest(black_box(&query), black_box(&items)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ops, bench_similarity_search);
criterion_main!(benches);
