//! Batched vs per-sample execution at the paper's dimensionality
//! (d = 10,000): the headline numbers of the batched execution layer.
//!
//! Three comparisons, each `per_sample` (the pre-batch serial loop) against
//! `batched` (the arena + worker-pool path, bit-identical by construction):
//!
//! * **encode** — `ScalarEncoder` per-sample clones vs `Encoder::encode_batch`
//!   into one contiguous arena,
//! * **predict** — `CentroidClassifier` serial `predict_batch` loop vs the
//!   parallel `predict_rows` over the arena,
//! * **fit** — serial `CentroidClassifier::fit` vs the parallel `fit_batch`.
//!
//! The parallel speedup scales with available cores (the acceptance target
//! is ≥ 4× for `predict` on an 8-core runner); on a single core the batched
//! path falls back to the caller thread with no spawn overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_core::{BinaryHypervector, HypervectorBatch};
use hdc_encode::{Encoder, ScalarEncoder};
use hdc_learn::CentroidClassifier;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

const DIM: usize = 10_000;
const BATCH: usize = 256;
const CLASSES: usize = 16;

fn bench_encode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let encoder = ScalarEncoder::with_levels(0.0, 1.0, 64, DIM, &mut rng).expect("valid");
    let values: Vec<f64> = (0..BATCH).map(|_| rng.random_range(0.0f64..1.0)).collect();

    let mut group = c.benchmark_group("batch_encode");
    group.bench_with_input(
        BenchmarkId::new("per_sample", BATCH),
        &values,
        |bencher, values| {
            bencher.iter(|| {
                let encoded: Vec<BinaryHypervector> = values
                    .iter()
                    .map(|&x| black_box(&encoder).encode(x).clone())
                    .collect();
                encoded
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched", BATCH),
        &values,
        |bencher, values| {
            bencher.iter(|| black_box(&encoder).encode_batch(black_box(values)));
        },
    );
    group.finish();
}

fn setup_classifier(rng: &mut StdRng) -> (CentroidClassifier, Vec<BinaryHypervector>) {
    let protos: Vec<BinaryHypervector> = (0..CLASSES)
        .map(|_| BinaryHypervector::random(DIM, rng))
        .collect();
    let train: Vec<(BinaryHypervector, usize)> = (0..CLASSES * 8)
        .map(|i| (protos[i % CLASSES].corrupt(0.25, rng), i % CLASSES))
        .collect();
    let model = CentroidClassifier::fit(train.iter().map(|(h, l)| (h, *l)), CLASSES, DIM, rng)
        .expect("valid training setup");
    let queries: Vec<BinaryHypervector> = (0..BATCH)
        .map(|i| protos[i % CLASSES].corrupt(0.25, rng))
        .collect();
    (model, queries)
}

fn bench_predict(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xF17);
    let (model, queries) = setup_classifier(&mut rng);
    let arena = HypervectorBatch::from_vectors(&queries).expect("non-empty");

    let mut group = c.benchmark_group("batch_predict");
    group.bench_with_input(
        BenchmarkId::new("per_sample", BATCH),
        &queries,
        |bencher, queries| {
            bencher.iter(|| black_box(&model).predict_batch(black_box(queries)));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched", BATCH),
        &arena,
        |bencher, arena| {
            bencher.iter(|| black_box(&model).predict_rows(black_box(arena)));
        },
    );
    group.finish();
}

fn bench_fit(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x0F17);
    let samples: Vec<BinaryHypervector> = (0..BATCH)
        .map(|_| BinaryHypervector::random(DIM, &mut rng))
        .collect();
    let labels: Vec<usize> = (0..BATCH).map(|i| i % CLASSES).collect();
    let arena = HypervectorBatch::from_vectors(&samples).expect("non-empty");

    let mut group = c.benchmark_group("batch_fit");
    group.bench_with_input(
        BenchmarkId::new("per_sample", BATCH),
        &samples,
        |bencher, samples| {
            bencher.iter(|| {
                let mut fit_rng = StdRng::seed_from_u64(7);
                CentroidClassifier::fit(
                    samples.iter().zip(labels.iter().copied()),
                    CLASSES,
                    DIM,
                    &mut fit_rng,
                )
                .expect("valid")
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched", BATCH),
        &arena,
        |bencher, arena| {
            bencher.iter(|| {
                let mut fit_rng = StdRng::seed_from_u64(7);
                CentroidClassifier::fit_batch(black_box(arena), &labels, CLASSES, &mut fit_rng)
                    .expect("valid")
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_encode, bench_predict, bench_fit);
criterion_main!(benches);
