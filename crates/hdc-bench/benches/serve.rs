//! Serving-layer benchmarks: consistent-hash routing, sharded vs unsharded
//! batched prediction, and the regression integer readout.
//!
//! * **serve_route** — grouping a keyed batch by owning shard (the pure
//!   routing overhead a fleet pays before any prediction runs).
//! * **serve_predict** — `ShardedModel::predict_batch` (route + per-shard
//!   sub-batches + per-shard `predict_rows` + merge) against the unsharded
//!   `predict_rows` baseline, at 1/2/4 shards. Outputs are bit-identical by
//!   construction; the delta is the cost of the serving indirection.
//! * **regression_readout** — `RegressionModel` integer-readout prediction.
//!   Since PR 3 the per-query score is computed by the fused
//!   `kernels::masked_signed_sum` walk with **zero** per-query heap
//!   allocations (the old path materialized a `Vec<i64>` of flipped
//!   counters per query); the bench tracks that hot path.
//! * **serve_microbatch** — the PR 4 runtime: 256 concurrent-style
//!   predictions pushed through the ingestion queue at micro-batch sizes
//!   1/16/256, against the direct `predict_encoded` baseline. The delta at
//!   size 1 is the full per-request queue+reply overhead; growing the batch
//!   size amortizes it.
//! * **serve_cluster** — the PR 6 multi-process tier: a 256-row keyed
//!   batch served by the direct model, the in-process 3-shard
//!   `ShardedModel`, a `ClusterRouter` over three in-process runtimes
//!   (`LocalShard`, queue cost but no wire), and a `ClusterRouter` over
//!   three loopback-TCP shard servers (`RemoteShard`, full wire frames).
//!   All four are bit-identical by construction; the deltas price the
//!   runtime queue and the TCP hop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_core::{BinaryHypervector, HypervectorBatch};
use hdc_encode::{Radians, ScalarEncoder};
use hdc_learn::{CentroidClassifier, RegressionModel};
use hdc_serve::{Basis, BatchPolicy, Enc, Model, Pipeline, Runtime, RuntimeConfig, ShardedModel};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

const DIM: usize = 10_000;
const BATCH: usize = 256;
const CLASSES: usize = 16;

fn setup(rng: &mut StdRng) -> (CentroidClassifier, HypervectorBatch, Vec<String>) {
    let protos: Vec<BinaryHypervector> = (0..CLASSES)
        .map(|_| BinaryHypervector::random(DIM, rng))
        .collect();
    let classifier = CentroidClassifier::from_class_vectors(protos.clone()).expect("non-empty");
    let queries: Vec<BinaryHypervector> = (0..BATCH)
        .map(|i| protos[i % CLASSES].corrupt(0.25, rng))
        .collect();
    let arena = HypervectorBatch::from_vectors(&queries).expect("non-empty");
    let keys: Vec<String> = (0..BATCH).map(|i| format!("session-{i}")).collect();
    (classifier, arena, keys)
}

fn bench_route(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x5E12);
    let (classifier, _, keys) = setup(&mut rng);
    let fleet: ShardedModel<String> = ShardedModel::new(classifier, DIM, 4, 1).expect("valid");

    let mut group = c.benchmark_group("serve_route");
    group.bench_with_input(BenchmarkId::new("ring_lookup", BATCH), &keys, |b, keys| {
        b.iter(|| black_box(&fleet).route(black_box(keys)));
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x5E4E);
    let (classifier, arena, keys) = setup(&mut rng);

    let mut group = c.benchmark_group("serve_predict");
    group.bench_with_input(BenchmarkId::new("unsharded", BATCH), &arena, |b, arena| {
        b.iter(|| classifier.predict_rows(black_box(arena)));
    });
    for shards in [1usize, 2, 4] {
        let fleet: ShardedModel<String> =
            ShardedModel::new(classifier.clone(), DIM, shards, 1).expect("valid");
        assert_eq!(
            fleet.predict_batch(&keys, &arena).expect("routable"),
            classifier.predict_rows(&arena),
            "sharded serving must stay bit-identical"
        );
        group.bench_with_input(
            BenchmarkId::new(format!("sharded_{shards}"), BATCH),
            &arena,
            |b, arena| {
                b.iter(|| {
                    black_box(&fleet)
                        .predict_batch(black_box(&keys), black_box(arena))
                        .expect("routable")
                });
            },
        );
    }
    group.finish();
}

fn bench_regression_readout(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x4EAD);
    let input = ScalarEncoder::with_levels(0.0, 1.0, 64, DIM, &mut rng).expect("valid");
    let label = ScalarEncoder::with_levels(0.0, 1.0, 64, DIM, &mut rng).expect("valid");
    let model = RegressionModel::fit(
        (0..200).map(|i| {
            let x = i as f64 / 199.0;
            (input.encode(x), x)
        }),
        label,
        &mut rng,
    )
    .expect("valid");
    let queries: Vec<BinaryHypervector> = (0..64)
        .map(|i| input.encode(i as f64 / 63.0).corrupt(0.05, &mut rng))
        .collect();
    let arena = HypervectorBatch::from_vectors(&queries).expect("non-empty");

    let mut group = c.benchmark_group("regression_readout");
    group.bench_with_input(
        BenchmarkId::new("integer_predict_rows", queries.len()),
        &arena,
        |b, arena| {
            b.iter(|| black_box(&model).predict_rows(black_box(arena)));
        },
    );
    group.finish();
}

/// The readout kernels head to head, outside the model: the pre-PR 3 path
/// (materialize a flipped `Vec<i64>` per query, then sum it over each
/// label's set bits) against the PR 3 scheme (per-label counter sums
/// precomputed once at model build, one `kernels::masked_sum` intersection
/// walk per label at query time). Same integer scores, zero per-query
/// allocations, and only the `L ∧ q` bits (≈ d/4) visited per label.
fn bench_readout_kernels(c: &mut Criterion) {
    use hdc_core::{kernels, MajorityAccumulator};

    let mut rng = StdRng::seed_from_u64(0x4EA2);
    let labels: Vec<BinaryHypervector> = (0..64)
        .map(|_| BinaryHypervector::random(DIM, &mut rng))
        .collect();
    let mut acc = MajorityAccumulator::new(DIM);
    for _ in 0..200 {
        acc.push(&BinaryHypervector::random(DIM, &mut rng));
    }
    let counts = acc.counts().to_vec();
    let query = BinaryHypervector::random(DIM, &mut rng);

    let flip_then_sum = |query: &BinaryHypervector| -> i64 {
        let mut signed: Vec<i64> = counts.iter().map(|&c| i64::from(c)).collect();
        kernels::for_each_set_bit(query.as_words(), |i| signed[i] = -signed[i]);
        labels
            .iter()
            .map(|label| {
                let mut sum = 0i64;
                kernels::for_each_set_bit(label.as_words(), |i| sum += signed[i]);
                sum
            })
            .max()
            .expect("non-empty labels")
    };
    // The query-independent half of the score, precomputed exactly as
    // `RegressionTrainer::finish_with` does.
    let label_sums: Vec<i64> = labels
        .iter()
        .map(|label| {
            let mut sum = 0i64;
            kernels::for_each_set_bit(label.as_words(), |i| sum += i64::from(counts[i]));
            sum
        })
        .collect();
    let intersection_walk = |query: &BinaryHypervector| -> i64 {
        labels
            .iter()
            .zip(&label_sums)
            .map(|(label, &label_sum)| {
                label_sum - 2 * kernels::masked_sum(&counts, label.as_words(), query.as_words())
            })
            .max()
            .expect("non-empty labels")
    };
    assert_eq!(
        flip_then_sum(&query),
        intersection_walk(&query),
        "kernels must agree"
    );

    let mut group = c.benchmark_group("readout_kernel");
    group.bench_with_input(
        BenchmarkId::new("flip_then_sum", labels.len()),
        &query,
        |b, query| b.iter(|| flip_then_sum(black_box(query))),
    );
    group.bench_with_input(
        BenchmarkId::new("precomputed_masked_sum", labels.len()),
        &query,
        |b, query| b.iter(|| intersection_walk(black_box(query))),
    );
    group.finish();
}

/// The PR 7 coarse-to-fine value readout against the exhaustive
/// per-label walk it replaces. Both paths are bit-identical (asserted
/// below and property-tested in `end_to_end_regression`); the pruned
/// path pays one coarse prefix pass over every label, then either a
/// margin-certified shortlist walk or one chain-incremental sweep of the
/// tail — instead of `levels` full masked-sum walks per query.
fn bench_value_readout_pruned(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0x9A0E);
    let input = ScalarEncoder::with_levels(0.0, 1.0, 64, DIM, &mut rng).expect("valid");
    let label = ScalarEncoder::with_levels(0.0, 1.0, 64, DIM, &mut rng).expect("valid");
    let model = RegressionModel::fit(
        (0..200).map(|i| {
            let x = i as f64 / 199.0;
            (input.encode(x), x)
        }),
        label,
        &mut rng,
    )
    .expect("valid");
    assert!(
        model.is_pruned(),
        "a d=10k, 64-level model must clear the pruning gate"
    );
    let queries: Vec<BinaryHypervector> = (0..64)
        .map(|i| input.encode(i as f64 / 63.0).corrupt(0.05, &mut rng))
        .collect();
    for query in &queries {
        assert_eq!(
            model.predict(query),
            model.predict_row_full(query.view()),
            "pruned readout must stay bit-identical"
        );
    }

    let mut group = c.benchmark_group("value_readout_pruned");
    group.bench_with_input(
        BenchmarkId::new("full_walk", queries.len()),
        &queries,
        |b, queries| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| black_box(&model).predict_row_full(black_box(q).view()))
                    .sum::<f64>()
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("coarse_to_fine", queries.len()),
        &queries,
        |b, queries| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| black_box(&model).predict(black_box(q)))
                    .sum::<f64>()
            });
        },
    );
    group.finish();
}

/// Builds the trained angle model the runtime bench serves (deterministic
/// per seed, so every spawned runtime is bit-identical).
fn runtime_model() -> Model<Radians> {
    let mut model = Pipeline::builder(DIM)
        .seed(0x5EBE)
        .classes(CLASSES)
        .basis(Basis::Circular { m: 48, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(i as f64 / 4.0, 24.0))
        .collect();
    let labels: Vec<usize> = (0..96).map(|i| i % CLASSES).collect();
    model
        .fit_batch(&hours, &labels)
        .expect("valid training set");
    model
}

/// 256 keyed requests through the runtime's ingestion queue at micro-batch
/// sizes 1/16/256, vs the direct batched predict. Requests/sec =
/// `BATCH / (ns_per_iter · 1e-9)`.
fn bench_microbatch(c: &mut Criterion) {
    let model = runtime_model();
    let inputs: Vec<Radians> = (0..BATCH)
        .map(|i| Radians::periodic(i as f64 * 0.173, 24.0))
        .collect();
    let arena = model.encode_batch(&inputs);
    let expected = model.predict_encoded(&arena);
    let pairs: Vec<(String, BinaryHypervector)> = arena
        .rows()
        .enumerate()
        .map(|(i, row)| (format!("session-{i}"), row.to_hypervector()))
        .collect();

    let mut group = c.benchmark_group("serve_microbatch");
    group.bench_with_input(BenchmarkId::new("direct", BATCH), &arena, |b, arena| {
        b.iter(|| black_box(&model).predict_encoded(black_box(arena)));
    });
    let mut runtimes = Vec::new();
    for max_batch in [1usize, 16, 256] {
        let runtime = Runtime::spawn(
            runtime_model(),
            RuntimeConfig {
                shards: 4,
                policy: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_micros(200),
                },
                refresh_every: 0,
                ..RuntimeConfig::default()
            },
        )
        .expect("valid runtime");
        let handle = runtime.handle();
        let served = handle
            .predict_encoded_many(pairs.clone())
            .expect("runtime is live");
        assert_eq!(
            served.iter().map(|p| p.label).collect::<Vec<_>>(),
            expected,
            "the runtime must stay bit-identical to the direct model"
        );
        group.bench_with_input(
            BenchmarkId::new(format!("queue_{max_batch}"), BATCH),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    black_box(&handle)
                        .predict_encoded_many(black_box(pairs.clone()))
                        .expect("runtime is live")
                });
            },
        );
        runtimes.push(runtime);
    }
    group.finish();
    for runtime in runtimes {
        runtime.shutdown();
    }
}

/// Builds the trained regression model the value-serving and snapshot
/// benches use (deterministic per seed).
fn value_model() -> Model<Radians> {
    let mut model = Pipeline::builder(DIM)
        .seed(0x5A1E)
        .regression(0.0, 24.0, 48)
        .basis(Basis::Circular { m: 48, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid pipeline");
    let hours: Vec<Radians> = (0..96)
        .map(|i| Radians::periodic(i as f64 / 4.0, 24.0))
        .collect();
    let values: Vec<f64> = (0..96).map(|i| i as f64 / 4.0).collect();
    model
        .fit_value_batch(&hours, &values)
        .expect("valid training set");
    model
}

/// The PR 5 regression serving path: 256 keyed `predict_value` requests
/// through the ingestion queue at micro-batch sizes 1/16/256, vs the
/// direct batched value predict. Same protocol as `serve_microbatch`, but
/// every answer is an integer-readout score over the label grid instead of
/// a nearest-class-vector search.
fn bench_value_microbatch(c: &mut Criterion) {
    let model = value_model();
    let inputs: Vec<Radians> = (0..BATCH)
        .map(|i| Radians::periodic(i as f64 * 0.173, 24.0))
        .collect();
    let arena = model.encode_batch(&inputs);
    let expected = model.predict_values_encoded(&arena);
    let pairs: Vec<(String, BinaryHypervector)> = arena
        .rows()
        .enumerate()
        .map(|(i, row)| (format!("station-{i}"), row.to_hypervector()))
        .collect();

    let mut group = c.benchmark_group("serve_value_microbatch");
    group.bench_with_input(BenchmarkId::new("direct", BATCH), &arena, |b, arena| {
        b.iter(|| black_box(&model).predict_values_encoded(black_box(arena)));
    });
    let mut runtimes = Vec::new();
    for max_batch in [1usize, 16, 256] {
        let runtime = Runtime::spawn(
            value_model(),
            RuntimeConfig {
                shards: 4,
                policy: BatchPolicy {
                    max_batch,
                    max_wait: Duration::from_micros(200),
                },
                refresh_every: 0,
                ..RuntimeConfig::default()
            },
        )
        .expect("valid runtime");
        let handle = runtime.handle();
        let served = handle
            .predict_value_encoded_many(pairs.clone())
            .expect("runtime is live");
        assert_eq!(
            served.iter().map(|p| p.value).collect::<Vec<_>>(),
            expected,
            "the runtime must stay bit-identical to the direct model"
        );
        group.bench_with_input(
            BenchmarkId::new(format!("queue_{max_batch}"), BATCH),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    black_box(&handle)
                        .predict_value_encoded_many(black_box(pairs.clone()))
                        .expect("runtime is live")
                });
            },
        );
        runtimes.push(runtime);
    }
    group.finish();
    for runtime in runtimes {
        runtime.shutdown();
    }
}

/// The multi-process cluster tier against its in-process baselines: the
/// same 256-row keyed batch through the direct model, the in-process
/// 3-shard fleet, a router over three local runtimes, and a router over
/// three loopback-TCP shard servers. Every path must stay bit-identical —
/// the benchmark prices the routing indirection, never a different answer.
fn bench_cluster(c: &mut Criterion) {
    use hdc_serve::{ClusterRouter, LocalShard, RemoteShard, RingConfig, Server, ShardBackend};

    const SHARDS: usize = 3;
    let model = runtime_model();
    let inputs: Vec<Radians> = (0..BATCH)
        .map(|i| Radians::periodic(i as f64 * 0.173, 24.0))
        .collect();
    let arena = model.encode_batch(&inputs);
    let expected = model.predict_encoded(&arena);
    let keys: Vec<String> = (0..BATCH).map(|i| format!("session-{i}")).collect();
    let pairs: Vec<(String, BinaryHypervector)> = keys
        .iter()
        .cloned()
        .zip(arena.rows().map(|row| row.to_hypervector()))
        .collect();

    let mut group = c.benchmark_group("serve_cluster");
    group.bench_with_input(BenchmarkId::new("direct", BATCH), &arena, |b, arena| {
        b.iter(|| black_box(&model).predict_encoded(black_box(arena)));
    });

    let fleet: ShardedModel<String> =
        ShardedModel::from_model(&model, SHARDS, 0).expect("valid fleet");
    assert_eq!(
        fleet.predict_batch(&keys, &arena).expect("routable"),
        expected,
        "the in-process fleet must stay bit-identical"
    );
    group.bench_with_input(
        BenchmarkId::new(format!("sharded_inproc_{SHARDS}"), BATCH),
        &arena,
        |b, arena| {
            b.iter(|| {
                black_box(&fleet)
                    .predict_batch(black_box(&keys), black_box(arena))
                    .expect("routable")
            });
        },
    );

    // Router over in-process runtimes: queue cost, no wire.
    let local_runtimes: Vec<_> = (0..SHARDS)
        .map(|i| {
            Runtime::spawn(
                runtime_model(),
                RuntimeConfig {
                    name: format!("local-{i}"),
                    refresh_every: 0,
                    ..RuntimeConfig::default()
                },
            )
            .expect("valid runtime")
        })
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = local_runtimes
        .iter()
        .map(|runtime| Box::new(LocalShard::new(runtime.handle())) as Box<dyn ShardBackend>)
        .collect();
    let mut router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    let served = router.predict_batch(&pairs).expect("routable");
    assert_eq!(
        served.iter().map(|p| p.label).collect::<Vec<_>>(),
        expected,
        "the local-shard cluster must stay bit-identical"
    );
    group.bench_with_input(
        BenchmarkId::new(format!("router_local_{SHARDS}"), BATCH),
        &pairs,
        |b, pairs| {
            b.iter(|| router.predict_batch(black_box(pairs)).expect("routable"));
        },
    );
    drop(router);

    // Router over loopback-TCP shard servers: full wire frames per hop.
    let remote_shards: Vec<_> = (0..SHARDS)
        .map(|i| {
            let runtime = Runtime::spawn(
                runtime_model(),
                RuntimeConfig {
                    name: format!("remote-{i}"),
                    refresh_every: 0,
                    ..RuntimeConfig::default()
                },
            )
            .expect("valid runtime");
            let server = Server::spawn("127.0.0.1:0", runtime.handle()).expect("ephemeral port");
            (runtime, server)
        })
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = remote_shards
        .iter()
        .map(|(_, server)| {
            let shard =
                RemoteShard::connect(&server.local_addr().to_string()).expect("loopback connect");
            Box::new(shard) as Box<dyn ShardBackend>
        })
        .collect();
    let mut router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");
    let served = router.predict_batch(&pairs).expect("routable");
    assert_eq!(
        served.iter().map(|p| p.label).collect::<Vec<_>>(),
        expected,
        "the TCP cluster must stay bit-identical"
    );
    group.bench_with_input(
        BenchmarkId::new(format!("router_remote_{SHARDS}"), BATCH),
        &pairs,
        |b, pairs| {
            b.iter(|| router.predict_batch(black_box(pairs)).expect("routable"));
        },
    );
    group.finish();

    drop(router);
    for runtime in local_runtimes {
        runtime.shutdown();
    }
    for (runtime, server) in remote_shards {
        server.shutdown();
        runtime.shutdown();
    }
}

/// The PR 7 concurrent router fan-out against the serial mode it
/// replaces as the default: the same 256-row keyed batch through a
/// 3-`LocalShard` router with `FanOut::Serial` and `FanOut::Concurrent`.
/// Answers are bit-identical in both modes (asserted); the delta is the
/// overlap of the per-shard queue waits. On a single-core runner the
/// win is bounded by how much of each shard call is genuine waiting —
/// the loopback-TCP and multi-core cases are where it widens.
fn bench_router_concurrent(c: &mut Criterion) {
    use hdc_serve::{ClusterRouter, FanOut, LocalShard, RingConfig, ShardBackend};

    const SHARDS: usize = 3;
    let model = runtime_model();
    let inputs: Vec<Radians> = (0..BATCH)
        .map(|i| Radians::periodic(i as f64 * 0.173, 24.0))
        .collect();
    let arena = model.encode_batch(&inputs);
    let expected = model.predict_encoded(&arena);
    let pairs: Vec<(String, BinaryHypervector)> = arena
        .rows()
        .enumerate()
        .map(|(i, row)| (format!("session-{i}"), row.to_hypervector()))
        .collect();

    let runtimes: Vec<_> = (0..SHARDS)
        .map(|i| {
            Runtime::spawn(
                runtime_model(),
                RuntimeConfig {
                    name: format!("fanout-{i}"),
                    refresh_every: 0,
                    ..RuntimeConfig::default()
                },
            )
            .expect("valid runtime")
        })
        .collect();
    let backends: Vec<Box<dyn ShardBackend>> = runtimes
        .iter()
        .map(|runtime| Box::new(LocalShard::new(runtime.handle())) as Box<dyn ShardBackend>)
        .collect();
    let mut router = ClusterRouter::new(backends, RingConfig::default(), 0).expect("valid cluster");

    let mut group = c.benchmark_group("router_concurrent");
    for mode in [FanOut::Serial, FanOut::Concurrent] {
        router.set_fan_out(mode);
        let served = router.predict_batch(&pairs).expect("routable");
        assert_eq!(
            served.iter().map(|p| p.label).collect::<Vec<_>>(),
            expected,
            "fan-out mode must never change an answer"
        );
        let name = match mode {
            FanOut::Serial => "serial",
            FanOut::Concurrent => "concurrent",
        };
        group.bench_with_input(BenchmarkId::new(name, BATCH), &pairs, |b, pairs| {
            b.iter(|| router.predict_batch(black_box(pairs)).expect("routable"));
        });
    }
    group.finish();

    drop(router);
    for runtime in runtimes {
        runtime.shutdown();
    }
}

/// Snapshot durability costs: serializing a trained d=10k model to its
/// compact binary form, parsing it back, and the full
/// `Pipeline::from_snapshot` rebuild (parse + deterministic encoder
/// reconstruction + accumulator adoption + head refresh) — for both task
/// families. This is the price of one warm restart.
fn bench_snapshot(c: &mut Criterion) {
    use hdc_serve::Snapshot;

    let classify = runtime_model();
    let regress = value_model();
    let classify_snapshot = classify.snapshot();
    let regress_snapshot = regress.snapshot();
    let classify_bytes = classify_snapshot.to_bytes();
    let regress_bytes = regress_snapshot.to_bytes();

    let mut group = c.benchmark_group("snapshot");
    group.bench_with_input(
        BenchmarkId::new("save_classify", classify_bytes.len()),
        &classify,
        |b, model| b.iter(|| black_box(model).snapshot().to_bytes()),
    );
    group.bench_with_input(
        BenchmarkId::new("save_regress", regress_bytes.len()),
        &regress,
        |b, model| b.iter(|| black_box(model).snapshot().to_bytes()),
    );
    group.bench_with_input(
        BenchmarkId::new("parse_classify", classify_bytes.len()),
        &classify_bytes,
        |b, bytes| b.iter(|| Snapshot::from_bytes(black_box(bytes)).expect("valid snapshot")),
    );
    group.bench_with_input(
        BenchmarkId::new("load_classify", classify_bytes.len()),
        &classify_bytes,
        |b, bytes| {
            b.iter(|| {
                let snapshot = Snapshot::from_bytes(black_box(bytes)).expect("valid snapshot");
                Pipeline::from_snapshot::<Radians>(&snapshot).expect("valid model")
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("load_regress", regress_bytes.len()),
        &regress_bytes,
        |b, bytes| {
            b.iter(|| {
                let snapshot = Snapshot::from_bytes(black_box(bytes)).expect("valid snapshot");
                Pipeline::from_snapshot::<Radians>(&snapshot).expect("valid model")
            });
        },
    );
    group.finish();

    // The loads above must be warm-restart-exact, not just fast.
    let restored = Pipeline::from_snapshot::<Radians>(&classify_snapshot).expect("valid model");
    assert_eq!(restored.classifier(), classify.classifier());
    let restored = Pipeline::from_snapshot::<Radians>(&regress_snapshot).expect("valid model");
    let probe = Radians::periodic(9.5, 24.0);
    assert_eq!(
        restored.predict_value(&probe),
        regress.predict_value(&probe)
    );
}

criterion_group!(
    benches,
    bench_route,
    bench_predict,
    bench_regression_readout,
    bench_readout_kernels,
    bench_value_readout_pruned,
    bench_microbatch,
    bench_value_microbatch,
    bench_cluster,
    bench_router_concurrent,
    bench_snapshot
);
criterion_main!(benches);
