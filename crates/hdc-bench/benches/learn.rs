//! Training and inference cost per basis kind — the paper's §6.1 timing
//! claim: "the training and evaluation running time are nearly equivalent
//! among all basis sets".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_basis::BasisKind;
use hdc_bench::table1::{run_task, Table1Config};
use hdc_datasets::jigsaws::{JigsawsConfig, JigsawsTask};
use std::hint::black_box;

fn bench_train_and_eval(c: &mut Criterion) {
    // A small but realistic classification job; identical across kinds so
    // the comparison isolates the basis type.
    let config = Table1Config {
        dim: 4_096,
        bins: 24,
        jigsaws: JigsawsConfig {
            trials_per_surgeon: 1,
            frames_per_trial: 4,
            ..JigsawsConfig::default()
        },
        ..Table1Config::default()
    };
    let dataset = JigsawsTask::KnotTying.generate(&config.jigsaws);

    let mut group = c.benchmark_group("train_eval_by_basis");
    group.sample_size(10);
    for (name, kind) in [
        ("random", BasisKind::Random),
        ("level", BasisKind::Level { randomness: 0.0 }),
        ("circular", BasisKind::Circular { randomness: 0.1 }),
    ] {
        group.bench_with_input(
            BenchmarkId::new("jigsaws", name),
            &kind,
            |bencher, &kind| {
                bencher.iter(|| black_box(run_task(&dataset, kind, &config)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_train_and_eval);
criterion_main!(benches);
