//! Storage-layer benchmarks: what durability costs on the fit path, and
//! what paging costs on the item-memory read path.
//!
//! * **store_fit_path** — one online `fit` through the running
//!   [`Runtime`], d=10_000. The `volatile` row is the PR 4 contract: a
//!   fire-and-forget enqueue to the trainer, no acknowledgement. The
//!   `wal_*` rows are the durable contract: the call returns only after
//!   the record is in the write-ahead log under the named
//!   [`SyncPolicy`] — `never` prices the dispatcher round-trip plus the
//!   buffered append, `batch` adds one `fsync` per micro-batch (the
//!   default), `always` one `fsync` per record. The spread between
//!   `never` and `batch`/`always` is almost entirely the disk flush.
//! * **store_paged_get** — item-memory reads at hot/cold key ratios:
//!   the in-RAM [`ResidentStore`] baseline vs a [`PagedStore`] holding
//!   2048 keys on a 256-entry cache budget (8× oversubscribed). `hot`
//!   cycles a working set that fits the cache (hit path: one HashMap
//!   probe + LRU tick), `cold` cycles uniformly over all keys (miss
//!   path: seek + read + decode + evict), `mix_90_10` blends them at
//!   the ratio a serving hot set actually sees.
//!
//! Both planes return bit-identical hypervectors — `tests/durability.rs`
//! proptests that equivalence; these benches price it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_core::BinaryHypervector;
use hdc_encode::Radians;
use hdc_serve::{Basis, Enc, Model, Pipeline, Runtime, RuntimeConfig};
use hdc_store::{DurabilityConfig, ItemStore, PagedStore, ResidentStore, SyncPolicy};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::path::PathBuf;

const DIM: usize = 10_000;
const CLASSES: usize = 16;

fn blank() -> Model<Radians> {
    Pipeline::builder(DIM)
        .seed(7)
        .classes(CLASSES)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid spec")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdc-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hours() -> Vec<Radians> {
    (0..256)
        .map(|i| Radians::periodic(f64::from(i) / 256.0 * 24.0, 24.0))
        .collect()
}

fn bench_fit_path(c: &mut Criterion) {
    let observations = hours();
    let mut group = c.benchmark_group("store_fit_path");

    {
        let runtime = Runtime::spawn(blank(), RuntimeConfig::default()).expect("spawn");
        let handle = runtime.handle();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("fit", "volatile"), &(), |b, ()| {
            b.iter(|| {
                i += 1;
                handle
                    .fit(black_box(&observations[i % 256]), i % CLASSES)
                    .expect("fit");
            });
        });
        runtime.shutdown();
    }

    for (name, sync) in [
        ("wal_never", SyncPolicy::Never),
        ("wal_batch", SyncPolicy::EveryBatch),
        ("wal_always", SyncPolicy::Always),
    ] {
        let dir = scratch(name);
        let config = RuntimeConfig {
            durability: Some(DurabilityConfig {
                sync,
                snapshot_every: 0,
                segment_bytes: 64 << 20,
                ..DurabilityConfig::new(&dir)
            }),
            ..RuntimeConfig::default()
        };
        let runtime = Runtime::spawn(blank(), config).expect("spawn");
        let handle = runtime.handle();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("fit", name), &(), |b, ()| {
            b.iter(|| {
                i += 1;
                handle
                    .fit(black_box(&observations[i % 256]), i % CLASSES)
                    .expect("durable fit");
            });
        });
        runtime.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_paged_get(c: &mut Criterion) {
    const KEYS: usize = 2048;
    const BUDGET: usize = 256;
    const HOT: usize = 128;

    let mut rng = StdRng::seed_from_u64(0xB00C);
    let dir = scratch("paged");
    let mut paged = PagedStore::open(dir.join("items"), DIM, BUDGET).expect("open");
    let mut resident = ResidentStore::new();
    let keys: Vec<String> = (0..KEYS).map(|i| format!("user-{i:05}")).collect();
    for key in &keys {
        let hv = BinaryHypervector::random(DIM, &mut rng);
        paged.insert(key, &hv).expect("insert");
        resident.insert(key, &hv).expect("insert");
    }
    // A fixed shuffled visit order so `cold` touches keys uniformly but
    // reproducibly, defeating both the LRU cache and the branch predictor.
    let cold_order: Vec<usize> = {
        let mut order: Vec<usize> = (0..KEYS).collect();
        for i in (1..KEYS).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        order
    };

    let mut group = c.benchmark_group("store_paged_get");
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "resident"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            black_box(resident.get(&keys[cold_order[i % KEYS]]).expect("get"));
        });
    });
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "paged_hot"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            black_box(paged.get(&keys[i % HOT]).expect("get"));
        });
    });
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "paged_cold"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            black_box(paged.get(&keys[cold_order[i % KEYS]]).expect("get"));
        });
    });
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "paged_mix_90_10"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            let key = if i % 10 == 0 {
                &keys[cold_order[i % KEYS]]
            } else {
                &keys[i % HOT]
            };
            black_box(paged.get(key).expect("get"));
        });
    });
    group.finish();
    drop(paged);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_fit_path, bench_paged_get);
criterion_main!(benches);
