//! Storage-layer benchmarks: what durability costs on the fit path, and
//! what paging costs on the item-memory read path.
//!
//! * **store_fit_path** — one online `fit` through the running
//!   [`Runtime`], d=10_000. The `volatile` row is the PR 4 contract: a
//!   fire-and-forget enqueue to the trainer, no acknowledgement. The
//!   `wal_*` rows are the durable contract: the call returns only after
//!   the record is in the write-ahead log under the named
//!   [`SyncPolicy`] — `never` prices the dispatcher round-trip plus the
//!   buffered append, `batch` adds one `fsync` per micro-batch (the
//!   default), `always` one `fsync` per record. The spread between
//!   `never` and `batch`/`always` is almost entirely the disk flush.
//! * **store_multi_writer** — the group-commit matrix: aggregate durable
//!   fit cost under [`SyncPolicy::Always`] with 1/4/16 concurrent writer
//!   threads, group commit on/off × adaptive WAL compression on/off.
//!   With the flusher off every fit pays its own `fsync`; with it on,
//!   all writers parked inside one collection window share a single
//!   `fdatasync`.
//! * **store_wal_bytes** — WAL bytes appended per durable fit at
//!   d=10_000, raw vs adaptive record codec (the compression half of the
//!   durability story: how much log the same fit stream produces).
//! * **store_paged_get** — item-memory reads at hot/cold key ratios:
//!   the in-RAM [`ResidentStore`] baseline vs a [`PagedStore`] holding
//!   2048 keys on a 256-entry cache budget (8× oversubscribed). `hot`
//!   cycles a working set that fits the cache (hit path: one HashMap
//!   probe + LRU tick), `cold` cycles uniformly over all keys (miss
//!   path: seek + read + decode + evict), `mix_90_10` blends them at
//!   the ratio a serving hot set actually sees.
//!
//! Both planes return bit-identical hypervectors — `tests/durability.rs`
//! proptests that equivalence; these benches price it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_core::BinaryHypervector;
use hdc_encode::Radians;
use hdc_serve::{Basis, Enc, Model, Pipeline, Runtime, RuntimeConfig};
use hdc_store::{DurabilityConfig, ItemStore, PagedStore, ResidentStore, SyncPolicy, WalCodec};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const DIM: usize = 10_000;
const CLASSES: usize = 16;

fn blank() -> Model<Radians> {
    Pipeline::builder(DIM)
        .seed(7)
        .classes(CLASSES)
        .basis(Basis::Circular { m: 24, r: 0.0 })
        .encoder(Enc::angle())
        .build()
        .expect("valid spec")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdc-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hours() -> Vec<Radians> {
    (0..256)
        .map(|i| Radians::periodic(f64::from(i) / 256.0 * 24.0, 24.0))
        .collect()
}

fn bench_fit_path(c: &mut Criterion) {
    let observations = hours();
    let mut group = c.benchmark_group("store_fit_path");

    {
        let runtime = Runtime::spawn(blank(), RuntimeConfig::default()).expect("spawn");
        let handle = runtime.handle();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("fit", "volatile"), &(), |b, ()| {
            b.iter(|| {
                i += 1;
                handle
                    .fit(black_box(&observations[i % 256]), i % CLASSES)
                    .expect("fit");
            });
        });
        runtime.shutdown();
    }

    for (name, sync) in [
        ("wal_never", SyncPolicy::Never),
        ("wal_batch", SyncPolicy::EveryBatch),
        ("wal_always", SyncPolicy::Always),
    ] {
        let dir = scratch(name);
        let config = RuntimeConfig {
            durability: Some(DurabilityConfig {
                sync,
                snapshot_every: 0,
                segment_bytes: 64 << 20,
                ..DurabilityConfig::new(&dir)
            }),
            ..RuntimeConfig::default()
        };
        let runtime = Runtime::spawn(blank(), config).expect("spawn");
        let handle = runtime.handle();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("fit", name), &(), |b, ()| {
            b.iter(|| {
                i += 1;
                handle
                    .fit(black_box(&observations[i % 256]), i % CLASSES)
                    .expect("durable fit");
            });
        });
        runtime.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Multi-writer durable fit throughput under [`SyncPolicy::Always`]:
/// 1/4/16 concurrent writer threads × group commit on/off × adaptive
/// compression on/off. Each writer blocks on its own acknowledgement, so
/// without group commit the dispatcher pays one `fsync` per fit; with it,
/// every writer parked inside one collection window shares a single
/// `fdatasync`. Timed manually (criterion's `Bencher` drives one closure,
/// not a thread fleet) and printed in the same `ns/iter` shape — the
/// ns/iter is aggregate wall-clock over total fits, i.e. the inverse of
/// cluster-wide durable-fit throughput.
fn bench_multi_writer(c: &mut Criterion) {
    let _ = c; // manual timing; keep the criterion_group! signature
    const FITS_PER_WRITER: usize = 64;
    let observations = hours();
    for writers in [1usize, 4, 16] {
        for (group_name, window) in [
            ("nogroup", Duration::ZERO),
            ("group", Duration::from_micros(200)),
        ] {
            for (codec_name, codec) in [("raw", WalCodec::Raw), ("adaptive", WalCodec::Adaptive)] {
                let dir = scratch(&format!("mw-{writers}-{group_name}-{codec_name}"));
                let config = RuntimeConfig {
                    durability: Some(DurabilityConfig {
                        sync: SyncPolicy::Always,
                        snapshot_every: 0,
                        segment_bytes: 64 << 20,
                        group_commit_window: window,
                        codec,
                        ..DurabilityConfig::new(&dir)
                    }),
                    ..RuntimeConfig::default()
                };
                let runtime = Runtime::spawn(blank(), config).expect("spawn");
                let handle = runtime.handle();
                // Warm the dispatcher, the flusher and the codec dict.
                for (i, hour) in observations.iter().enumerate().take(8) {
                    handle.fit(hour, i % CLASSES).expect("warmup");
                }
                let started = Instant::now();
                std::thread::scope(|scope| {
                    for writer in 0..writers {
                        let handle = handle.clone();
                        let observations = &observations;
                        scope.spawn(move || {
                            for i in 0..FITS_PER_WRITER {
                                handle
                                    .fit(
                                        black_box(&observations[(writer * 37 + i) % 256]),
                                        (writer + i) % CLASSES,
                                    )
                                    .expect("durable fit");
                            }
                        });
                    }
                });
                let elapsed = started.elapsed();
                runtime.shutdown();
                let _ = std::fs::remove_dir_all(&dir);
                let total = writers * FITS_PER_WRITER;
                let ns = elapsed.as_nanos() as f64 / total as f64;
                let id = format!(
                    "store_multi_writer/fit_always/w{writers:02}_{group_name}_{codec_name}"
                );
                println!("{id:<56} {ns:>12.1} ns/iter ({total} iters)");
            }
        }
    }
}

/// WAL bytes appended per durable fit at d=10_000, raw vs adaptive codec.
/// The angle encoder revisits a small set of circular level vectors, so
/// the adaptive codec's dictionary turns most records into a few gap
/// varints; raw pays the full 1.25 KB hypervector every time. Measured
/// from the on-disk segment sizes after a fixed stream — printed as
/// bytes/fit (not ns).
fn bench_wal_bytes(c: &mut Criterion) {
    let _ = c; // manual measurement; keep the criterion_group! signature
    const FITS: usize = 256;
    let observations = hours();
    for (codec_name, codec) in [("raw", WalCodec::Raw), ("adaptive", WalCodec::Adaptive)] {
        let dir = scratch(&format!("bytes-{codec_name}"));
        let config = RuntimeConfig {
            durability: Some(DurabilityConfig {
                sync: SyncPolicy::EveryBatch,
                snapshot_every: 0,
                segment_bytes: 64 << 20,
                codec,
                ..DurabilityConfig::new(&dir)
            }),
            ..RuntimeConfig::default()
        };
        let runtime = Runtime::spawn(blank(), config).expect("spawn");
        let handle = runtime.handle();
        for i in 0..FITS {
            handle
                .fit(&observations[i % 256], i % CLASSES)
                .expect("durable fit");
        }
        runtime.shutdown();
        let bytes: u64 = std::fs::read_dir(&dir)
            .expect("data dir")
            .map(|entry| entry.expect("entry"))
            .filter(|entry| {
                entry
                    .file_name()
                    .to_str()
                    .is_some_and(|name| name.starts_with("wal-") && name.ends_with(".log"))
            })
            .map(|entry| entry.metadata().expect("metadata").len())
            .sum();
        let _ = std::fs::remove_dir_all(&dir);
        let per_fit = bytes as f64 / FITS as f64;
        let id = format!("store_wal_bytes/fit_d10k/{codec_name}");
        println!("{id:<56} {per_fit:>12.1} bytes/fit ({FITS} fits)");
    }
}

fn bench_paged_get(c: &mut Criterion) {
    const KEYS: usize = 2048;
    const BUDGET: usize = 256;
    const HOT: usize = 128;

    let mut rng = StdRng::seed_from_u64(0xB00C);
    let dir = scratch("paged");
    let mut paged = PagedStore::open(dir.join("items"), DIM, BUDGET).expect("open");
    let mut resident = ResidentStore::new();
    let keys: Vec<String> = (0..KEYS).map(|i| format!("user-{i:05}")).collect();
    for key in &keys {
        let hv = BinaryHypervector::random(DIM, &mut rng);
        paged.insert(key, &hv).expect("insert");
        resident.insert(key, &hv).expect("insert");
    }
    // A fixed shuffled visit order so `cold` touches keys uniformly but
    // reproducibly, defeating both the LRU cache and the branch predictor.
    let cold_order: Vec<usize> = {
        let mut order: Vec<usize> = (0..KEYS).collect();
        for i in (1..KEYS).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        order
    };

    let mut group = c.benchmark_group("store_paged_get");
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "resident"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            black_box(resident.get(&keys[cold_order[i % KEYS]]).expect("get"));
        });
    });
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "paged_hot"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            black_box(paged.get(&keys[i % HOT]).expect("get"));
        });
    });
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "paged_cold"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            black_box(paged.get(&keys[cold_order[i % KEYS]]).expect("get"));
        });
    });
    let mut i = 0usize;
    group.bench_with_input(BenchmarkId::new("get", "paged_mix_90_10"), &(), |b, ()| {
        b.iter(|| {
            i += 1;
            let key = if i % 10 == 0 {
                &keys[cold_order[i % KEYS]]
            } else {
                &keys[i % HOT]
            };
            black_box(paged.get(key).expect("get"));
        });
    });
    group.finish();
    drop(paged);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_fit_path,
    bench_multi_writer,
    bench_wal_bytes,
    bench_paged_get
);
criterion_main!(benches);
