//! Dispatched SIMD kernel backends head to head against the scalar
//! reference (PR 7).
//!
//! Every backend the running CPU supports is benched through its
//! function-pointer table — the same tables `kernels::dispatch::selected`
//! publishes — so the numbers price exactly what the dispatch layer
//! swaps in. Outputs are bit-identical across backends (enforced by the
//! `kernel_dispatch` proptest suite and re-asserted here on one input);
//! the bench prices the ISA, never a different answer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_core::kernels::dispatch::{available, table, KernelTable};
use hdc_core::BinaryHypervector;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

/// One packed operand pair plus a counter slice, with clean tail words.
fn inputs(dim: usize, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<i32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = BinaryHypervector::random(dim, &mut rng).as_words().to_vec();
    let b = BinaryHypervector::random(dim, &mut rng).as_words().to_vec();
    let counts: Vec<i32> = (0..dim)
        .map(|_| rng.random_range(-10_000..10_000))
        .collect();
    (a, b, counts)
}

fn bench_kernels_simd_vs_scalar(c: &mut Criterion) {
    let scalar = table(hdc_core::kernels::dispatch::Backend::Scalar).expect("scalar table");
    let backends: Vec<&'static KernelTable> = available()
        .into_iter()
        .map(|backend| table(backend).expect("available backend has a table"))
        .collect();

    let mut group = c.benchmark_group("kernels_simd_vs_scalar");
    for dim in [10_000usize, 65_536] {
        let (a, b, counts) = inputs(dim, 0x51AD);
        // One-shot agreement check so a parity regression fails the bench
        // run loudly instead of producing misleading numbers.
        for t in &backends {
            assert_eq!((t.hamming)(&a, &b), (scalar.hamming)(&a, &b));
            assert_eq!(
                (t.masked_sum)(&counts, &a, &b),
                (scalar.masked_sum)(&counts, &a, &b)
            );
        }

        for t in &backends {
            let name = t.backend.name();
            group.bench_with_input(
                BenchmarkId::new(format!("xor_into_{name}"), dim),
                &dim,
                |bencher, _| {
                    let mut dst = a.clone();
                    bencher.iter(|| (t.xor_into)(black_box(&mut dst), black_box(&b)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("count_ones_{name}"), dim),
                &dim,
                |bencher, _| bencher.iter(|| (t.count_ones)(black_box(&a))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("hamming_{name}"), dim),
                &dim,
                |bencher, _| bencher.iter(|| (t.hamming)(black_box(&a), black_box(&b))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("accumulate_{name}"), dim),
                &dim,
                |bencher, _| {
                    let mut acc = counts.clone();
                    bencher.iter(|| (t.accumulate)(black_box(&mut acc), black_box(&a), 3));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dot_bipolar_{name}"), dim),
                &dim,
                |bencher, _| bencher.iter(|| (t.dot_bipolar)(black_box(&counts), black_box(&a))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("masked_sum_{name}"), dim),
                &dim,
                |bencher, _| {
                    bencher
                        .iter(|| (t.masked_sum)(black_box(&counts), black_box(&a), black_box(&b)));
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("majority_into_{name}"), dim),
                &dim,
                |bencher, _| {
                    let mut out = vec![0u64; dim.div_ceil(64)];
                    bencher.iter(|| {
                        (t.majority_into)(black_box(&counts), black_box(&mut out), &mut |i| {
                            i % 2 == 0
                        });
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels_simd_vs_scalar);
criterion_main!(benches);
