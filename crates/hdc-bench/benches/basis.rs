//! Basis-set generation cost — supporting the paper's §6.1 claim that the
//! one-time cost of generating any basis set is negligible compared to
//! training, and nearly equivalent across set types.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdc_basis::{CircularBasis, LevelBasis, RandomBasis, ScatterBasis};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let dim = 10_000;
    let mut group = c.benchmark_group("basis_generation");
    for m in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("random", m), &m, |bencher, &m| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(RandomBasis::new(m, dim, &mut rng).unwrap())
            });
        });
        group.bench_with_input(
            BenchmarkId::new("level_interpolation", m),
            &m,
            |bencher, &m| {
                bencher.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    black_box(LevelBasis::new(m, dim, &mut rng).unwrap())
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("level_legacy", m), &m, |bencher, &m| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(LevelBasis::legacy(m, dim, &mut rng).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("circular", m), &m, |bencher, &m| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(CircularBasis::new(m, dim, &mut rng).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("scatter", m), &m, |bencher, &m| {
            bencher.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(ScatterBasis::new(m, dim, &mut rng).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
