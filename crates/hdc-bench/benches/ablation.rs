//! Ablation benches: BSC vs MAP arithmetic cost, and the hash-ring lookup
//! cost of the hyperdimensional vs classic consistent-hash schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use hdc_core::BinaryHypervector;
use hdc_hash::{ClassicRing, HdcHashRing};
use rand::{rngs::StdRng, SeedableRng};
use std::hint::black_box;

fn bench_bsc_vs_map(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let dim = 10_000;
    let a_bin = BinaryHypervector::random(dim, &mut rng);
    let b_bin = BinaryHypervector::random(dim, &mut rng);
    let a_bip = a_bin.to_bipolar();
    let b_bip = b_bin.to_bipolar();

    let mut group = c.benchmark_group("model_arithmetic");
    group.bench_function("bsc_bind", |bencher| {
        bencher.iter(|| black_box(&a_bin).bind(black_box(&b_bin)));
    });
    group.bench_function("map_bind", |bencher| {
        bencher.iter(|| black_box(&a_bip).bind(black_box(&b_bip)));
    });
    group.bench_function("bsc_similarity", |bencher| {
        bencher.iter(|| black_box(&a_bin).normalized_hamming(black_box(&b_bin)));
    });
    group.bench_function("map_similarity", |bencher| {
        bencher.iter(|| black_box(&a_bip).cosine(black_box(&b_bip)));
    });
    group.finish();
}

fn bench_hash_lookup(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let mut hdc = HdcHashRing::new(128, 10_000, &mut rng).unwrap();
    let mut classic = ClassicRing::new();
    for i in 0..16 {
        hdc.add_node(format!("node-{i}"));
        classic.add_node(format!("node-{i}"));
    }

    let mut group = c.benchmark_group("hash_lookup");
    group.bench_function("hdc_ring", |bencher| {
        bencher.iter(|| black_box(hdc.lookup(black_box(&"some-key"))));
    });
    group.bench_function("classic_ring", |bencher| {
        bencher.iter(|| black_box(classic.lookup(black_box(&"some-key"))));
    });
    group.finish();
}

criterion_group!(benches, bench_bsc_vs_map, bench_hash_lookup);
criterion_main!(benches);
