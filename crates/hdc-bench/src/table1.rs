//! Table 1 — classification accuracy on the three JIGSAWS surgical tasks,
//! comparing random, level and circular basis-hypervectors (circular with
//! `r = 0.1`, as in the paper).
//!
//! Protocol (paper §6.1): each sample's 18 kinematic channels are quantized
//! and encoded through the basis under test, combined with the key–value
//! record encoding `⊕ᵢ Kᵢ ⊗ Vᵢ`, and classified with the standard centroid
//! framework. The model trains on the experienced surgeon "D" and tests on
//! the remaining surgeons.

use hdc_basis::BasisKind;
use hdc_core::BinaryHypervector;
use hdc_datasets::jigsaws::{
    JigsawsConfig, JigsawsDataset, JigsawsSample, JigsawsTask, TRAIN_SURGEON,
};
use hdc_encode::RecordEncoder;
use hdc_learn::{metrics, CentroidClassifier};
use rand::{rngs::StdRng, SeedableRng};

use crate::encoders::BinnedAngleEncoder;

/// Configuration of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct Table1Config {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Quantization bins per kinematic channel.
    pub bins: usize,
    /// Randomness `r` of the circular basis (the paper uses 0.1).
    pub circular_randomness: f64,
    /// Dataset generation parameters.
    pub jigsaws: JigsawsConfig,
    /// Seed for basis generation and tie-breaking.
    pub seed: u64,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            dim: 10_000,
            bins: 16,
            circular_randomness: 0.1,
            jigsaws: JigsawsConfig::default(),
            seed: 0x7AB1E1,
        }
    }
}

impl Table1Config {
    /// A reduced configuration for smoke tests and CI (smaller dimension
    /// and corpus; same code paths).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            dim: 2_048,
            bins: 24,
            jigsaws: JigsawsConfig {
                trials_per_surgeon: 1,
                frames_per_trial: 6,
                ..JigsawsConfig::default()
            },
            ..Self::default()
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The surgical task.
    pub task: JigsawsTask,
    /// Accuracy with random-hypervectors.
    pub random: f64,
    /// Accuracy with level-hypervectors.
    pub level: f64,
    /// Accuracy with circular-hypervectors (`r` from the config).
    pub circular: f64,
}

/// Runs the full Table 1 experiment: three tasks × three basis kinds.
#[must_use]
pub fn run(config: &Table1Config) -> Vec<Table1Row> {
    JigsawsTask::ALL
        .iter()
        .map(|&task| {
            let dataset = task.generate(&config.jigsaws);
            Table1Row {
                task,
                random: run_task(&dataset, BasisKind::Random, config),
                level: run_task(&dataset, BasisKind::Level { randomness: 0.0 }, config),
                circular: run_task(
                    &dataset,
                    BasisKind::Circular {
                        randomness: config.circular_randomness,
                    },
                    config,
                ),
            }
        })
        .collect()
}

/// Trains and evaluates one `(task dataset, basis kind)` cell; returns the
/// test accuracy. Exposed for the Figure 8 sweep.
#[must_use]
pub fn run_task(dataset: &JigsawsDataset, kind: BasisKind, config: &Table1Config) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let channels = dataset.channels();

    // One value encoder per channel (independent bases), one record encoder.
    let value_encoders: Vec<BinnedAngleEncoder> = (0..channels)
        .map(|_| {
            BinnedAngleEncoder::new(kind, config.bins, config.dim, &mut rng)
                .expect("valid encoder parameters")
        })
        .collect();
    let record =
        RecordEncoder::new(channels, config.dim, &mut rng).expect("valid record parameters");

    let encode = |sample: &JigsawsSample, rng: &mut StdRng| -> BinaryHypervector {
        let values: Vec<&BinaryHypervector> = sample
            .angles
            .iter()
            .zip(&value_encoders)
            .map(|(&angle, enc)| enc.encode(angle))
            .collect();
        record.encode(&values, rng).expect("arity matches")
    };

    let (train, test) = dataset.train_test_split(TRAIN_SURGEON);
    let encoded_train: Vec<(BinaryHypervector, usize)> = train
        .iter()
        .map(|s| (encode(s, &mut rng), s.gesture))
        .collect();
    let model = CentroidClassifier::fit(
        encoded_train.iter().map(|(hv, l)| (hv, *l)),
        dataset.gesture_count,
        config.dim,
        &mut rng,
    )
    .expect("valid training configuration");

    let mut predicted = Vec::with_capacity(test.len());
    let mut truth = Vec::with_capacity(test.len());
    for sample in test {
        predicted.push(model.predict(&encode(sample, &mut rng)));
        truth.push(sample.gesture);
    }
    metrics::accuracy(&predicted, &truth)
}

/// Convenience: accuracy of one basis kind on a task generated from the
/// config (generates the dataset internally). Used by the r-sweep.
#[must_use]
pub fn run_fresh(task: JigsawsTask, kind: BasisKind, config: &Table1Config) -> f64 {
    let dataset = task.generate(&config.jigsaws);
    run_task(&dataset, kind, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_sane_accuracies() {
        let config = Table1Config::quick();
        let dataset = JigsawsTask::KnotTying.generate(&config.jigsaws);
        let chance = 1.0 / dataset.gesture_count as f64;
        for kind in [
            BasisKind::Random,
            BasisKind::Level { randomness: 0.0 },
            BasisKind::Circular { randomness: 0.1 },
        ] {
            let acc = run_task(&dataset, kind, &config);
            assert!((0.0..=1.0).contains(&acc));
            assert!(
                acc > chance * 1.5,
                "{kind:?} accuracy {acc} barely above chance"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = Table1Config::quick();
        let dataset = JigsawsTask::KnotTying.generate(&config.jigsaws);
        let a = run_task(&dataset, BasisKind::Random, &config);
        let b = run_task(&dataset, BasisKind::Random, &config);
        assert_eq!(a, b);
    }
}
