//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section on the synthetic dataset surrogates.
//!
//! Each experiment is a pure function from a config (with a fixed seed) to
//! printable rows, so results are exactly reproducible. The `experiments`
//! binary wraps these in a small CLI:
//!
//! ```text
//! cargo run -p hdc-bench --release --bin experiments -- table1
//! cargo run -p hdc-bench --release --bin experiments -- all
//! ```
//!
//! | module | regenerates |
//! |--------|-------------|
//! | [`table1`] | Table 1 — JIGSAWS classification accuracy |
//! | [`table2`] | Table 2 — Beijing & Mars Express regression MSE (also Figure 7) |
//! | [`figures`] | Figures 3, 4, 6 and 8 |
//! | [`ablation`] | extra ablations: basis fidelity, BSC vs MAP, hash robustness |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod encoders;
pub mod figures;
pub mod report;
pub mod table1;
pub mod table2;
