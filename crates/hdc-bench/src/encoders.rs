//! Harness-side encoders: the per-feature value encoders whose *basis kind*
//! is the experimental variable of the paper's evaluation.

use hdc_basis::BasisKind;
use hdc_core::{BinaryHypervector, HdcError};
use rand::Rng;

/// An angular value encoder with `bins` equal-width sectors over `[0, 2π)`,
/// backed by a basis of the chosen [`BasisKind`].
///
/// Unlike [`hdc_encode::ScalarEncoder`], which spreads `m` grid points over
/// a closed interval, this encoder tiles the *circle* with equal bins, so
/// the same quantization is applied no matter which basis kind supplies the
/// hypervectors — exactly the controlled comparison of the paper's
/// experiments (only the basis changes, never the quantizer).
#[derive(Debug)]
pub struct BinnedAngleEncoder {
    hvs: Vec<BinaryHypervector>,
}

impl BinnedAngleEncoder {
    /// Creates an encoder with `bins` sectors of `dim`-bit hypervectors of
    /// the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] for invalid basis parameters.
    pub fn new(
        kind: BasisKind,
        bins: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        let basis = kind.build(bins, dim, rng)?;
        Ok(Self {
            hvs: basis.hypervectors().to_vec(),
        })
    }

    /// Number of sectors.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.hvs.len()
    }

    /// The bin an angle (radians, wrapped) falls into.
    #[must_use]
    pub fn bin_of(&self, angle: f64) -> usize {
        let tau = std::f64::consts::TAU;
        let w = angle.rem_euclid(tau);
        ((w / tau * self.hvs.len() as f64) as usize).min(self.hvs.len() - 1)
    }

    /// Encodes an angle in radians.
    #[must_use]
    pub fn encode(&self, angle: f64) -> &BinaryHypervector {
        &self.hvs[self.bin_of(angle)]
    }

    /// Encodes a value from a periodic domain `[0, period)`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive and finite.
    #[must_use]
    pub fn encode_periodic(&self, value: f64, period: f64) -> &BinaryHypervector {
        assert!(
            period.is_finite() && period > 0.0,
            "period {period} must be positive"
        );
        self.encode(value / period * std::f64::consts::TAU)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn bins_tile_the_circle() {
        let mut rng = StdRng::seed_from_u64(0);
        let enc = BinnedAngleEncoder::new(BasisKind::Random, 8, 256, &mut rng).unwrap();
        assert_eq!(enc.bins(), 8);
        assert_eq!(enc.bin_of(0.0), 0);
        assert_eq!(enc.bin_of(std::f64::consts::PI), 4);
        assert_eq!(enc.bin_of(std::f64::consts::TAU - 1e-9), 7);
        assert_eq!(enc.bin_of(std::f64::consts::TAU), 0);
        assert_eq!(enc.bin_of(-0.1), 7);
    }

    #[test]
    fn quantization_is_kind_independent() {
        let mut rng = StdRng::seed_from_u64(1);
        let random = BinnedAngleEncoder::new(BasisKind::Random, 24, 128, &mut rng).unwrap();
        let circular =
            BinnedAngleEncoder::new(BasisKind::Circular { randomness: 0.0 }, 24, 128, &mut rng)
                .unwrap();
        for i in 0..100 {
            let angle = i as f64 * 0.0723;
            assert_eq!(random.bin_of(angle), circular.bin_of(angle));
        }
    }

    #[test]
    fn circular_kind_wraps_in_hyperspace() {
        let mut rng = StdRng::seed_from_u64(2);
        let enc = BinnedAngleEncoder::new(
            BasisKind::Circular { randomness: 0.0 },
            24,
            10_000,
            &mut rng,
        )
        .unwrap();
        let wrap = enc
            .encode_periodic(23.7, 24.0)
            .normalized_hamming(enc.encode_periodic(0.3, 24.0));
        assert!(wrap < 0.15, "wrap distance {wrap}");
    }
}
