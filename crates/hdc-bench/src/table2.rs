//! Table 2 (and Figure 7) — regression mean squared error on the Beijing
//! temperature and Mars Express power surrogates, comparing random, level
//! and circular basis-hypervectors (circular with `r = 0.01`, as in the
//! paper).
//!
//! Protocol (paper §6.2):
//!
//! * **Beijing** — samples encoded as `Y ⊗ D ⊗ H`; the year hypervector is
//!   always a level encoding (macro trend), while day-of-year and
//!   hour-of-day switch between random/level/circular. Temporal 70/30
//!   split; the label (temperature) is level-encoded.
//! * **Mars Express** — samples are the mean anomaly of Mars' orbit,
//!   encoded with the basis under test; random 70/30 split; the label
//!   (power) is level-encoded.

use hdc_basis::BasisKind;
use hdc_core::BinaryHypervector;
use hdc_datasets::{beijing, mars};
use hdc_encode::ScalarEncoder;
use hdc_learn::{metrics, split, RegressionTrainer};
use rand::{rngs::StdRng, SeedableRng};

use crate::encoders::BinnedAngleEncoder;

/// Configuration of the Table 2 experiment.
#[derive(Debug, Clone)]
pub struct Table2Config {
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Quantization bins for day-of-year.
    pub day_bins: usize,
    /// Quantization bins for hour-of-day.
    pub hour_bins: usize,
    /// Level count for the year feature.
    pub year_levels: usize,
    /// Quantization bins for the Mars mean anomaly.
    pub mars_bins: usize,
    /// Level count for the label encoders.
    pub label_levels: usize,
    /// Randomness `r` of the circular basis (the paper uses 0.01).
    pub circular_randomness: f64,
    /// Train fraction for both datasets.
    pub train_fraction: f64,
    /// Beijing generation parameters.
    pub beijing: beijing::BeijingConfig,
    /// Mars generation parameters.
    pub mars: mars::MarsConfig,
    /// Seed for basis generation, splits and tie-breaking.
    pub seed: u64,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            dim: 10_000,
            day_bins: 73,
            hour_bins: 24,
            year_levels: 8,
            mars_bins: 512,
            label_levels: 64,
            circular_randomness: 0.01,
            train_fraction: 0.7,
            beijing: beijing::BeijingConfig::default(),
            mars: mars::MarsConfig::default(),
            seed: 0x7AB1E2,
        }
    }
}

impl Table2Config {
    /// A reduced configuration for smoke tests and CI.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            dim: 2_048,
            day_bins: 36,
            label_levels: 32,
            mars_bins: 192,
            // Two years minimum: a 70% temporal split of a single year
            // would leave part of the day-of-year range unseen in training.
            beijing: beijing::BeijingConfig {
                years: 2,
                ..beijing::BeijingConfig::default()
            },
            mars: mars::MarsConfig {
                samples: 400,
                ..mars::MarsConfig::default()
            },
            ..Self::default()
        }
    }
}

/// One row of Table 2: MSE per basis kind.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Dataset name as printed in the paper ("Beijing", "Mars Express").
    pub dataset: &'static str,
    /// MSE with random-hypervectors.
    pub random: f64,
    /// MSE with level-hypervectors.
    pub level: f64,
    /// MSE with circular-hypervectors.
    pub circular: f64,
}

/// Runs the full Table 2 experiment.
#[must_use]
pub fn run(config: &Table2Config) -> Vec<Table2Row> {
    let beijing_data = beijing::generate(&config.beijing);
    let mars_data = mars::generate(&config.mars);
    let circular = BasisKind::Circular {
        randomness: config.circular_randomness,
    };
    vec![
        Table2Row {
            dataset: "Beijing",
            random: run_beijing(&beijing_data, BasisKind::Random, config),
            level: run_beijing(&beijing_data, BasisKind::Level { randomness: 0.0 }, config),
            circular: run_beijing(&beijing_data, circular, config),
        },
        Table2Row {
            dataset: "Mars Express",
            random: run_mars(&mars_data, BasisKind::Random, config),
            level: run_mars(&mars_data, BasisKind::Level { randomness: 0.0 }, config),
            circular: run_mars(&mars_data, circular, config),
        },
    ]
}

/// Trains and scores one basis kind on the Beijing surrogate; returns the
/// test MSE. Exposed for the Figure 8 sweep.
#[must_use]
pub fn run_beijing(data: &beijing::BeijingDataset, kind: BasisKind, config: &Table2Config) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Year is always level-encoded (macro trend); day and hour switch kind.
    let years_span = config.beijing.years as f64;
    let year_enc =
        ScalarEncoder::with_levels(0.0, years_span, config.year_levels, config.dim, &mut rng)
            .expect("valid year encoder");
    let day_enc = BinnedAngleEncoder::new(kind, config.day_bins, config.dim, &mut rng)
        .expect("valid day encoder");
    let hour_enc = BinnedAngleEncoder::new(kind, config.hour_bins, config.dim, &mut rng)
        .expect("valid hour encoder");

    let encode = |s: &beijing::BeijingSample| -> BinaryHypervector {
        let mut hv = year_enc.encode(s.year).clone();
        hv.bind_assign(day_enc.encode_periodic(s.day_of_year, beijing::DAYS_PER_YEAR));
        hv.bind_assign(hour_enc.encode_periodic(s.hour, 24.0));
        hv
    };

    let (min_t, max_t) = data.temperature_range();
    let label_enc =
        ScalarEncoder::with_levels(min_t, max_t, config.label_levels, config.dim, &mut rng)
            .expect("valid label encoder");

    let (train, test) = data.temporal_split(config.train_fraction);
    let mut trainer = RegressionTrainer::new(label_enc);
    for s in &train {
        trainer.observe(&encode(s), s.temperature);
    }
    let model = trainer.finish(&mut rng).expect("non-empty training set");

    let predicted: Vec<f64> = test.iter().map(|s| model.predict(&encode(s))).collect();
    let truth: Vec<f64> = test.iter().map(|s| s.temperature).collect();
    metrics::mse(&predicted, &truth)
}

/// Trains and scores one basis kind on the Mars surrogate; returns the test
/// MSE. Exposed for the Figure 8 sweep.
#[must_use]
pub fn run_mars(data: &mars::MarsDataset, kind: BasisKind, config: &Table2Config) -> f64 {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));

    let anomaly_enc = BinnedAngleEncoder::new(kind, config.mars_bins, config.dim, &mut rng)
        .expect("valid anomaly encoder");
    let (min_p, max_p) = data.power_range();
    let label_enc =
        ScalarEncoder::with_levels(min_p, max_p, config.label_levels, config.dim, &mut rng)
            .expect("valid label encoder");

    let (train_idx, test_idx) = split::random(data.samples.len(), config.train_fraction, &mut rng);
    let mut trainer = RegressionTrainer::new(label_enc);
    for &i in &train_idx {
        let s = &data.samples[i];
        trainer.observe(anomaly_enc.encode(s.mean_anomaly), s.power);
    }
    let model = trainer.finish(&mut rng).expect("non-empty training set");

    let predicted: Vec<f64> = test_idx
        .iter()
        .map(|&i| model.predict(anomaly_enc.encode(data.samples[i].mean_anomaly)))
        .collect();
    let truth: Vec<f64> = test_idx.iter().map(|&i| data.samples[i].power).collect();
    metrics::mse(&predicted, &truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_beats_variance_baseline_with_circular() {
        let config = Table2Config::quick();
        let data = mars::generate(&config.mars);
        let truth: Vec<f64> = data.samples.iter().map(|s| s.power).collect();
        let mean = truth.iter().sum::<f64>() / truth.len() as f64;
        let variance = truth.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / truth.len() as f64;

        let mse = run_mars(&data, BasisKind::Circular { randomness: 0.01 }, &config);
        assert!(
            mse < variance,
            "circular MSE {mse} must beat variance {variance}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let config = Table2Config::quick();
        let data = mars::generate(&config.mars);
        let a = run_mars(&data, BasisKind::Random, &config);
        let b = run_mars(&data, BasisKind::Random, &config);
        assert_eq!(a, b);
    }
}
