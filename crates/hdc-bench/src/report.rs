//! Plain-text table formatting and results persistence for the experiment
//! binary.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Formats a table with a header row and aligned columns (space-padded),
/// matching the look of the paper's tables in a terminal.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
#[must_use]
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let columns = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), columns, "row arity differs from header arity");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{cell:<w$}");
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    write_row(
        &mut out,
        &headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (columns - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        write_row(&mut out, row);
    }
    out
}

/// The directory experiment outputs are written to (`results/` beside the
/// workspace root, honouring `HDC_RESULTS_DIR` if set).
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("HDC_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR = crates/hdc-bench; results live at the repo root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("results"), |root| root.join("results"))
}

/// Writes `content` into `results_dir()/name`, creating the directory as
/// needed, and returns the full path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save(name: &str, content: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, content)?;
    Ok(path)
}

/// Writes CSV content (header + rows) into the results directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_csv(name: &str, header: &str, rows: &[Vec<String>]) -> io::Result<PathBuf> {
    let mut content = String::from(header);
    content.push('\n');
    for row in rows {
        content.push_str(&row.join(","));
        content.push('\n');
    }
    save(name, &content)
}

/// Ensures a path's parent chain is printable relative to the repo root —
/// convenience for CLI output.
#[must_use]
pub fn display_path(path: &Path) -> String {
    path.display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_table_aligns_columns() {
        let table = format_table(
            &["Dataset", "Random", "Level"],
            &[
                vec!["Knot Tying".into(), "76.6%".into(), "75.9%".into()],
                vec!["Suturing".into(), "73.0%".into(), "60.4%".into()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("76.6%"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn format_table_rejects_ragged_rows() {
        let _ = format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn save_round_trips() {
        let dir = std::env::temp_dir().join("hdc-bench-report-test");
        std::env::set_var("HDC_RESULTS_DIR", &dir);
        let path = save("test.txt", "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let csv = save_csv("test.csv", "a,b", &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(&csv).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::env::remove_var("HDC_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
