//! CLI that regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <command> [--quick]
//!
//! commands:
//!   table1    Table 1  — JIGSAWS classification accuracy
//!   table2    Table 2  — Beijing / Mars Express regression MSE
//!   fig3      Figure 3 — pairwise similarity heatmaps
//!   fig4      Figure 4 — bit-flip Markov chain absorption times
//!   fig6      Figure 6 — r-hyperparameter similarity profiles
//!   fig7      Figure 7 — normalized regression MSE (Table 2 normalized)
//!   fig8      Figure 8 — normalized error vs r sweep
//!   ablation  extra ablations (basis fidelity, BSC vs MAP, factors, hashing)
//!   all       everything above
//! ```
//!
//! `--quick` switches to reduced configurations (smaller dimension and
//! corpora) so the full suite finishes in seconds; used by integration
//! tests. Results are printed and also written to `results/`.

use std::process::ExitCode;

use hdc_basis::analysis;
use hdc_bench::figures::{fig3, fig4, fig6, fig8};
use hdc_bench::{ablation, report, table1, table2};
use hdc_learn::metrics;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let command = args.iter().find(|a| !a.starts_with("--")).cloned();

    let Some(command) = command else {
        eprintln!(
            "usage: experiments <table1|table2|fig3|fig4|fig6|fig7|fig8|ablation|all> [--quick]"
        );
        return ExitCode::FAILURE;
    };

    match command.as_str() {
        "table1" => run_table1(quick),
        "table2" => run_table2(quick),
        "fig3" => run_fig3(quick),
        "fig4" => run_fig4(quick),
        "fig6" => run_fig6(quick),
        "fig7" => run_fig7(quick),
        "fig8" => run_fig8(quick),
        "ablation" => run_ablation(quick),
        "all" => {
            run_fig3(quick);
            run_fig4(quick);
            run_fig6(quick);
            run_table1(quick);
            run_table2(quick);
            run_fig7(quick);
            run_fig8(quick);
            run_ablation(quick);
        }
        other => {
            eprintln!("unknown command: {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn table1_config(quick: bool) -> table1::Table1Config {
    if quick {
        table1::Table1Config::quick()
    } else {
        table1::Table1Config::default()
    }
}

fn table2_config(quick: bool) -> table2::Table2Config {
    if quick {
        table2::Table2Config::quick()
    } else {
        table2::Table2Config::default()
    }
}

fn run_table1(quick: bool) {
    let config = table1_config(quick);
    println!(
        "\n== Table 1: classification accuracy (circular r = {}) ==",
        config.circular_randomness
    );
    let rows = table1::run(&config);
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.name().to_string(),
                format!("{:.1}%", 100.0 * r.random),
                format!("{:.1}%", 100.0 * r.level),
                format!("{:.1}%", 100.0 * r.circular),
            ]
        })
        .collect();
    let table = report::format_table(&["Dataset", "Random", "Level", "Circular"], &formatted);
    print!("{table}");
    persist("table1.txt", &table);
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.name().to_string(),
                format!("{:.4}", r.random),
                format!("{:.4}", r.level),
                format!("{:.4}", r.circular),
            ]
        })
        .collect();
    persist_csv("table1.csv", "dataset,random,level,circular", &csv_rows);
}

fn run_table2(quick: bool) {
    let config = table2_config(quick);
    println!(
        "\n== Table 2: regression MSE (circular r = {}) ==",
        config.circular_randomness
    );
    let rows = table2::run(&config);
    print_table2(&rows);
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{:.2}", r.random),
                format!("{:.2}", r.level),
                format!("{:.2}", r.circular),
            ]
        })
        .collect();
    persist_csv("table2.csv", "dataset,random,level,circular", &csv_rows);
}

fn print_table2(rows: &[table2::Table2Row]) {
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                format!("{:.1}", r.random),
                format!("{:.1}", r.level),
                format!("{:.1}", r.circular),
            ]
        })
        .collect();
    let table = report::format_table(&["Dataset", "Random", "Level", "Circular"], &formatted);
    print!("{table}");
    persist("table2.txt", &table);
}

fn run_fig3(quick: bool) {
    let (m, dim) = if quick { (10, 2_048) } else { (10, 10_000) };
    println!("\n== Figure 3: pairwise similarity of basis sets (m = {m}, d = {dim}) ==");
    let matrices = fig3::run(m, dim, 0xF163);
    let mut saved = String::new();
    for matrix in &matrices {
        println!("\n-- {} --", matrix.name);
        let text = analysis::format_matrix(&matrix.values);
        let art = analysis::render_heatmap(&matrix.values);
        println!("{text}");
        println!("{art}");
        saved.push_str(&format!("-- {} --\n{text}\n{art}\n", matrix.name));
    }
    persist("fig3.txt", &saved);
}

fn run_fig4(quick: bool) {
    let dim = if quick { 1_000 } else { 10_000 };
    println!("\n== Figure 4: expected flips to reach distance Δ (d = {dim}) ==");
    let points = fig4::run(dim, 10);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.delta),
                format!("{:.1}", p.expected_flips),
                format!("{:.0}", p.linear_flips),
                format!("{:.3}", p.expected_flips / p.linear_flips.max(1.0)),
            ]
        })
        .collect();
    let table = report::format_table(
        &["Δ", "𭟋 (expected flips)", "Δ·d (linear)", "ratio"],
        &rows,
    );
    print!("{table}");
    persist("fig4.txt", &table);
    persist_csv(
        "fig4.csv",
        "delta,expected_flips,linear_flips",
        &points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.3}", p.delta),
                    format!("{:.3}", p.expected_flips),
                    format!("{:.0}", p.linear_flips),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

fn run_fig6(quick: bool) {
    let dim = if quick { 2_048 } else { 10_000 };
    println!("\n== Figure 6: effect of r on circular similarities (m = 10, d = {dim}) ==");
    let profiles = fig6::run(10, dim, &[0.0, 0.5, 1.0], 0xF166);
    let mut rows = Vec::new();
    for node in 0..10 {
        rows.push(vec![
            node.to_string(),
            format!("{:.3}", profiles[0].similarities[node]),
            format!("{:.3}", profiles[1].similarities[node]),
            format!("{:.3}", profiles[2].similarities[node]),
        ]);
    }
    let table = report::format_table(&["node", "r=0 (circular)", "r=0.5", "r=1 (random)"], &rows);
    print!("{table}");
    persist("fig6.txt", &table);
}

fn run_fig7(quick: bool) {
    let config = table2_config(quick);
    println!("\n== Figure 7: normalized regression MSE (reference: random) ==");
    let rows = table2::run(&config);
    let formatted: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.dataset.to_string(),
                "1.000".to_string(),
                format!("{:.3}", metrics::normalized_mse(r.level, r.random)),
                format!("{:.3}", metrics::normalized_mse(r.circular, r.random)),
            ]
        })
        .collect();
    let table = report::format_table(&["Dataset", "Random", "Level", "Circular"], &formatted);
    print!("{table}");
    persist("fig7.txt", &table);
}

fn run_fig8(quick: bool) {
    let config = if quick {
        fig8::Fig8Config::quick()
    } else {
        fig8::Fig8Config::default()
    };
    println!("\n== Figure 8: normalized error vs r (reference: random) ==");
    let series = fig8::run(&config);
    let mut headers: Vec<String> = vec!["r".to_string()];
    headers.extend(series.iter().map(|s| s.dataset.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut rows = Vec::new();
    for (i, &r) in config.r_values.iter().enumerate() {
        let mut row = vec![format!("{r:.2}")];
        for s in &series {
            row.push(format!("{:.3}", s.points[i].1));
        }
        rows.push(row);
    }
    let table = report::format_table(&header_refs, &rows);
    print!("{table}");
    persist("fig8.txt", &table);
    persist_csv("fig8.csv", &headers.join(","), &rows);
}

fn run_ablation(quick: bool) {
    let dim = if quick { 2_048 } else { 8_192 };
    println!("\n== Ablation: level-set construction fidelity ==");
    let rows: Vec<Vec<String>> = ablation::basis_fidelity(12, dim, 0xAB1)
        .iter()
        .map(|r| vec![r.name.to_string(), format!("{:.4}", r.deviation)])
        .collect();
    print!(
        "{}",
        report::format_table(&["construction", "mean |measured - designed|"], &rows)
    );

    println!("\n== Ablation: BSC vs MAP model ==");
    let rows: Vec<Vec<String>> = ablation::bsc_vs_map(dim / 4, 8, 0xAB2, &[0.40, 0.44, 0.46, 0.48])
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.noise),
                format!("{:.1}%", 100.0 * r.bsc_accuracy),
                format!("{:.1}%", 100.0 * r.map_accuracy),
            ]
        })
        .collect();
    print!(
        "{}",
        report::format_table(&["noise", "BSC accuracy", "MAP accuracy"], &rows)
    );

    println!("\n== Ablation: regression kernel sharpening by factor count ==");
    let rows: Vec<Vec<String>> = ablation::factor_sharpening(dim, 0xAB3, 3)
        .iter()
        .map(|r| vec![r.factors.to_string(), format!("{:.3}", r.prediction_spread)])
        .collect();
    print!(
        "{}",
        report::format_table(&["bound factors", "prediction spread"], &rows)
    );

    println!("\n== Ablation: hash-ring remapping ==");
    let rows: Vec<Vec<String>> = ablation::hash_robustness(dim, 0xAB4)
        .iter()
        .map(|r| {
            vec![
                r.scenario.to_string(),
                format!("{:.1}%", 100.0 * r.remapped_fraction),
            ]
        })
        .collect();
    let table = report::format_table(&["scenario", "keys remapped"], &rows);
    print!("{table}");
    persist("ablation.txt", &table);
}

fn persist(name: &str, content: &str) {
    match report::save(name, content) {
        Ok(path) => println!("[saved {}]", report::display_path(&path)),
        Err(err) => eprintln!("warning: could not save {name}: {err}"),
    }
}

fn persist_csv(name: &str, header: &str, rows: &[Vec<String>]) {
    match report::save_csv(name, header, rows) {
        Ok(path) => println!("[saved {}]", report::display_path(&path)),
        Err(err) => eprintln!("warning: could not save {name}: {err}"),
    }
}
