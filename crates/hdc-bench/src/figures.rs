//! Figures 3, 4, 6 and 8 of the paper.
//!
//! * [`fig3`] — pairwise similarity matrices of random, level and circular
//!   basis sets (rendered as numeric tables and ASCII heatmaps).
//! * [`fig4`] — the bit-flip Markov chain's expected absorption times
//!   (scatter-code flip schedule), the quantity behind Figure 4's analysis.
//! * [`fig6`] — the effect of the `r` hyperparameter on node-to-reference
//!   similarity around a circular set of 10.
//! * [`fig8`] — normalized error of all five learning tasks as `r` sweeps
//!   from 0 (structured) to 1 (random).

use hdc_basis::{analysis, markov, BasisKind, CircularBasis, LevelBasis, RandomBasis};
use hdc_datasets::jigsaws::JigsawsTask;
use hdc_datasets::{beijing, mars};
use hdc_learn::metrics;
use rand::{rngs::StdRng, SeedableRng};

use crate::{table1, table2};

/// Figure 3: similarity matrices for the three basis families.
pub mod fig3 {
    use super::*;

    /// One similarity matrix with its label.
    #[derive(Debug, Clone)]
    pub struct Matrix {
        /// Basis family name.
        pub name: &'static str,
        /// The `m × m` pairwise similarity matrix (flat row-major).
        pub values: analysis::SimilarityMatrix,
    }

    /// Computes the three matrices with `m` members of dimensionality `dim`
    /// (the paper's figure uses indices 0–9, i.e. `m = 10`).
    #[must_use]
    pub fn run(m: usize, dim: usize, seed: u64) -> Vec<Matrix> {
        let mut rng = StdRng::seed_from_u64(seed);
        let random = RandomBasis::new(m, dim, &mut rng).expect("valid parameters");
        let level = LevelBasis::new(m, dim, &mut rng).expect("valid parameters");
        let circular = CircularBasis::new(m, dim, &mut rng).expect("valid parameters");
        vec![
            Matrix {
                name: "Random",
                values: analysis::similarity_matrix(&random),
            },
            Matrix {
                name: "Level",
                values: analysis::similarity_matrix(&level),
            },
            Matrix {
                name: "Circular",
                values: analysis::similarity_matrix(&circular),
            },
        ]
    }
}

/// Figure 4: expected number of random flips to reach a target distance.
pub mod fig4 {
    use super::*;

    /// One sweep point: target distance and the expected flips to reach it.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Point {
        /// Target normalized distance `Δ`.
        pub delta: f64,
        /// Expected flips `𭟋` from the birth–death recursion.
        pub expected_flips: f64,
        /// The naive linear estimate `Δ·d` (what the flips would be if no
        /// flip ever undid progress).
        pub linear_flips: f64,
    }

    /// Sweeps `Δ` from 0 to 0.5 in `steps` increments at dimensionality
    /// `dim`, also verifying the tridiagonal solution agrees.
    ///
    /// # Panics
    ///
    /// Panics if the two independent computations of `𭟋` disagree — that
    /// would mean the paper's linear system was set up wrong.
    #[must_use]
    pub fn run(dim: usize, steps: usize) -> Vec<Point> {
        (0..=steps)
            .map(|i| {
                let delta = 0.5 * i as f64 / steps as f64;
                let target = (delta * dim as f64).round() as usize;
                let flips = markov::expected_flips(dim, target);
                let tri = markov::expected_flips_tridiagonal(dim, target);
                assert!(
                    (flips - tri).abs() / flips.max(1.0) < 1e-6,
                    "recursion and tridiagonal solver disagree at Δ={delta}"
                );
                Point {
                    delta,
                    expected_flips: flips,
                    linear_flips: target as f64,
                }
            })
            .collect()
    }
}

/// Figure 6: node-to-reference similarity around a circular set as `r`
/// varies.
pub mod fig6 {
    use super::*;

    /// The similarity profile of one `r` value.
    #[derive(Debug, Clone)]
    pub struct Profile {
        /// The randomness hyperparameter.
        pub r: f64,
        /// Similarity of node `i` to the reference node 0.
        pub similarities: Vec<f64>,
    }

    /// Computes profiles for the given `r` values over a circular set of
    /// `m` hypervectors (the paper shows `m = 10`, r ∈ {0, 0.5, 1}).
    #[must_use]
    pub fn run(m: usize, dim: usize, r_values: &[f64], seed: u64) -> Vec<Profile> {
        r_values
            .iter()
            .map(|&r| {
                let mut rng = StdRng::seed_from_u64(seed);
                let basis =
                    CircularBasis::with_randomness(m, dim, r, &mut rng).expect("valid parameters");
                Profile {
                    r,
                    similarities: analysis::similarity_profile(&basis, 0),
                }
            })
            .collect()
    }
}

/// Figure 8: normalized error vs `r` for all five tasks.
pub mod fig8 {
    use super::*;

    /// The normalized-error series of one dataset.
    #[derive(Debug, Clone)]
    pub struct Series {
        /// Dataset name as in the paper's legend.
        pub dataset: &'static str,
        /// `(r, normalized error)` pairs; 1.0 means "as bad as random".
        pub points: Vec<(f64, f64)>,
    }

    /// Configuration of the sweep.
    #[derive(Debug, Clone)]
    pub struct Fig8Config {
        /// The r values to evaluate.
        pub r_values: Vec<f64>,
        /// Classification setup (shared with Table 1).
        pub table1: table1::Table1Config,
        /// Regression setup (shared with Table 2).
        pub table2: table2::Table2Config,
    }

    impl Default for Fig8Config {
        fn default() -> Self {
            Self {
                r_values: vec![0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
                table1: table1::Table1Config::default(),
                table2: table2::Table2Config::default(),
            }
        }
    }

    impl Fig8Config {
        /// Reduced sweep for smoke tests.
        #[must_use]
        pub fn quick() -> Self {
            Self {
                r_values: vec![0.0, 0.1, 1.0],
                table1: table1::Table1Config::quick(),
                table2: table2::Table2Config::quick(),
            }
        }
    }

    /// Runs the sweep: for every dataset, the random-basis performance is
    /// the reference (normalized error 1.0) and each `r` produces one
    /// circular-basis point.
    #[must_use]
    pub fn run(config: &Fig8Config) -> Vec<Series> {
        let mut series = Vec::new();

        // Regression datasets: normalized MSE.
        let beijing_data = beijing::generate(&config.table2.beijing);
        let reference = table2::run_beijing(&beijing_data, BasisKind::Random, &config.table2);
        series.push(Series {
            dataset: "Beijing",
            points: config
                .r_values
                .iter()
                .map(|&r| {
                    let mse = table2::run_beijing(
                        &beijing_data,
                        BasisKind::Circular { randomness: r },
                        &config.table2,
                    );
                    (r, metrics::normalized_mse(mse, reference))
                })
                .collect(),
        });

        let mars_data = mars::generate(&config.table2.mars);
        let reference = table2::run_mars(&mars_data, BasisKind::Random, &config.table2);
        series.push(Series {
            dataset: "Mars Express",
            points: config
                .r_values
                .iter()
                .map(|&r| {
                    let mse = table2::run_mars(
                        &mars_data,
                        BasisKind::Circular { randomness: r },
                        &config.table2,
                    );
                    (r, metrics::normalized_mse(mse, reference))
                })
                .collect(),
        });

        // Classification datasets: normalized accuracy error.
        for task in JigsawsTask::ALL {
            let dataset = task.generate(&config.table1.jigsaws);
            let reference_acc = table1::run_task(&dataset, BasisKind::Random, &config.table1);
            series.push(Series {
                dataset: task.name(),
                points: config
                    .r_values
                    .iter()
                    .map(|&r| {
                        let acc = table1::run_task(
                            &dataset,
                            BasisKind::Circular { randomness: r },
                            &config.table1,
                        );
                        (r, metrics::normalized_accuracy_error(acc, reference_acc))
                    })
                    .collect(),
            });
        }
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_matrices_have_expected_shapes() {
        let matrices = fig3::run(10, 4_096, 3);
        assert_eq!(matrices.len(), 3);
        for m in &matrices {
            assert_eq!(m.values.len(), 10);
            assert_eq!(m.values.row(0).len(), 10);
            assert_eq!(m.values.get(0, 0), 1.0);
        }
        // Random ≈ 0.5 off-diagonal; circular wraps.
        let random = &matrices[0].values;
        assert!((random.get(0, 9) - 0.5).abs() < 0.06);
        let circular = &matrices[2].values;
        assert!(
            circular.get(0, 9) > 0.8,
            "circular wrap similarity {}",
            circular.get(0, 9)
        );
    }

    #[test]
    fn fig4_flips_grow_superlinearly() {
        let points = fig4::run(1_000, 10);
        assert_eq!(points.len(), 11);
        assert_eq!(points[0].expected_flips, 0.0);
        for p in &points[1..] {
            assert!(p.expected_flips > p.linear_flips, "Δ={}", p.delta);
        }
        // Nonlinearity increases with Δ.
        let ratio_small = points[2].expected_flips / points[2].linear_flips;
        let ratio_large = points[10].expected_flips / points[10].linear_flips;
        assert!(ratio_large > ratio_small);
    }

    #[test]
    fn fig6_r_extremes_behave() {
        let profiles = fig6::run(10, 8_192, &[0.0, 1.0], 5);
        let structured = &profiles[0].similarities;
        let random = &profiles[1].similarities;
        // r = 0: wrap-around neighbour highly similar.
        assert!(structured[9] > 0.75, "structured wrap {}", structured[9]);
        // r = 1: everything quasi-orthogonal.
        for &s in &random[1..] {
            assert!((s - 0.5).abs() < 0.06, "random profile {s}");
        }
    }
}
