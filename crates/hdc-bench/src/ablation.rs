//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! * [`basis_fidelity`] — how closely each level-set construction (legacy,
//!   Algorithm 1, scatter codes) realizes its designed distance law;
//! * [`bsc_vs_map`] — binary spatter codes vs the bipolar MAP model on a
//!   noisy prototype classification task;
//! * [`factor_sharpening`] — the single- vs multi-factor regression kernel
//!   effect documented in [`hdc_learn::RegressionModel`];
//! * [`hash_robustness`] — remapping behaviour of the hyperdimensional hash
//!   ring vs classic consistent hashing vs modulo assignment under node
//!   churn and bit corruption.

use hdc_basis::{analysis, BasisSet, LevelBasis, ScatterBasis};
use hdc_core::{BinaryHypervector, BipolarAccumulator, BipolarHypervector};
use hdc_encode::ScalarEncoder;
use hdc_hash::{modulo_assign, ClassicRing, HdcHashRing};
use hdc_learn::RegressionModel;
use rand::{rngs::StdRng, SeedableRng};

/// Mean absolute deviation of each construction's measured distance profile
/// from the designed linear law `Δ_{0,j} = j/(2(m−1))`.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisFidelity {
    /// Construction name.
    pub name: &'static str,
    /// Mean |measured − designed| over all pairs with the first member.
    pub deviation: f64,
}

/// Measures construction fidelity for the three level-set generators.
#[must_use]
pub fn basis_fidelity(m: usize, dim: usize, seed: u64) -> Vec<BasisFidelity> {
    let expected: Vec<f64> = (0..m)
        .map(|j| 1.0 - j as f64 / (2.0 * (m as f64 - 1.0)))
        .collect();
    let mut rows = Vec::new();
    for (name, basis) in [
        (
            "legacy",
            Box::new(LevelBasis::legacy(m, dim, &mut StdRng::seed_from_u64(seed)).unwrap())
                as Box<dyn BasisSet>,
        ),
        (
            "interpolation",
            Box::new(LevelBasis::new(m, dim, &mut StdRng::seed_from_u64(seed)).unwrap()),
        ),
        (
            "scatter",
            Box::new(ScatterBasis::new(m, dim, &mut StdRng::seed_from_u64(seed)).unwrap()),
        ),
    ] {
        let profile = analysis::similarity_profile(basis.as_ref(), 0);
        rows.push(BasisFidelity {
            name,
            deviation: analysis::profile_deviation(&profile, &expected),
        });
    }
    rows
}

/// Accuracy of the binary (BSC) and bipolar (MAP) models on the same noisy
/// prototype classification task, at a given per-bit corruption level.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelComparison {
    /// Fraction of bits/elements flipped in each observation.
    pub noise: f64,
    /// Accuracy of the binary spatter-code pipeline.
    pub bsc_accuracy: f64,
    /// Accuracy of the bipolar MAP pipeline.
    pub map_accuracy: f64,
}

/// Runs the BSC-vs-MAP ablation over a range of noise levels.
#[must_use]
pub fn bsc_vs_map(
    dim: usize,
    classes: usize,
    seed: u64,
    noise_levels: &[f64],
) -> Vec<ModelComparison> {
    noise_levels
        .iter()
        .map(|&noise| {
            let mut rng = StdRng::seed_from_u64(seed);
            let protos: Vec<BinaryHypervector> = (0..classes)
                .map(|_| BinaryHypervector::random(dim, &mut rng))
                .collect();

            // Shared observations: bipolar views of the same corrupted bits.
            let train: Vec<(BinaryHypervector, usize)> = (0..classes * 20)
                .map(|i| (protos[i % classes].corrupt(noise, &mut rng), i % classes))
                .collect();
            let test: Vec<(BinaryHypervector, usize)> = (0..classes * 50)
                .map(|i| (protos[i % classes].corrupt(noise, &mut rng), i % classes))
                .collect();

            // BSC: majority class vectors + Hamming.
            let bsc = hdc_learn::CentroidClassifier::fit(
                train.iter().map(|(h, l)| (h, *l)),
                classes,
                dim,
                &mut rng,
            )
            .expect("valid parameters");
            let bsc_correct = test.iter().filter(|(h, l)| bsc.predict(h) == *l).count();

            // MAP: integer accumulators + cosine.
            let mut accs: Vec<BipolarAccumulator> =
                (0..classes).map(|_| BipolarAccumulator::new(dim)).collect();
            for (h, l) in &train {
                accs[*l].push(&h.to_bipolar());
            }
            let map_vectors: Vec<BipolarHypervector> =
                accs.iter().map(|a| a.finalize_random(&mut rng)).collect();
            let map_predict = |h: &BinaryHypervector| -> usize {
                let q = h.to_bipolar();
                map_vectors
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        a.cosine(&q).partial_cmp(&b.cosine(&q)).expect("finite")
                    })
                    .expect("non-empty")
                    .0
            };
            let map_correct = test.iter().filter(|(h, l)| map_predict(h) == *l).count();

            ModelComparison {
                noise,
                bsc_accuracy: bsc_correct as f64 / test.len() as f64,
                map_accuracy: map_correct as f64 / test.len() as f64,
            }
        })
        .collect()
}

/// Prediction spread (max − min over the input range) of a regression model
/// whose sample encoding binds `factors` independent level encoders — the
/// kernel-sharpening ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorSharpening {
    /// Number of bound encoders.
    pub factors: usize,
    /// Spread of predictions over the identity task (ideal: 1.0).
    pub prediction_spread: f64,
}

/// Runs the factor-sharpening ablation on the identity task `y = x`.
#[must_use]
pub fn factor_sharpening(dim: usize, seed: u64, max_factors: usize) -> Vec<FactorSharpening> {
    (1..=max_factors)
        .map(|factors| {
            let mut rng = StdRng::seed_from_u64(seed);
            let encoders: Vec<ScalarEncoder> = (0..factors)
                .map(|_| ScalarEncoder::with_levels(0.0, 1.0, 64, dim, &mut rng).unwrap())
                .collect();
            let encode = |x: f64| -> BinaryHypervector {
                let mut hv = encoders[0].encode(x).clone();
                for enc in &encoders[1..] {
                    hv.bind_assign(enc.encode(x));
                }
                hv
            };
            let label = ScalarEncoder::with_levels(0.0, 1.0, 64, dim, &mut rng).unwrap();
            let pairs: Vec<(BinaryHypervector, f64)> = (0..200)
                .map(|i| {
                    let x = i as f64 / 199.0;
                    (encode(x), x)
                })
                .collect();
            let model = RegressionModel::fit(pairs.iter().map(|(h, y)| (h, *y)), label, &mut rng)
                .expect("non-empty");
            let preds: Vec<f64> = (0..21)
                .map(|i| model.predict(&encode(i as f64 / 20.0)))
                .collect();
            let spread = preds.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - preds.iter().copied().fold(f64::INFINITY, f64::min);
            FactorSharpening {
                factors,
                prediction_spread: spread,
            }
        })
        .collect()
}

/// Remapping behaviour of the three hashing schemes.
#[derive(Debug, Clone, PartialEq)]
pub struct HashRobustness {
    /// Scenario description.
    pub scenario: &'static str,
    /// Fraction of keys that changed owner.
    pub remapped_fraction: f64,
}

/// Runs the hashing ablation.
///
/// Two stories are measured:
///
/// * **Churn** (add a node): both consistent-hash schemes remap only a
///   small slice; modulo assignment remaps almost everything.
/// * **Memory faults**: the hyperdimensional ring degrades *gracefully* —
///   remapping grows smoothly with the bit-error rate — while in a classic
///   ring a single flipped bit of a stored 64-bit position teleports the
///   node and bulk-remaps its keys.
#[must_use]
pub fn hash_robustness(dim: usize, seed: u64) -> Vec<HashRobustness> {
    let mut rng = StdRng::seed_from_u64(seed);
    let keys: Vec<String> = (0..2_000).map(|i| format!("key-{i}")).collect();
    let nodes: Vec<String> = (0..8).map(|i| format!("node-{i}")).collect();
    let mut rows = Vec::new();

    let hdc_owners = |ring: &HdcHashRing<String>| -> Vec<String> {
        keys.iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect()
    };

    // HDC ring: add a node.
    let mut hdc = HdcHashRing::new(128, dim, &mut rng).expect("valid parameters");
    for n in &nodes {
        hdc.add_node(n.clone());
    }
    let baseline = hdc_owners(&hdc);
    hdc.add_node("node-new".into());
    rows.push(HashRobustness {
        scenario: "hdc ring: add node",
        remapped_fraction: moved_fraction(&baseline, &hdc_owners(&hdc)),
    });
    hdc.remove_node(&"node-new".to_string());

    // HDC ring: graceful degradation sweep (fresh corruption each time).
    for (scenario, noise) in [
        ("hdc ring: 0.1% bit corruption", 0.001),
        ("hdc ring: 1% bit corruption", 0.01),
        ("hdc ring: 5% bit corruption", 0.05),
    ] {
        hdc.add_node("node-3".to_string()); // repair before injecting
        hdc.corrupt_node(&"node-3".to_string(), noise, &mut rng);
        rows.push(HashRobustness {
            scenario,
            remapped_fraction: moved_fraction(&baseline, &hdc_owners(&hdc)),
        });
    }

    // Classic ring: add a node, then a single-bit position fault.
    let mut classic = ClassicRing::new();
    for n in &nodes {
        classic.add_node(n.clone());
    }
    let classic_owners = |ring: &ClassicRing<String>| -> Vec<String> {
        keys.iter()
            .map(|k| ring.lookup(k).unwrap().clone())
            .collect()
    };
    let classic_baseline = classic_owners(&classic);
    classic.add_node("node-new".into());
    rows.push(HashRobustness {
        scenario: "classic ring: add node",
        remapped_fraction: moved_fraction(&classic_baseline, &classic_owners(&classic)),
    });
    classic.remove_node(&"node-new".to_string());
    classic.corrupt_node_position(&"node-3".to_string(), 59);
    rows.push(HashRobustness {
        scenario: "classic ring: 1 flipped position bit",
        remapped_fraction: moved_fraction(&classic_baseline, &classic_owners(&classic)),
    });

    // Modulo: grow bucket count by one.
    let before: Vec<String> = keys
        .iter()
        .map(|k| modulo_assign(k, 8).to_string())
        .collect();
    let after: Vec<String> = keys
        .iter()
        .map(|k| modulo_assign(k, 9).to_string())
        .collect();
    rows.push(HashRobustness {
        scenario: "modulo: grow 8 -> 9 buckets",
        remapped_fraction: moved_fraction(&before, &after),
    });

    rows
}

fn moved_fraction(before: &[String], after: &[String]) -> f64 {
    let moved = before.iter().zip(after).filter(|(b, a)| b != a).count();
    moved as f64 / before.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_is_most_faithful_scatter_least() {
        let rows = basis_fidelity(12, 8_192, 11);
        let by_name = |n: &str| rows.iter().find(|r| r.name == n).unwrap().deviation;
        // Legacy realizes the law exactly; Algorithm 1 only in expectation;
        // scatter's walk targeting adds further variance.
        assert!(by_name("legacy") < by_name("interpolation") + 1e-9);
        assert!(by_name("interpolation") < 0.05);
        assert!(by_name("scatter") < 0.08);
    }

    #[test]
    fn bsc_and_map_are_comparable() {
        let rows = bsc_vs_map(4_096, 5, 3, &[0.1, 0.3]);
        for row in rows {
            assert!(
                row.bsc_accuracy > 0.9,
                "noise {} bsc {}",
                row.noise,
                row.bsc_accuracy
            );
            assert!(
                row.map_accuracy > 0.9,
                "noise {} map {}",
                row.noise,
                row.map_accuracy
            );
        }
    }

    #[test]
    fn more_factors_sharpen_the_kernel() {
        let rows = factor_sharpening(4_096, 5, 3);
        assert!(rows[2].prediction_spread > rows[0].prediction_spread);
    }

    #[test]
    fn hash_ablation_orders_schemes() {
        let rows = hash_robustness(4_096, 9);
        let by = |s: &str| {
            rows.iter()
                .find(|r| r.scenario.starts_with(s))
                .unwrap()
                .remapped_fraction
        };
        assert!(by("modulo") > 0.5, "modulo remaps most keys");
        assert!(by("hdc ring: add node") < 0.4);
        assert!(by("classic ring: add node") < 0.4);
        // Graceful degradation: remapping grows monotonically with the bit
        // error rate and is tiny for small faults…
        assert!(by("hdc ring: 0.1%") <= by("hdc ring: 1%") + 1e-9);
        assert!(by("hdc ring: 1%") <= by("hdc ring: 5%") + 1e-9);
        assert!(
            by("hdc ring: 0.1%") < 0.02,
            "0.1% corruption: {}",
            by("hdc ring: 0.1%")
        );
        // …while a single flipped position bit teleports a classic node.
        assert!(
            by("classic ring: 1 flipped") > by("hdc ring: 1%"),
            "classic {} vs hdc {}",
            by("classic ring: 1 flipped"),
            by("hdc ring: 1%")
        );
    }
}

#[cfg(test)]
mod debug_tests {
    #[test]
    #[ignore]
    fn print_hash_rows() {
        for row in super::hash_robustness(4_096, 9) {
            eprintln!("{:40} {:.3}", row.scenario, row.remapped_fraction);
        }
    }
}
