use hdc_core::{BinaryHypervector, HdcError};
use rand::Rng;

use crate::span::spanned_levels;
use crate::BasisSet;

/// A set of hypervectors arranged on a circle (paper §5.1) for encoding
/// *circular data*: angles, day-of-year, hour-of-day, phases, orientations.
///
/// Member `C_i` represents the angle `2π·i/m`. Expected distances are
/// proportional to the **circular (arc) distance** between the represented
/// angles: `E[δ(C_i, C_j)] = arc(i, j)/m` where
/// `arc(i, j) = min(|i−j|, m−|i−j|)`, so diametrically opposite members are
/// quasi-orthogonal (δ ≈ 0.5) and — unlike a [`LevelBasis`] — the set wraps:
/// `C_0` and `C_{m−1}` are *neighbours*.
///
/// The construction (Figure 5 of the paper) proceeds in two phases:
/// phase 1 lays a level set of `m/2 + 1` hypervectors over half the circle;
/// phase 2 replays the XOR *transitions* between consecutive levels onto the
/// far end, folding the path back to the start.
///
/// Odd cardinalities are supported via the paper's footnote: a set of `2m`
/// is generated and every other member kept.
///
/// # Example
///
/// ```
/// use hdc_basis::{BasisSet, CircularBasis};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let hours = CircularBasis::new(24, 10_000, &mut rng)?;
/// // 23:00 is as close to 00:00 as 01:00 is.
/// let wrap = hours.get(23).normalized_hamming(hours.get(0));
/// let step = hours.get(1).normalized_hamming(hours.get(0));
/// assert!((wrap - step).abs() < 0.05);
/// # Ok::<(), hdc_basis::HdcError>(())
/// ```
///
/// [`LevelBasis`]: crate::LevelBasis
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircularBasis {
    hvs: Vec<BinaryHypervector>,
    dim: usize,
}

impl CircularBasis {
    /// Creates `m` circular-hypervectors (`r = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `m < 2` or
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn new(m: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        Self::with_randomness(m, dim, 0.0, rng)
    }

    /// Creates `m` circular-hypervectors with randomness `r ∈ [0, 1]`
    /// (paper §5.2). The interpolation applies to phase 1 only; phase 2
    /// replays whatever transitions phase 1 produced, so the wrap-around
    /// structure survives for every `r < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `m < 2`, `dim == 0` or `r ∉ [0, 1]`.
    pub fn with_randomness(
        m: usize,
        dim: usize,
        r: f64,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        crate::validate_basis_params(m, dim, 2)?;
        crate::validate_randomness(r)?;
        if m % 2 == 0 {
            Ok(Self {
                hvs: Self::generate_even(m, dim, r, rng),
                dim,
            })
        } else {
            // Footnote 1 of the paper: an odd set is the subset
            // {C_0, C_2, …, C_{2m−2}} of an even set of size 2m.
            let even = Self::generate_even(2 * m, dim, r, rng);
            Ok(Self {
                hvs: even.into_iter().step_by(2).collect(),
                dim,
            })
        }
    }

    fn generate_even(m: usize, dim: usize, r: f64, rng: &mut impl Rng) -> Vec<BinaryHypervector> {
        debug_assert!(m % 2 == 0 && m >= 2);
        let half = m / 2;
        // Phase 1: a level set over half the circle (m/2 + 1 hypervectors,
        // endpoints quasi-orthogonal), interpolated on the worker pool.
        let levels = spanned_levels(half + 1, dim, r, rng);
        // Transitions T_k = C_k ⊗ C_{k+1}: the bits flipped between
        // consecutive levels of phase 1. A handful of word-wide XORs —
        // far below the cost of spawning workers, so this stays serial.
        let transitions: Vec<BinaryHypervector> =
            (0..half).map(|k| levels[k].bind(&levels[k + 1])).collect();

        let mut hvs = levels;
        // Phase 2 (Equation 3): replay the transitions, in order, onto the
        // far side of the circle. The final transition would return to C_0
        // and is not materialized.
        for k in 0..half.saturating_sub(1) {
            let next = hvs[half + k].bind(&transitions[k]);
            hvs.push(next);
        }
        debug_assert_eq!(hvs.len(), m);
        hvs
    }

    /// The angle `2π·index/m` represented by member `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[must_use]
    pub fn angle(&self, index: usize) -> f64 {
        assert!(
            index < self.hvs.len(),
            "index {index} out of range for {} members",
            self.hvs.len()
        );
        2.0 * std::f64::consts::PI * index as f64 / self.hvs.len() as f64
    }

    /// The expected normalized distance `arc(i, j)/m` between members `i`
    /// and `j` under the `r = 0` construction (0-based indices).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn expected_distance(&self, i: usize, j: usize) -> f64 {
        let m = self.hvs.len();
        assert!(
            i < m && j < m,
            "indices ({i}, {j}) out of range for {m} members"
        );
        let diff = i.abs_diff(j);
        diff.min(m - diff) as f64 / m as f64
    }
}

impl BasisSet for CircularBasis {
    fn len(&self) -> usize {
        self.hvs.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn get(&self, index: usize) -> &BinaryHypervector {
        &self.hvs[index]
    }

    fn hypervectors(&self) -> &[BinaryHypervector] {
        &self.hvs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(555)
    }

    #[test]
    fn distances_follow_arc_profile() {
        let mut r = rng();
        let m = 16;
        let basis = CircularBasis::new(m, 20_000, &mut r).unwrap();
        for i in 0..m {
            for j in 0..m {
                let expected = basis.expected_distance(i, j);
                let actual = basis.get(i).normalized_hamming(basis.get(j));
                assert!(
                    (actual - expected).abs() < 0.04,
                    "i={i} j={j} expected={expected:.3} actual={actual:.3}"
                );
            }
        }
    }

    #[test]
    fn opposite_members_quasi_orthogonal_from_every_start() {
        let mut r = rng();
        let m = 12;
        let basis = CircularBasis::new(m, 10_000, &mut r).unwrap();
        for i in 0..m {
            let d = basis.get(i).normalized_hamming(basis.get((i + m / 2) % m));
            assert!((d - 0.5).abs() < 0.05, "i={i} d={d}");
        }
    }

    #[test]
    fn wraps_around() {
        let mut r = rng();
        let basis = CircularBasis::new(10, 10_000, &mut r).unwrap();
        let wrap = basis.get(0).normalized_hamming(basis.get(9));
        let step = basis.get(0).normalized_hamming(basis.get(1));
        assert!((wrap - step).abs() < 0.04, "wrap={wrap} step={step}");
        assert!(wrap < 0.2);
    }

    #[test]
    fn odd_cardinality_keeps_circular_profile() {
        let mut r = rng();
        let m = 9;
        let basis = CircularBasis::new(m, 16_384, &mut r).unwrap();
        assert_eq!(basis.len(), m);
        for i in 0..m {
            for j in 0..m {
                let expected = basis.expected_distance(i, j);
                let actual = basis.get(i).normalized_hamming(basis.get(j));
                assert!(
                    (actual - expected).abs() < 0.05,
                    "i={i} j={j} expected={expected:.3} actual={actual:.3}"
                );
            }
        }
    }

    #[test]
    fn minimal_even_set() {
        let mut r = rng();
        let basis = CircularBasis::new(2, 4_096, &mut r).unwrap();
        assert_eq!(basis.len(), 2);
        let d = basis.get(0).normalized_hamming(basis.get(1));
        assert!((d - 0.5).abs() < 0.05);
    }

    #[test]
    fn full_randomness_decorrelates_everything() {
        let mut r = rng();
        let basis = CircularBasis::with_randomness(12, 10_000, 1.0, &mut r).unwrap();
        for i in 0..12 {
            for j in (i + 1)..12 {
                let d = basis.get(i).normalized_hamming(basis.get(j));
                assert!((d - 0.5).abs() < 0.05, "i={i} j={j} d={d}");
            }
        }
    }

    #[test]
    fn small_randomness_keeps_neighbours_close() {
        let mut r = rng();
        let basis = CircularBasis::with_randomness(20, 10_000, 0.1, &mut r).unwrap();
        for i in 0..20 {
            let d = basis.get(i).normalized_hamming(basis.get((i + 1) % 20));
            assert!(d < 0.35, "i={i} neighbour distance {d}");
        }
    }

    #[test]
    fn angle_mapping() {
        let mut r = rng();
        let basis = CircularBasis::new(8, 512, &mut r).unwrap();
        assert_eq!(basis.angle(0), 0.0);
        assert!((basis.angle(4) - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut r = rng();
        assert!(matches!(
            CircularBasis::new(1, 64, &mut r),
            Err(HdcError::InvalidBasisSize { .. })
        ));
        assert!(matches!(
            CircularBasis::with_randomness(8, 64, 1.01, &mut r),
            Err(HdcError::InvalidRandomness(_))
        ));
        assert!(matches!(
            CircularBasis::new(8, 0, &mut r),
            Err(HdcError::InvalidDimension(0))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_arc_symmetry(seed in 0u64..100, half in 2usize..10) {
            // δ(C_i, C_j) depends (in expectation) only on the arc distance;
            // check the two arcs of equal length agree.
            let m = 2 * half;
            let mut r = StdRng::seed_from_u64(seed);
            let basis = CircularBasis::new(m, 8_192, &mut r).unwrap();
            for k in 1..half {
                let forward = basis.get(0).normalized_hamming(basis.get(k));
                let backward = basis.get(0).normalized_hamming(basis.get(m - k));
                prop_assert!(
                    (forward - backward).abs() < 0.06,
                    "k={} forward={} backward={}", k, forward, backward
                );
            }
        }
    }
}
