use hdc_core::{BinaryHypervector, HdcError};
use rand::Rng;

use crate::BasisSet;

/// A set of independently, uniformly sampled hypervectors (paper §3.1) —
/// the basis for *symbolic/categorical* information.
///
/// Every pair of members is quasi-orthogonal with overwhelming probability,
/// so the set carries maximal information content but preserves no input
/// correlation: it is the `r = 1` endpoint of the interpolation studied in
/// §5.2 of the paper.
///
/// # Example
///
/// ```
/// use hdc_basis::{BasisSet, RandomBasis};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let letters = RandomBasis::new(26, 10_000, &mut rng)?;
/// let d = letters.get(0).normalized_hamming(letters.get(25));
/// assert!((d - 0.5).abs() < 0.05);
/// # Ok::<(), hdc_basis::HdcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomBasis {
    hvs: Vec<BinaryHypervector>,
    dim: usize,
}

impl RandomBasis {
    /// Samples `m` hypervectors of dimensionality `dim` uniformly at random.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `m < 1` or
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn new(m: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        crate::validate_basis_params(m, dim, 1)?;
        Ok(Self {
            hvs: (0..m)
                .map(|_| BinaryHypervector::random(dim, rng))
                .collect(),
            dim,
        })
    }
}

impl BasisSet for RandomBasis {
    fn len(&self) -> usize {
        self.hvs.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn get(&self, index: usize) -> &BinaryHypervector {
        &self.hvs[index]
    }

    fn hypervectors(&self) -> &[BinaryHypervector] {
        &self.hvs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn all_pairs_quasi_orthogonal() {
        let mut rng = StdRng::seed_from_u64(7);
        let basis = RandomBasis::new(12, 10_000, &mut rng).unwrap();
        for i in 0..12 {
            for j in (i + 1)..12 {
                let d = basis.get(i).normalized_hamming(basis.get(j));
                assert!((d - 0.5).abs() < 0.05, "pair ({i},{j}) distance {d}");
            }
        }
    }

    #[test]
    fn singleton_is_allowed() {
        let mut rng = StdRng::seed_from_u64(7);
        let basis = RandomBasis::new(1, 64, &mut rng).unwrap();
        assert_eq!(basis.len(), 1);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(matches!(
            RandomBasis::new(0, 64, &mut rng),
            Err(HdcError::InvalidBasisSize { .. })
        ));
        assert!(matches!(
            RandomBasis::new(4, 0, &mut rng),
            Err(HdcError::InvalidDimension(0))
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = RandomBasis::new(5, 256, &mut StdRng::seed_from_u64(3)).unwrap();
        let b = RandomBasis::new(5, 256, &mut StdRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }
}
