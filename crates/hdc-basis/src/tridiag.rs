//! A tridiagonal linear-system solver (Thomas algorithm).
//!
//! Paper §4.2 reduces the expected number of bit flips between two
//! level-hypervectors to "a solvable tridiagonal linear system" (citing
//! Stone's parallel tridiagonal work). This module provides the sequential
//! O(n) solver used by [`crate::markov`]; the closed-form birth–death
//! recursion in that module cross-validates it.
//!
//! ```
//! use hdc_basis::tridiag::solve_tridiagonal;
//!
//! // Solve the 3×3 system [[2,1,0],[1,2,1],[0,1,2]] · x = [4,8,8].
//! let x = solve_tridiagonal(&[1.0, 1.0], &[2.0, 2.0, 2.0], &[1.0, 1.0], &[4.0, 8.0, 8.0])?;
//! assert!((x[0] - 1.0).abs() < 1e-12);
//! assert!((x[1] - 2.0).abs() < 1e-12);
//! assert!((x[2] - 3.0).abs() < 1e-12);
//! # Ok::<(), hdc_basis::tridiag::SolveTridiagonalError>(())
//! ```

use std::error::Error;
use std::fmt;

/// Error returned by [`solve_tridiagonal`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveTridiagonalError {
    /// The band lengths are inconsistent with the system size.
    BadShape {
        /// Length of the main diagonal (the system size `n`).
        n: usize,
        /// Length of the sub-diagonal (must be `n − 1`).
        sub: usize,
        /// Length of the super-diagonal (must be `n − 1`).
        sup: usize,
        /// Length of the right-hand side (must be `n`).
        rhs: usize,
    },
    /// The system is empty.
    Empty,
    /// Elimination produced a (numerically) zero pivot at the given row;
    /// the system is singular or ill-conditioned.
    ZeroPivot(usize),
}

impl fmt::Display for SolveTridiagonalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SolveTridiagonalError::BadShape { n, sub, sup, rhs } => write!(
                f,
                "inconsistent band lengths: diag {n}, sub {sub}, sup {sup}, rhs {rhs}"
            ),
            SolveTridiagonalError::Empty => write!(f, "empty system"),
            SolveTridiagonalError::ZeroPivot(row) => {
                write!(f, "zero pivot encountered at row {row}")
            }
        }
    }
}

impl Error for SolveTridiagonalError {}

/// Solves `A·x = rhs` for a tridiagonal matrix `A` given by its bands:
/// `sub` (below the diagonal, length `n − 1`), `diag` (length `n`) and
/// `sup` (above the diagonal, length `n − 1`).
///
/// Runs the Thomas algorithm: O(n) time, O(n) scratch. The algorithm is
/// stable for diagonally dominant systems, which is the case for the
/// absorption-time systems built in [`crate::markov`].
///
/// # Errors
///
/// Returns [`SolveTridiagonalError`] when band lengths are inconsistent, the
/// system is empty, or a pivot collapses to zero.
pub fn solve_tridiagonal(
    sub: &[f64],
    diag: &[f64],
    sup: &[f64],
    rhs: &[f64],
) -> Result<Vec<f64>, SolveTridiagonalError> {
    let n = diag.len();
    if n == 0 {
        return Err(SolveTridiagonalError::Empty);
    }
    if sub.len() != n - 1 || sup.len() != n - 1 || rhs.len() != n {
        return Err(SolveTridiagonalError::BadShape {
            n,
            sub: sub.len(),
            sup: sup.len(),
            rhs: rhs.len(),
        });
    }

    // Forward elimination.
    let mut c_prime = vec![0.0; n - 1];
    let mut d_prime = vec![0.0; n];
    if diag[0] == 0.0 {
        return Err(SolveTridiagonalError::ZeroPivot(0));
    }
    if n > 1 {
        c_prime[0] = sup[0] / diag[0];
    }
    d_prime[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub[i - 1] * c_prime.get(i - 1).copied().unwrap_or(0.0);
        if denom == 0.0 || !denom.is_finite() {
            return Err(SolveTridiagonalError::ZeroPivot(i));
        }
        if i < n - 1 {
            c_prime[i] = sup[i] / denom;
        }
        d_prime[i] = (rhs[i] - sub[i - 1] * d_prime[i - 1]) / denom;
    }

    // Back substitution.
    let mut x = d_prime;
    for i in (0..n - 1).rev() {
        x[i] -= c_prime[i] * x[i + 1];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn multiply(sub: &[f64], diag: &[f64], sup: &[f64], x: &[f64]) -> Vec<f64> {
        let n = diag.len();
        (0..n)
            .map(|i| {
                let mut v = diag[i] * x[i];
                if i > 0 {
                    v += sub[i - 1] * x[i - 1];
                }
                if i + 1 < n {
                    v += sup[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    #[test]
    fn solves_identity() {
        let x = solve_tridiagonal(&[0.0; 3], &[1.0; 4], &[0.0; 3], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solves_single_equation() {
        let x = solve_tridiagonal(&[], &[4.0], &[], &[8.0]).unwrap();
        assert_eq!(x, vec![2.0]);
    }

    #[test]
    fn rejects_empty_and_bad_shapes() {
        assert_eq!(
            solve_tridiagonal(&[], &[], &[], &[]),
            Err(SolveTridiagonalError::Empty)
        );
        assert!(matches!(
            solve_tridiagonal(&[1.0], &[1.0, 1.0, 1.0], &[1.0, 1.0], &[0.0, 0.0, 0.0]),
            Err(SolveTridiagonalError::BadShape { .. })
        ));
    }

    #[test]
    fn rejects_singular_system() {
        // Row 1 becomes 0 after elimination: [[1,1],[1,1]].
        assert_eq!(
            solve_tridiagonal(&[1.0], &[1.0, 1.0], &[1.0], &[1.0, 1.0]),
            Err(SolveTridiagonalError::ZeroPivot(1))
        );
    }

    #[test]
    fn solves_laplacian_like_system() {
        // -1, 2, -1 tridiagonal (discrete Laplacian), rhs of ones: the known
        // solution is x_i = i(n − i + 1)/2 for 1-based i.
        let n = 10;
        let sub = vec![-1.0; n - 1];
        let diag = vec![2.0; n];
        let sup = vec![-1.0; n - 1];
        let rhs = vec![1.0; n];
        let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
        for (i, xi) in x.iter().enumerate() {
            let k = (i + 1) as f64;
            let expected = k * (n as f64 - k + 1.0) / 2.0;
            assert!(
                (xi - expected).abs() < 1e-9,
                "i={i} got {xi} want {expected}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_residual_is_small(
            n in 1usize..40,
            seed in 0u64..500,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            // Build a strictly diagonally dominant system: always solvable.
            let sub: Vec<f64> = (0..n.saturating_sub(1)).map(|_| rng.random_range(-1.0..1.0)).collect();
            let sup: Vec<f64> = (0..n.saturating_sub(1)).map(|_| rng.random_range(-1.0..1.0)).collect();
            let diag: Vec<f64> = (0..n).map(|_| rng.random_range(2.5..4.0)).collect();
            let rhs: Vec<f64> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
            let x = solve_tridiagonal(&sub, &diag, &sup, &rhs).unwrap();
            let back = multiply(&sub, &diag, &sup, &x);
            for i in 0..n {
                prop_assert!((back[i] - rhs[i]).abs() < 1e-8);
            }
        }
    }
}
