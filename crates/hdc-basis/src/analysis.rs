//! Diagnostics over basis-hypervector sets: pairwise similarity matrices,
//! per-reference similarity profiles and ASCII heatmaps — the machinery
//! behind the paper's Figures 3 and 6.
//!
//! ```
//! use hdc_basis::{analysis, BasisSet, CircularBasis};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let basis = CircularBasis::new(10, 10_000, &mut rng)?;
//! let matrix = analysis::similarity_matrix(&basis);
//! assert_eq!(matrix.len(), 10);
//! assert_eq!(matrix.get(0, 0), 1.0);
//! // Opposite members are quasi-orthogonal (similarity ≈ 0.5).
//! assert!((matrix.get(0, 5) - 0.5).abs() < 0.05);
//! # Ok::<(), hdc_basis::HdcError>(())
//! ```

use crate::BasisSet;

pub use hdc_core::similarity::SimilarityMatrix;

/// The full pairwise similarity matrix `1 − δ` of a basis set (Figure 3),
/// as a single flat row-major allocation.
pub fn similarity_matrix<B: BasisSet + ?Sized>(basis: &B) -> SimilarityMatrix {
    hdc_core::similarity::pairwise_similarity_matrix(basis.hypervectors())
}

/// The similarity of every member to a single `reference` member (the
/// quantity Figure 6 plots around the circle).
///
/// # Panics
///
/// Panics if `reference >= basis.len()`.
pub fn similarity_profile<B: BasisSet + ?Sized>(basis: &B, reference: usize) -> Vec<f64> {
    assert!(
        reference < basis.len(),
        "reference index {reference} out of range for {} members",
        basis.len()
    );
    let anchor = basis.get(reference);
    basis
        .hypervectors()
        .iter()
        .map(|hv| anchor.similarity(hv))
        .collect()
}

/// The mean absolute deviation between a measured profile and an expected
/// one — a scalar "does this basis behave as designed" check used by the
/// experiment harness.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn profile_deviation(measured: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(measured.len(), expected.len(), "profile lengths differ");
    if measured.is_empty() {
        return 0.0;
    }
    measured
        .iter()
        .zip(expected)
        .map(|(m, e)| (m - e).abs())
        .sum::<f64>()
        / measured.len() as f64
}

/// Renders a matrix of values in `[0, 1]` as an ASCII heatmap, one row per
/// line, dark-to-light `.:-=+*#%@` ramp (used by the `experiments fig3`
/// binary to approximate the paper's heatmap figures in a terminal).
#[must_use]
pub fn render_heatmap(matrix: &SimilarityMatrix) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for row in matrix.rows() {
        for &v in row {
            let clamped = v.clamp(0.0, 1.0);
            let idx = ((clamped * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
            out.push(RAMP[idx] as char); // double width ≈ square cells
        }
        out.push('\n');
    }
    out
}

/// Formats a similarity matrix as an aligned numeric table (two decimal
/// places), for textual comparison against the paper's figures.
#[must_use]
pub fn format_matrix(matrix: &SimilarityMatrix) -> String {
    let mut out = String::new();
    for row in matrix.rows() {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:5.2}")).collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircularBasis, LevelBasis, RandomBasis};
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(66)
    }

    #[test]
    fn random_matrix_is_flat_half() {
        let mut r = rng();
        let basis = RandomBasis::new(8, 10_000, &mut r).unwrap();
        let m = similarity_matrix(&basis);
        assert_eq!(m.len(), 8);
        for i in 0..8 {
            for j in 0..8 {
                if i == j {
                    assert_eq!(m.get(i, j), 1.0);
                } else {
                    assert!((m.get(i, j) - 0.5).abs() < 0.05);
                }
            }
        }
    }

    #[test]
    fn level_profile_is_descending_ramp() {
        let mut r = rng();
        let basis = LevelBasis::new(10, 16_384, &mut r).unwrap();
        let profile = similarity_profile(&basis, 0);
        assert_eq!(profile[0], 1.0);
        for w in profile.windows(2) {
            assert!(w[1] < w[0] + 0.04, "profile should descend: {profile:?}");
        }
        assert!((profile[9] - 0.5).abs() < 0.05);
    }

    #[test]
    fn circular_profile_is_v_shaped() {
        let mut r = rng();
        let basis = CircularBasis::new(12, 16_384, &mut r).unwrap();
        let profile = similarity_profile(&basis, 0);
        // Down to the antipode, back up to the wrap-around neighbour.
        let antipode = 6;
        for k in 1..=antipode {
            assert!(profile[k] < profile[k - 1] + 0.04);
        }
        for k in (antipode + 1)..12 {
            assert!(profile[k] > profile[k - 1] - 0.04);
        }
        assert!(
            profile[11] > 0.8,
            "wrap-around neighbour similar: {}",
            profile[11]
        );
    }

    #[test]
    fn profile_deviation_zero_for_identical() {
        assert_eq!(profile_deviation(&[0.1, 0.2], &[0.1, 0.2]), 0.0);
        assert!((profile_deviation(&[0.0, 1.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(profile_deviation(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "profile lengths differ")]
    fn profile_deviation_rejects_mismatched_lengths() {
        let _ = profile_deviation(&[0.0], &[0.0, 1.0]);
    }

    #[test]
    fn heatmap_dimensions() {
        // Hand-built values pin the ramp endpoints exactly: 0.0 renders as
        // the darkest character (space), 1.0 as the brightest ('@').
        let matrix = SimilarityMatrix::from_values(2, vec![0.0, 0.5, 1.0, 0.5]);
        let art = render_heatmap(&matrix);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 4);
        assert!(art.contains('@') && art.contains(' '));
    }

    #[test]
    fn format_matrix_shape() {
        let matrix = SimilarityMatrix::from_values(2, vec![1.0, 0.25, 0.25, 1.0]);
        let text = format_matrix(&matrix);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("1.00") && text.contains("0.25"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn profile_rejects_bad_reference() {
        let mut r = rng();
        let basis = RandomBasis::new(4, 64, &mut r).unwrap();
        let _ = similarity_profile(&basis, 4);
    }
}
