//! Shared span-based interpolation machinery behind level and circular
//! basis-hypervector sets (paper §4.3 Algorithm 1, generalized by §5.2).
//!
//! A *span* is one run of Algorithm 1: two random endpoint hypervectors and
//! an interpolation filter `Φ ∈ [0, 1]^d`; intermediate levels copy each bit
//! from the first endpoint when `Φ(∂) < τ_l` and from the second otherwise.
//! The randomness hyperparameter `r` shortens the spans: with
//! `n = r + (1 − r)(m − 1)` transitions per span, `r = 0` yields a single
//! span (exactly Algorithm 1) and `r = 1` yields one span per transition
//! (an uncorrelated random set).

use hdc_core::BinaryHypervector;
use rand::Rng;

/// Generates `m` hypervectors of dimensionality `dim` by concatenating
/// interpolation spans, with `r ∈ [0, 1]` controlling the span length.
///
/// The last hypervector of one span is the first hypervector of the next
/// (paper §5.2); a fresh endpoint pair and a fresh filter `Φ` are drawn per
/// span so consecutive spans are statistically independent.
///
/// All randomness is drawn up front (endpoints, then filters, in span
/// order); the per-level interpolation is a pure function of that material,
/// so the levels are computed on the scoped worker pool and the output is
/// bit-identical to a serial pass for any thread count.
///
/// Assumes `m >= 2`, `dim >= 1` and `r ∈ [0, 1]` (validated by the public
/// constructors that call this).
pub(crate) fn spanned_levels(
    m: usize,
    dim: usize,
    r: f64,
    rng: &mut impl Rng,
) -> Vec<BinaryHypervector> {
    debug_assert!(m >= 2 && dim >= 1 && (0.0..=1.0).contains(&r));
    // Transitions per span: n = r·1 + (1 − r)(m − 1)  (paper §5.2).
    let n = r + (1.0 - r) * (m as f64 - 1.0);
    let span_count = ((m as f64 - 1.0) / n).ceil().max(1.0) as usize;

    // Endpoint hypervectors E_0 … E_spans and one filter Φ per span.
    let endpoints: Vec<BinaryHypervector> = (0..=span_count)
        .map(|_| BinaryHypervector::random(dim, rng))
        .collect();
    let filters: Vec<Vec<f64>> = (0..span_count)
        .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
        .collect();

    let level = |l: usize| {
        let pos = l as f64;
        let span = ((pos / n).floor() as usize).min(span_count - 1);
        let within = pos - span as f64 * n;
        // τ_l = 1 − ((l − 1) mod n)/n in the paper's 1-based indexing.
        let tau = 1.0 - within / n;
        interpolate(&endpoints[span], &endpoints[span + 1], &filters[span], tau)
    };
    // Interpolation costs O(dim) per level; forking scoped workers costs
    // tens of microseconds each. Only fan out when the total bit-work
    // clearly exceeds that overhead — small sets (a typical m=24 encoder
    // basis) stay serial and large paper-scale sweeps parallelize.
    const PARALLEL_BIT_WORK: usize = 1 << 21;
    if m.saturating_mul(dim) < PARALLEL_BIT_WORK {
        (0..m).map(level).collect()
    } else {
        minipool::par_generate(m, level)
    }
}

/// One step of Algorithm 1: bit `∂` comes from `first` when
/// `filter(∂) < tau`, otherwise from `second`.
fn interpolate(
    first: &BinaryHypervector,
    second: &BinaryHypervector,
    filter: &[f64],
    tau: f64,
) -> BinaryHypervector {
    BinaryHypervector::from_fn(first.dim(), |i| {
        if filter[i] < tau {
            first.get(i)
        } else {
            second.get(i)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(777)
    }

    #[test]
    fn r_zero_first_and_last_are_span_endpoints() {
        let mut r = rng();
        let levels = spanned_levels(9, 2_000, 0.0, &mut r);
        assert_eq!(levels.len(), 9);
        // Single span: endpoints quasi-orthogonal, interior between them.
        assert!((levels[0].normalized_hamming(&levels[8]) - 0.5).abs() < 0.05);
    }

    #[test]
    fn r_zero_expected_distance_is_linear() {
        // E[δ(L_i, L_j)] = (j − i) / (2(m − 1))  (Proposition 4.1).
        let mut r = rng();
        let m = 11;
        let levels = spanned_levels(m, 20_000, 0.0, &mut r);
        for i in 0..m {
            for j in (i + 1)..m {
                let expected = (j - i) as f64 / (2.0 * (m as f64 - 1.0));
                let actual = levels[i].normalized_hamming(&levels[j]);
                assert!(
                    (actual - expected).abs() < 0.03,
                    "i={i} j={j} expected={expected:.3} actual={actual:.3}"
                );
            }
        }
    }

    #[test]
    fn r_one_is_fully_random() {
        let mut r = rng();
        let levels = spanned_levels(8, 10_000, 1.0, &mut r);
        for i in 0..8 {
            for j in (i + 1)..8 {
                let d = levels[i].normalized_hamming(&levels[j]);
                assert!((d - 0.5).abs() < 0.05, "i={i} j={j} d={d}");
            }
        }
    }

    #[test]
    fn intermediate_r_keeps_local_correlation_but_decorrelates_far_pairs() {
        let mut r = rng();
        let m = 16;
        let levels = spanned_levels(m, 10_000, 0.5, &mut r);
        // Neighbours remain correlated…
        let neighbor = levels[0].normalized_hamming(&levels[1]);
        assert!(neighbor < 0.25, "neighbor distance {neighbor}");
        // …while the far end is quasi-orthogonal earlier than with r = 0.
        let far = levels[0].normalized_hamming(&levels[m - 1]);
        assert!((far - 0.5).abs() < 0.06, "far distance {far}");
    }

    #[test]
    fn two_levels_are_random_pair() {
        let mut r = rng();
        let levels = spanned_levels(2, 5_000, 0.0, &mut r);
        assert!((levels[0].normalized_hamming(&levels[1]) - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = spanned_levels(6, 512, 0.25, &mut StdRng::seed_from_u64(5));
        let b = spanned_levels(6, 512, 0.25, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
