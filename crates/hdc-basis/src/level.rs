use hdc_core::{BinaryHypervector, HdcError};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::span::spanned_levels;
use crate::BasisSet;

/// A set of linearly correlated hypervectors for encoding *real numbers*
/// (paper §3.2–§4): the closer two levels, the more similar their
/// hypervectors.
///
/// Two constructions are provided:
///
/// * [`LevelBasis::new`] — the paper's **Algorithm 1** (§4.3): interpolation
///   between two random endpoints through a random filter, giving
///   `E[δ(L_i, L_j)] = (j−i)/(2(m−1))` *in expectation*. Relaxing the exact
///   distance constraint enlarges the sample space and therefore the
///   information content of the set (§4.1–§4.2).
/// * [`LevelBasis::legacy`] — the pre-existing method (Rahimi et al.;
///   Widdows & Cohen): flip a fixed group of `d/(2(m−1))` fresh bits per
///   step, never unflipping, so every pairwise distance is *exact* and the
///   endpoints are precisely orthogonal.
///
/// [`LevelBasis::with_randomness`] exposes the `r` hyperparameter of §5.2.
///
/// # Example
///
/// ```
/// use hdc_basis::{BasisSet, LevelBasis};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(10);
/// let levels = LevelBasis::new(16, 10_000, &mut rng)?;
/// // Distances grow linearly with level separation…
/// let near = levels.get(0).normalized_hamming(levels.get(1));
/// let far = levels.get(0).normalized_hamming(levels.get(15));
/// assert!(near < far);
/// // …and the endpoints are quasi-orthogonal.
/// assert!((far - 0.5).abs() < 0.05);
/// # Ok::<(), hdc_basis::HdcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelBasis {
    hvs: Vec<BinaryHypervector>,
    dim: usize,
}

impl LevelBasis {
    /// Creates `m` level-hypervectors with the paper's Algorithm 1
    /// (interpolation filters, `r = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `m < 2` or
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn new(m: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        Self::with_randomness(m, dim, 0.0, rng)
    }

    /// Creates `m` level-hypervectors with randomness `r ∈ [0, 1]`
    /// (paper §5.2): `r = 0` is Algorithm 1, `r = 1` is an uncorrelated
    /// random set, intermediate values keep local correlation while raising
    /// the set's information content.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `m < 2`, `dim == 0` or `r ∉ [0, 1]`.
    pub fn with_randomness(
        m: usize,
        dim: usize,
        r: f64,
        rng: &mut impl Rng,
    ) -> Result<Self, HdcError> {
        crate::validate_basis_params(m, dim, 2)?;
        crate::validate_randomness(r)?;
        Ok(Self {
            hvs: spanned_levels(m, dim, r, rng),
            dim,
        })
    }

    /// Creates `m` level-hypervectors with the *legacy* fixed-flip method
    /// (paper §4): `⌊d/2⌋` distinct bit positions are flipped cumulatively in
    /// `m − 1` equal groups, so `δ(L_i, L_j)` is deterministic and the
    /// endpoints share exactly `⌈d/2⌉` bits.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `m < 2` or
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn legacy(m: usize, dim: usize, rng: &mut impl Rng) -> Result<Self, HdcError> {
        crate::validate_basis_params(m, dim, 2)?;
        let total_flips = dim / 2;
        // Choose d/2 distinct positions, then flip them group by group.
        let mut positions: Vec<usize> = (0..dim).collect();
        positions.shuffle(rng);
        positions.truncate(total_flips);

        let transitions = m - 1;
        let base = total_flips / transitions;
        let extra = total_flips % transitions;

        let mut hvs = Vec::with_capacity(m);
        let mut current = BinaryHypervector::random(dim, rng);
        hvs.push(current.clone());
        let mut cursor = 0;
        for t in 0..transitions {
            let group = base + usize::from(t < extra);
            current.flip_positions(&positions[cursor..cursor + group]);
            cursor += group;
            hvs.push(current.clone());
        }
        debug_assert_eq!(cursor, total_flips);
        Ok(Self { hvs, dim })
    }

    /// The expected normalized distance `Δ_{i,j} = (j−i)/(2(m−1))` between
    /// levels `i` and `j` (0-based indices; order-insensitive).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn expected_distance(&self, i: usize, j: usize) -> f64 {
        let m = self.hvs.len();
        assert!(
            i < m && j < m,
            "level indices ({i}, {j}) out of range for {m} levels"
        );
        i.abs_diff(j) as f64 / (2.0 * (m as f64 - 1.0))
    }
}

impl BasisSet for LevelBasis {
    fn len(&self) -> usize {
        self.hvs.len()
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn get(&self, index: usize) -> &BinaryHypervector {
        &self.hvs[index]
    }

    fn hypervectors(&self) -> &[BinaryHypervector] {
        &self.hvs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2023)
    }

    #[test]
    fn interpolation_distances_match_expectation() {
        let mut r = rng();
        let m = 12;
        let basis = LevelBasis::new(m, 20_000, &mut r).unwrap();
        for i in 0..m {
            for j in (i + 1)..m {
                let expected = basis.expected_distance(i, j);
                let actual = basis.get(i).normalized_hamming(basis.get(j));
                assert!(
                    (actual - expected).abs() < 0.03,
                    "i={i} j={j} expected={expected:.3} actual={actual:.3}"
                );
            }
        }
    }

    #[test]
    fn legacy_distances_are_exact() {
        let mut r = rng();
        let dim = 10_000;
        let m = 11;
        let basis = LevelBasis::legacy(m, dim, &mut r).unwrap();
        // With d/2 = 5000 and 10 transitions each group is exactly 500 bits:
        // δ(L_i, L_j) = |j − i| · 500 / 10000, *exactly*.
        for i in 0..m {
            for j in i..m {
                let expected = (j - i) * 500;
                assert_eq!(
                    basis.get(i).hamming(basis.get(j)),
                    expected,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn legacy_endpoints_precisely_orthogonal() {
        let mut r = rng();
        let basis = LevelBasis::legacy(5, 8_192, &mut r).unwrap();
        assert_eq!(basis.get(0).hamming(basis.get(4)), 4_096);
    }

    #[test]
    fn legacy_uneven_groups_still_reach_half() {
        let mut r = rng();
        // 7 transitions do not divide 5000 evenly.
        let basis = LevelBasis::legacy(8, 10_000, &mut r).unwrap();
        assert_eq!(basis.get(0).hamming(basis.get(7)), 5_000);
        // Monotone in level separation.
        for j in 1..8 {
            assert!(basis.get(0).hamming(basis.get(j)) > basis.get(0).hamming(basis.get(j - 1)));
        }
    }

    #[test]
    fn interpolation_has_variance_legacy_does_not() {
        // The whole point of Algorithm 1 (§4.2): distances are random
        // variables rather than constants. Check the dispersion of δ(L_0, L_1)
        // across seeds.
        let spread = |legacy: bool| -> f64 {
            let samples: Vec<f64> = (0..24)
                .map(|seed| {
                    let mut r = StdRng::seed_from_u64(seed);
                    let basis = if legacy {
                        LevelBasis::legacy(5, 4_096, &mut r).unwrap()
                    } else {
                        LevelBasis::new(5, 4_096, &mut r).unwrap()
                    };
                    basis.get(0).normalized_hamming(basis.get(1))
                })
                .collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64
        };
        assert_eq!(spread(true), 0.0, "legacy distances are deterministic");
        assert!(spread(false) > 0.0, "Algorithm 1 distances vary");
    }

    #[test]
    fn expected_distance_accessor() {
        let mut r = rng();
        let basis = LevelBasis::new(6, 128, &mut r).unwrap();
        assert!((basis.expected_distance(0, 5) - 0.5).abs() < 1e-12);
        assert!((basis.expected_distance(5, 0) - 0.5).abs() < 1e-12);
        assert_eq!(basis.expected_distance(3, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn expected_distance_rejects_bad_index() {
        let mut r = rng();
        let basis = LevelBasis::new(4, 64, &mut r).unwrap();
        let _ = basis.expected_distance(0, 4);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut r = rng();
        assert!(matches!(
            LevelBasis::new(1, 64, &mut r),
            Err(HdcError::InvalidBasisSize { minimum: 2, .. })
        ));
        assert!(matches!(
            LevelBasis::legacy(0, 64, &mut r),
            Err(HdcError::InvalidBasisSize { .. })
        ));
        assert!(matches!(
            LevelBasis::with_randomness(4, 64, 2.0, &mut r),
            Err(HdcError::InvalidRandomness(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_interpolation_monotone_from_endpoint(seed in 0u64..200, m in 3usize..16) {
            // Distance from L_0 should (statistically) increase with level
            // index; with d = 8192 the noise is far below one step of the
            // expected ramp for m ≤ 16, checked with slack.
            let mut r = StdRng::seed_from_u64(seed);
            let basis = LevelBasis::new(m, 8_192, &mut r).unwrap();
            for j in 2..m {
                let closer = basis.get(0).normalized_hamming(basis.get(j - 1));
                let farther = basis.get(0).normalized_hamming(basis.get(j));
                prop_assert!(farther > closer - 0.04, "j={} closer={} farther={}", j, closer, farther);
            }
        }

        #[test]
        fn prop_legacy_total_flips(seed in 0u64..200, m in 2usize..10, dim in 16usize..512) {
            let mut r = StdRng::seed_from_u64(seed);
            let basis = LevelBasis::legacy(m, dim, &mut r).unwrap();
            prop_assert_eq!(basis.get(0).hamming(basis.get(m - 1)), dim / 2);
        }
    }
}
