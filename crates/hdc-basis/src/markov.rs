//! Analysis of the bit-flipping Markov chain of paper §4.2 (Figure 4).
//!
//! Flipping uniformly random positions of a `d`-bit hypervector performs a
//! birth–death random walk on the Hamming distance to the start vector:
//! from distance `k` a flip moves *away* with probability `(d − k)/d` and
//! *back* with probability `k/d`. The expected number of flips `𭟋` until the
//! walk first reaches a target distance `Δ·d` is the absorption time of the
//! chain, which the paper expresses as a tridiagonal linear system.
//!
//! Two independent evaluations are provided:
//!
//! * [`expected_flips`] — the exact O(Δd) birth–death hitting-time
//!   recursion (numerically stable, used by [`crate::ScatterBasis`]),
//! * [`expected_flips_tridiagonal`] — the paper's formulation solved with
//!   the Thomas algorithm from [`crate::tridiag`].
//!
//! They agree to floating-point accuracy — a useful cross-validation that
//! the tridiagonal system was set up exactly as published.

use crate::tridiag::solve_tridiagonal;

/// Expected number of uniformly random bit flips needed to first reach
/// Hamming distance `target_bits` from the start of a `dim`-bit vector.
///
/// Computed with the birth–death hitting-time recursion
/// `h(0) = 1`, `h(k) = (1 + (k/d)·h(k−1)) / ((d − k)/d)`,
/// `𭟋 = Σ_{k=0}^{Δ−1} h(k)`, where `h(k)` is the expected time to go from
/// distance `k` to `k + 1`.
///
/// Returns `0.0` when `target_bits == 0`.
///
/// # Panics
///
/// Panics if `dim == 0` or `target_bits > dim`. (For `target_bits == dim`
/// the absorption time is astronomically large but still finite; values
/// above `dim/2` grow extremely quickly.)
#[must_use]
pub fn expected_flips(dim: usize, target_bits: usize) -> f64 {
    assert!(dim > 0, "dimension must be at least 1");
    assert!(
        target_bits <= dim,
        "target distance {target_bits} exceeds dimension {dim}"
    );
    let d = dim as f64;
    let mut total = 0.0;
    let mut h = 1.0; // h(0): from distance 0 every flip moves away.
    for k in 0..target_bits {
        if k > 0 {
            let kf = k as f64;
            h = (1.0 + (kf / d) * h) / ((d - kf) / d);
        }
        total += h;
    }
    total
}

/// Expected flips computed by solving the paper's tridiagonal system with
/// the Thomas algorithm; `u(0)` of the linear recurrence
///
/// ```text
/// u(k) = 1 + u(1)                               if k = 0
/// u(k) = 1 + ((d−k)·u(k+1) + k·u(k−1)) / d      if 0 < k < Δ
/// u(Δ) = 0
/// ```
///
/// # Panics
///
/// Panics if `dim == 0`, `target_bits > dim`, or (unreachable for these
/// well-conditioned systems) the solver reports a zero pivot.
#[must_use]
pub fn expected_flips_tridiagonal(dim: usize, target_bits: usize) -> f64 {
    assert!(dim > 0, "dimension must be at least 1");
    assert!(
        target_bits <= dim,
        "target distance {target_bits} exceeds dimension {dim}"
    );
    if target_bits == 0 {
        return 0.0;
    }
    let d = dim as f64;
    let n = target_bits; // unknowns u(0) … u(Δ−1); u(Δ) = 0 is eliminated.

    // Row k: −(k/d)·u(k−1) + u(k) − ((d−k)/d)·u(k+1) = 1.
    let sub: Vec<f64> = (1..n).map(|k| -(k as f64) / d).collect();
    let diag = vec![1.0; n];
    let sup: Vec<f64> = (0..n - 1).map(|k| -((d - k as f64) / d)).collect();
    let rhs = vec![1.0; n];

    let u = solve_tridiagonal(&sub, &diag, &sup, &rhs)
        .expect("absorption-time system is diagonally dominant and non-singular");
    u[0]
}

/// The expected flips for each of the `m` levels of a scatter code:
/// level `j` (0-based) targets distance `Δ_{1,j}·d = j·d/(2(m−1))` bits.
///
/// # Panics
///
/// Panics if `dim == 0` or `m < 2`.
#[must_use]
pub fn scatter_schedule(dim: usize, m: usize) -> Vec<f64> {
    assert!(dim > 0, "dimension must be at least 1");
    assert!(m >= 2, "a scatter schedule needs at least 2 levels");
    (0..m)
        .map(|j| {
            let target = (j as f64 * dim as f64 / (2.0 * (m as f64 - 1.0))).round() as usize;
            expected_flips(dim, target.min(dim))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_target_needs_zero_flips() {
        assert_eq!(expected_flips(100, 0), 0.0);
        assert_eq!(expected_flips_tridiagonal(100, 0), 0.0);
    }

    #[test]
    fn one_bit_needs_exactly_one_flip() {
        assert_eq!(expected_flips(100, 1), 1.0);
        assert!((expected_flips_tridiagonal(100, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_bits_closed_form() {
        // From distance 1 the walk returns with probability 1/d, so
        // h(1) = (1 + 1/d) / ((d−1)/d) = (d + 1)/(d − 1); 𭟋 = 1 + h(1).
        let d = 50.0;
        let expected = 1.0 + (d + 1.0) / (d - 1.0);
        assert!((expected_flips(50, 2) - expected).abs() < 1e-12);
    }

    #[test]
    fn recursion_and_tridiagonal_agree() {
        for (dim, target) in [
            (64, 16),
            (256, 100),
            (1_000, 400),
            (1_000, 500),
            (10_000, 2_500),
        ] {
            let a = expected_flips(dim, target);
            let b = expected_flips_tridiagonal(dim, target);
            let rel = (a - b).abs() / a.max(1.0);
            assert!(rel < 1e-6, "dim={dim} target={target}: {a} vs {b}");
        }
    }

    #[test]
    fn flips_exceed_target_superlinearly() {
        // Reaching Δ·d needs *more* than Δ·d flips because some flips undo
        // progress, and the excess grows with the target.
        let dim = 1_000;
        let quarter = expected_flips(dim, 250);
        let half = expected_flips(dim, 500);
        assert!(quarter > 250.0);
        assert!(half > 500.0);
        assert!(
            half / 500.0 > quarter / 250.0,
            "nonlinearity: {quarter} vs {half}"
        );
    }

    #[test]
    fn monotone_in_target() {
        let dim = 512;
        let mut prev = 0.0;
        for t in 1..=256 {
            let f = expected_flips(dim, t);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    fn scatter_schedule_shape() {
        let schedule = scatter_schedule(1_000, 5);
        assert_eq!(schedule.len(), 5);
        assert_eq!(schedule[0], 0.0);
        for w in schedule.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Final target is d/2 = 500 bits; strictly more flips than that.
        assert!(schedule[4] > 500.0);
    }

    #[test]
    #[should_panic(expected = "exceeds dimension")]
    fn rejects_target_beyond_dimension() {
        let _ = expected_flips(16, 17);
    }
}
