//! Basis-hypervector sets: the stochastically created hypervector families
//! used to encode atomic information in hyperdimensional computing.
//!
//! This crate implements every basis construction studied by *"An Extension
//! to Basis-Hypervectors for Learning from Circular Data in Hyperdimensional
//! Computing"* (DAC 2023):
//!
//! | Type | Paper section | Pairwise distance structure |
//! |------|---------------|------------------------------|
//! | [`RandomBasis`] | §3.1 | all pairs quasi-orthogonal (δ ≈ 0.5) |
//! | [`LevelBasis::legacy`] | §4 | exact linear distances, orthogonal endpoints |
//! | [`LevelBasis::new`] (Algorithm 1) | §4.3 | linear distances **in expectation** — higher information content |
//! | [`ScatterBasis`] | §4.2 | random-walk scatter codes via Markov-chain absorption times |
//! | [`CircularBasis`] | §5.1 | distances proportional to circular (arc) distance; wraps around |
//!
//! The `r ∈ [0, 1]` randomness hyperparameter of §5.2 interpolates any level
//! or circular set towards a random set, trading correlation preservation
//! against information content
//! ([`LevelBasis::with_randomness`], [`CircularBasis::with_randomness`]).
//!
//! # Example
//!
//! ```
//! use hdc_basis::{BasisSet, CircularBasis, LevelBasis, RandomBasis};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let random = RandomBasis::new(8, 10_000, &mut rng)?;
//! let level = LevelBasis::new(8, 10_000, &mut rng)?;
//! let circular = CircularBasis::new(8, 10_000, &mut rng)?;
//!
//! // Random: everything far apart. Level: endpoints orthogonal.
//! assert!((random.get(0).normalized_hamming(random.get(7)) - 0.5).abs() < 0.05);
//! assert!((level.get(0).normalized_hamming(level.get(7)) - 0.5).abs() < 0.05);
//! // Circular: the set wraps — first and last are *neighbours*.
//! assert!(circular.get(0).normalized_hamming(circular.get(7)) < 0.2);
//! # Ok::<(), hdc_basis::HdcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod circular;
mod level;
pub mod markov;
mod random;
mod scatter;
mod span;
pub mod tridiag;

pub use circular::CircularBasis;
pub use hdc_core::HdcError;
pub use level::LevelBasis;
pub use random::RandomBasis;
pub use scatter::ScatterBasis;

use hdc_core::BinaryHypervector;

/// Common interface of all basis-hypervector sets: an ordered, fixed-size
/// collection of equally sized hypervectors.
///
/// The trait is object-safe, so heterogeneous experiments can hold
/// `Box<dyn BasisSet>` values — see [`BasisKind`] for a ready-made selector.
pub trait BasisSet: std::fmt::Debug {
    /// Number of hypervectors in the set (`m`).
    fn len(&self) -> usize;

    /// `true` if the set contains no hypervectors (never the case for the
    /// constructions in this crate, which require `m ≥ 2`).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality `d` shared by every member.
    fn dim(&self) -> usize;

    /// The `index`-th basis hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    fn get(&self, index: usize) -> &BinaryHypervector;

    /// All members in order.
    fn hypervectors(&self) -> &[BinaryHypervector];
}

/// Selector for the three basis families compared throughout the paper's
/// evaluation, with the level and circular variants carrying their `r` value.
///
/// ```
/// use hdc_basis::{BasisKind, BasisSet};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let basis = BasisKind::Circular { randomness: 0.1 }.build(16, 10_000, &mut rng)?;
/// assert_eq!(basis.len(), 16);
/// # Ok::<(), hdc_basis::HdcError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BasisKind {
    /// Uncorrelated random-hypervectors (§3.1).
    Random,
    /// Interpolation-based level-hypervectors (§4.3) with randomness `r`.
    Level {
        /// Randomness hyperparameter `r ∈ [0, 1]` (§5.2); `0.0` is Algorithm 1.
        randomness: f64,
    },
    /// Circular-hypervectors (§5.1) with randomness `r`.
    Circular {
        /// Randomness hyperparameter `r ∈ [0, 1]` (§5.2).
        randomness: f64,
    },
}

impl BasisKind {
    /// Builds the selected basis set.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `m < 2`, `dim == 0` or the randomness value is
    /// outside `[0, 1]`.
    pub fn build(
        self,
        m: usize,
        dim: usize,
        rng: &mut impl rand::Rng,
    ) -> Result<Box<dyn BasisSet>, HdcError> {
        Ok(match self {
            BasisKind::Random => Box::new(RandomBasis::new(m, dim, rng)?),
            BasisKind::Level { randomness } => {
                Box::new(LevelBasis::with_randomness(m, dim, randomness, rng)?)
            }
            BasisKind::Circular { randomness } => {
                Box::new(CircularBasis::with_randomness(m, dim, randomness, rng)?)
            }
        })
    }

    /// A short human-readable name (used by the experiment harness tables).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BasisKind::Random => "random",
            BasisKind::Level { .. } => "level",
            BasisKind::Circular { .. } => "circular",
        }
    }
}

pub(crate) fn validate_basis_params(m: usize, dim: usize, minimum: usize) -> Result<(), HdcError> {
    if dim == 0 {
        return Err(HdcError::InvalidDimension(dim));
    }
    if m < minimum {
        return Err(HdcError::InvalidBasisSize {
            requested: m,
            minimum,
        });
    }
    Ok(())
}

pub(crate) fn validate_randomness(r: f64) -> Result<(), HdcError> {
    if r.is_nan() || !(0.0..=1.0).contains(&r) {
        return Err(HdcError::InvalidRandomness(r));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn basis_kind_builds_all_variants() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [
            BasisKind::Random,
            BasisKind::Level { randomness: 0.0 },
            BasisKind::Level { randomness: 0.3 },
            BasisKind::Circular { randomness: 0.0 },
            BasisKind::Circular { randomness: 0.1 },
        ] {
            let basis = kind.build(10, 1_000, &mut rng).expect("valid parameters");
            assert_eq!(basis.len(), 10);
            assert_eq!(basis.dim(), 1_000);
            assert!(!basis.is_empty());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn basis_kind_rejects_bad_randomness() {
        let mut rng = StdRng::seed_from_u64(0);
        let err = BasisKind::Level { randomness: 1.5 }
            .build(4, 64, &mut rng)
            .unwrap_err();
        assert_eq!(err, HdcError::InvalidRandomness(1.5));
        let err = BasisKind::Circular { randomness: -0.1 }
            .build(4, 64, &mut rng)
            .unwrap_err();
        assert_eq!(err, HdcError::InvalidRandomness(-0.1));
    }

    #[test]
    fn validate_rejects_zero_dim_and_tiny_sets() {
        assert!(validate_basis_params(4, 0, 2).is_err());
        assert!(validate_basis_params(1, 64, 2).is_err());
        assert!(validate_basis_params(2, 64, 2).is_ok());
        assert!(validate_randomness(f64::NAN).is_err());
    }
}
