use rand::Rng;

use crate::angles::wrap;
use crate::bessel::i0;
use crate::DirStatsError;

/// The von Mises distribution `VM(μ, κ)` — the "circular normal", the
/// canonical distribution of directional statistics.
///
/// `μ` is the mean direction; the concentration `κ ≥ 0` plays the role of an
/// inverse variance (`κ = 0` is the uniform distribution on the circle; for
/// large `κ` the distribution approaches `N(μ, 1/κ)` wrapped on the circle).
///
/// Sampling uses the Best–Fisher (1979) wrapped-Cauchy rejection algorithm,
/// exact for all `κ`.
///
/// # Example
///
/// ```
/// use dirstats::{descriptive, VonMises};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let vm = VonMises::new(1.0, 8.0)?;
/// let xs: Vec<f64> = (0..4000).map(|_| vm.sample(&mut rng)).collect();
/// assert!((descriptive::circular_mean(&xs).unwrap() - 1.0).abs() < 0.05);
/// # Ok::<(), dirstats::DirStatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VonMises {
    mu: f64,
    kappa: f64,
}

impl VonMises {
    /// Creates a von Mises distribution with mean direction `mu` (radians,
    /// wrapped into `[0, 2π)`) and concentration `kappa ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DirStatsError::InvalidParameter`] if `mu` is non-finite or
    /// `kappa` is negative or non-finite.
    pub fn new(mu: f64, kappa: f64) -> Result<Self, DirStatsError> {
        if !mu.is_finite() {
            return Err(DirStatsError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !kappa.is_finite() || kappa < 0.0 {
            return Err(DirStatsError::InvalidParameter {
                name: "kappa",
                value: kappa,
            });
        }
        Ok(Self {
            mu: wrap(mu),
            kappa,
        })
    }

    /// The mean direction `μ ∈ [0, 2π)`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The concentration `κ`.
    #[must_use]
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The probability density at angle `theta`.
    #[must_use]
    pub fn pdf(&self, theta: f64) -> f64 {
        (self.kappa * (theta - self.mu).cos()).exp() / (crate::TAU * i0(self.kappa))
    }

    /// Draws one angle in `[0, 2π)` (Best–Fisher rejection sampling;
    /// uniform for `κ = 0`).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.kappa == 0.0 {
            return rng.random::<f64>() * crate::TAU;
        }
        // Best & Fisher (1979), as given in Mardia & Jupp §3.5.
        let tau = 1.0 + (1.0 + 4.0 * self.kappa * self.kappa).sqrt();
        let rho = (tau - (2.0 * tau).sqrt()) / (2.0 * self.kappa);
        let r = (1.0 + rho * rho) / (2.0 * rho);
        loop {
            let u1: f64 = rng.random();
            let z = (std::f64::consts::PI * u1).cos();
            let f = (1.0 + r * z) / (r + z);
            let c = self.kappa * (r - f);
            let u2: f64 = rng.random();
            if c * (2.0 - c) - u2 > 0.0 || (c / u2).ln() + 1.0 - c >= 0.0 {
                let u3: f64 = rng.random();
                let theta = if u3 > 0.5 {
                    self.mu + f.acos()
                } else {
                    self.mu - f.acos()
                };
                return wrap(theta);
            }
        }
    }

    /// Draws `n` angles.
    pub fn sample_n(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{circular_mean, mean_resultant_length};
    use crate::TAU;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(808)
    }

    #[test]
    fn pdf_integrates_to_one() {
        for kappa in [0.0, 0.5, 2.0, 10.0] {
            let vm = VonMises::new(1.2, kappa).unwrap();
            let n = 100_000;
            let integral: f64 = (0..n)
                .map(|i| vm.pdf(TAU * i as f64 / n as f64))
                .sum::<f64>()
                * TAU
                / n as f64;
            assert!(
                (integral - 1.0).abs() < 1e-3,
                "kappa={kappa} integral={integral}"
            );
        }
    }

    #[test]
    fn pdf_peaks_at_mu() {
        let vm = VonMises::new(2.0, 3.0).unwrap();
        assert!(vm.pdf(2.0) > vm.pdf(2.5));
        assert!(vm.pdf(2.0) > vm.pdf(1.5));
        assert!(vm.pdf(2.0) > vm.pdf(2.0 + std::f64::consts::PI));
    }

    #[test]
    fn sample_mean_matches_mu() {
        let mut r = rng();
        for mu in [0.0, 1.0, 3.5, 6.0] {
            let vm = VonMises::new(mu, 5.0).unwrap();
            let xs = vm.sample_n(4_000, &mut r);
            let mean = circular_mean(&xs).unwrap();
            let err = crate::angles::angular_distance(mean, mu);
            assert!(err < 0.05, "mu={mu} mean={mean}");
        }
    }

    #[test]
    fn sample_concentration_matches_kappa() {
        // E[R̄] = I1(κ)/I0(κ); check the sampled resultant length against it.
        let mut r = rng();
        for kappa in [0.5, 2.0, 8.0] {
            let vm = VonMises::new(0.7, kappa).unwrap();
            let xs = vm.sample_n(8_000, &mut r);
            let rbar = mean_resultant_length(&xs).unwrap();
            let expected = crate::bessel::i1(kappa) / crate::bessel::i0(kappa);
            assert!(
                (rbar - expected).abs() < 0.03,
                "kappa={kappa} rbar={rbar} want={expected}"
            );
        }
    }

    #[test]
    fn zero_kappa_is_uniform() {
        let mut r = rng();
        let vm = VonMises::new(0.0, 0.0).unwrap();
        let xs = vm.sample_n(10_000, &mut r);
        assert!(mean_resultant_length(&xs).unwrap() < 0.03);
        // Density is flat.
        assert!((vm.pdf(0.0) - vm.pdf(3.0)).abs() < 1e-12);
        assert!((vm.pdf(0.0) - 1.0 / TAU).abs() < 1e-9);
    }

    #[test]
    fn samples_are_wrapped() {
        let mut r = rng();
        let vm = VonMises::new(0.05, 4.0).unwrap(); // mass straddles 0
        for x in vm.sample_n(2_000, &mut r) {
            assert!((0.0..TAU).contains(&x), "sample {x} not wrapped");
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(VonMises::new(f64::NAN, 1.0).is_err());
        assert!(VonMises::new(0.0, -0.1).is_err());
        assert!(VonMises::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn mu_is_wrapped_and_accessible() {
        let vm = VonMises::new(TAU + 1.0, 2.0).unwrap();
        assert!((vm.mu() - 1.0).abs() < 1e-12);
        assert_eq!(vm.kappa(), 2.0);
    }
}
