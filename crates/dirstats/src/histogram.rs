use std::fmt;

use crate::angles::wrap;
use crate::{DirStatsError, TAU};

/// A histogram over the circle: `bins` equal arcs of `[0, 2π)`.
///
/// Useful for inspecting the angular structure of synthetic datasets and for
/// quick goodness-of-fit eyeballing in examples.
///
/// # Example
///
/// ```
/// use dirstats::CircularHistogram;
///
/// let mut hist = CircularHistogram::new(4)?;
/// hist.extend([0.1, 0.2, 3.2, 6.4]); // 6.4 > 2π wraps into the first quadrant bin
/// assert_eq!(hist.count(0), 3);
/// assert_eq!(hist.count(2), 1);
/// assert_eq!(hist.total(), 4);
/// # Ok::<(), dirstats::DirStatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircularHistogram {
    counts: Vec<u64>,
}

impl CircularHistogram {
    /// Creates a histogram with `bins` equal arcs.
    ///
    /// # Errors
    ///
    /// Returns [`DirStatsError::InvalidParameter`] if `bins == 0`.
    pub fn new(bins: usize) -> Result<Self, DirStatsError> {
        if bins == 0 {
            return Err(DirStatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Self {
            counts: vec![0; bins],
        })
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one angle (radians; wrapped automatically).
    pub fn add(&mut self, angle: f64) {
        let idx = self.bin_index(angle);
        self.counts[idx] += 1;
    }

    /// The bin an angle falls into.
    #[must_use]
    pub fn bin_index(&self, angle: f64) -> usize {
        let w = wrap(angle);
        ((w / TAU * self.counts.len() as f64) as usize).min(self.counts.len() - 1)
    }

    /// The count of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// All bin counts in order.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded angles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The central angle of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn bin_center(&self, bin: usize) -> f64 {
        assert!(bin < self.counts.len(), "bin {bin} out of range");
        TAU * (bin as f64 + 0.5) / self.counts.len() as f64
    }

    /// The empirical density of bin `bin` (count / total / bin width);
    /// `0.0` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn density(&self, bin: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let width = TAU / self.counts.len() as f64;
        self.counts[bin] as f64 / total as f64 / width
    }
}

impl Extend<f64> for CircularHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for a in iter {
            self.add(a);
        }
    }
}

impl fmt::Display for CircularHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c * 40 / max) as usize);
            writeln!(f, "[{:6.3} rad] {:>6} {bar}", self.bin_center(i), c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VonMises;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_zero_bins() {
        assert!(CircularHistogram::new(0).is_err());
    }

    #[test]
    fn wraps_negative_angles() {
        let mut h = CircularHistogram::new(8).unwrap();
        h.add(-0.1); // wraps to just under 2π → last bin
        assert_eq!(h.count(7), 1);
    }

    #[test]
    fn bin_boundaries() {
        let h = CircularHistogram::new(4).unwrap();
        assert_eq!(h.bin_index(0.0), 0);
        assert_eq!(h.bin_index(TAU / 4.0), 1);
        assert_eq!(h.bin_index(TAU - 1e-9), 3);
        assert_eq!(h.bin_index(TAU), 0); // wraps
    }

    #[test]
    fn density_integrates_to_one() {
        let mut r = StdRng::seed_from_u64(3);
        let vm = VonMises::new(1.0, 2.0).unwrap();
        let mut h = CircularHistogram::new(32).unwrap();
        h.extend(vm.sample_n(5_000, &mut r));
        let width = TAU / 32.0;
        let integral: f64 = (0..32).map(|b| h.density(b) * width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
        // Mode near μ = 1.0.
        let mode = (0..32).max_by_key(|&b| h.count(b)).unwrap();
        let center = h.bin_center(mode);
        assert!(
            crate::angles::angular_distance(center, 1.0) < 0.5,
            "mode at {center}"
        );
    }

    #[test]
    fn display_renders_all_bins() {
        let mut h = CircularHistogram::new(5).unwrap();
        h.extend([0.1, 0.1, 2.0]);
        let text = h.to_string();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('#'));
    }

    #[test]
    fn empty_density_is_zero() {
        let h = CircularHistogram::new(3).unwrap();
        assert_eq!(h.density(0), 0.0);
        assert_eq!(h.total(), 0);
    }
}
