use std::fmt;

use crate::angles::wrap;
use crate::{DirStatsError, TAU};

/// A histogram over the circle: `bins` equal arcs of `[0, 2π)`.
///
/// Useful for inspecting the angular structure of synthetic datasets and for
/// quick goodness-of-fit eyeballing in examples.
///
/// # Example
///
/// ```
/// use dirstats::CircularHistogram;
///
/// let mut hist = CircularHistogram::new(4)?;
/// hist.extend([0.1, 0.2, 3.2, 6.4]); // 6.4 > 2π wraps into the first quadrant bin
/// assert_eq!(hist.count(0), 3);
/// assert_eq!(hist.count(2), 1);
/// assert_eq!(hist.total(), 4);
/// # Ok::<(), dirstats::DirStatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircularHistogram {
    counts: Vec<u64>,
}

impl CircularHistogram {
    /// Creates a histogram with `bins` equal arcs.
    ///
    /// # Errors
    ///
    /// Returns [`DirStatsError::InvalidParameter`] if `bins == 0`.
    pub fn new(bins: usize) -> Result<Self, DirStatsError> {
        if bins == 0 {
            return Err(DirStatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        Ok(Self {
            counts: vec![0; bins],
        })
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one angle (radians; wrapped automatically).
    pub fn add(&mut self, angle: f64) {
        let idx = self.bin_index(angle);
        self.counts[idx] += 1;
    }

    /// The bin an angle falls into.
    #[must_use]
    pub fn bin_index(&self, angle: f64) -> usize {
        let w = wrap(angle);
        ((w / TAU * self.counts.len() as f64) as usize).min(self.counts.len() - 1)
    }

    /// The count of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// All bin counts in order.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded angles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The central angle of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn bin_center(&self, bin: usize) -> f64 {
        assert!(bin < self.counts.len(), "bin {bin} out of range");
        TAU * (bin as f64 + 0.5) / self.counts.len() as f64
    }

    /// The empirical density of bin `bin` (count / total / bin width);
    /// `0.0` when the histogram is empty.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn density(&self, bin: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let width = TAU / self.counts.len() as f64;
        self.counts[bin] as f64 / total as f64 / width
    }
}

impl Extend<f64> for CircularHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for a in iter {
            self.add(a);
        }
    }
}

impl fmt::Display for CircularHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c * 40 / max) as usize);
            writeln!(f, "[{:6.3} rad] {:>6} {bar}", self.bin_center(i), c)?;
        }
        Ok(())
    }
}

/// A histogram over a bounded linear range `[lo, hi]`: `bins` equal-width
/// intervals, with out-of-range samples clamped into the edge bins.
///
/// The linear sibling of [`CircularHistogram`], used by the serving layer's
/// metrics for batch-size and latency distributions: counting is one
/// branch-free index computation, percentiles come out of the cumulative
/// counts, and the fixed bin count keeps the memory footprint constant no
/// matter how many samples stream through.
///
/// # Example
///
/// ```
/// use dirstats::LinearHistogram;
///
/// let mut hist = LinearHistogram::new(0.0, 10.0, 5)?;
/// hist.extend([0.5, 1.0, 3.0, 9.5, 42.0]); // 42 clamps into the last bin
/// assert_eq!(hist.count(0), 2);
/// assert_eq!(hist.count(4), 2);
/// assert_eq!(hist.total(), 5);
/// assert!(hist.percentile(50.0).unwrap() < 5.0);
/// # Ok::<(), dirstats::DirStatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinearHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Running total of recorded samples, maintained by
    /// [`add`](Self::add)/[`clear`](Self::clear) so [`total`](Self::total)
    /// is O(1) on the metrics hot path instead of an O(bins) sum.
    total: u64,
}

impl LinearHistogram {
    /// Creates a histogram of `bins` equal-width intervals over `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`DirStatsError::InvalidParameter`] if `bins == 0`, either
    /// bound is not finite, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, DirStatsError> {
        if bins == 0 {
            return Err(DirStatsError::InvalidParameter {
                name: "bins",
                value: 0.0,
            });
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(DirStatsError::InvalidParameter {
                name: "range",
                value: hi - lo,
            });
        }
        Ok(Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Lower bound of the covered range.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the covered range.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Adds one sample. Values below `lo` land in the first bin, values
    /// above `hi` in the last; NaN samples are ignored.
    pub fn add(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let idx = self.bin_index(value);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// The bin a value falls into (edge bins absorb out-of-range values).
    #[must_use]
    pub fn bin_index(&self, value: f64) -> usize {
        let bins = self.counts.len();
        let fraction = (value - self.lo) / (self.hi - self.lo);
        if fraction <= 0.0 {
            return 0;
        }
        ((fraction * bins as f64) as usize).min(bins - 1)
    }

    /// The count of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn count(&self, bin: usize) -> u64 {
        self.counts[bin]
    }

    /// All bin counts in order.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded samples. O(1): the total is maintained as
    /// samples are added rather than summed over the bins per call.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` if no sample has been recorded (or every sample was wiped by
    /// [`clear`](Self::clear)) — the state in which
    /// [`percentile`](Self::percentile) has no answer.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The central value of bin `bin`.
    ///
    /// # Panics
    ///
    /// Panics if `bin >= self.bins()`.
    #[must_use]
    pub fn bin_center(&self, bin: usize) -> f64 {
        assert!(bin < self.counts.len(), "bin {bin} out of range");
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + width * (bin as f64 + 0.5)
    }

    /// The approximate `p`-th percentile (`0 < p <= 100`): the upper edge of
    /// the first bin whose cumulative count reaches `ceil(p/100 · total)`.
    ///
    /// An **empty** histogram (no samples recorded yet, or just cleared)
    /// has no percentiles: the result is `None` for every `p`, never a
    /// fabricated `lo`/`hi` — callers that report distributions must
    /// distinguish "no data" from "all data at the bound" (the serving
    /// metrics map it to an explicit zero).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 100]` — including on an empty
    /// histogram, where the argument is validated before the data.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!(p > 0.0 && p <= 100.0, "percentile {p} outside (0, 100]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = (p / 100.0 * total as f64).ceil() as u64;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut cumulative = 0;
        for (bin, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                return Some(self.lo + width * (bin as f64 + 1.0));
            }
        }
        Some(self.hi)
    }

    /// Resets every bin (and the running total) to zero.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

impl Extend<f64> for LinearHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for value in iter {
            self.add(value);
        }
    }
}

impl fmt::Display for LinearHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c * 40 / max) as usize);
            writeln!(f, "[{:>10.3}] {:>6} {bar}", self.bin_center(i), c)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VonMises;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rejects_zero_bins() {
        assert!(CircularHistogram::new(0).is_err());
    }

    #[test]
    fn wraps_negative_angles() {
        let mut h = CircularHistogram::new(8).unwrap();
        h.add(-0.1); // wraps to just under 2π → last bin
        assert_eq!(h.count(7), 1);
    }

    #[test]
    fn bin_boundaries() {
        let h = CircularHistogram::new(4).unwrap();
        assert_eq!(h.bin_index(0.0), 0);
        assert_eq!(h.bin_index(TAU / 4.0), 1);
        assert_eq!(h.bin_index(TAU - 1e-9), 3);
        assert_eq!(h.bin_index(TAU), 0); // wraps
    }

    #[test]
    fn density_integrates_to_one() {
        let mut r = StdRng::seed_from_u64(3);
        let vm = VonMises::new(1.0, 2.0).unwrap();
        let mut h = CircularHistogram::new(32).unwrap();
        h.extend(vm.sample_n(5_000, &mut r));
        let width = TAU / 32.0;
        let integral: f64 = (0..32).map(|b| h.density(b) * width).sum();
        assert!((integral - 1.0).abs() < 1e-9);
        // Mode near μ = 1.0.
        let mode = (0..32).max_by_key(|&b| h.count(b)).unwrap();
        let center = h.bin_center(mode);
        assert!(
            crate::angles::angular_distance(center, 1.0) < 0.5,
            "mode at {center}"
        );
    }

    #[test]
    fn display_renders_all_bins() {
        let mut h = CircularHistogram::new(5).unwrap();
        h.extend([0.1, 0.1, 2.0]);
        let text = h.to_string();
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('#'));
    }

    #[test]
    fn empty_density_is_zero() {
        let h = CircularHistogram::new(3).unwrap();
        assert_eq!(h.density(0), 0.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn linear_rejects_degenerate_parameters() {
        assert!(LinearHistogram::new(0.0, 1.0, 0).is_err());
        assert!(LinearHistogram::new(1.0, 1.0, 4).is_err());
        assert!(LinearHistogram::new(2.0, 1.0, 4).is_err());
        assert!(LinearHistogram::new(0.0, f64::INFINITY, 4).is_err());
    }

    #[test]
    fn linear_bins_and_clamping() {
        let mut h = LinearHistogram::new(0.0, 8.0, 4).unwrap();
        assert_eq!(h.bins(), 4);
        assert_eq!(h.lo(), 0.0);
        assert_eq!(h.hi(), 8.0);
        h.extend([-3.0, 0.0, 1.9, 2.0, 7.9, 8.0, 100.0, f64::NAN]);
        // Below-range and boundary values: [-3, 0, 1.9] → bin 0, 2.0 → bin 1,
        // [7.9, 8.0, 100] → bin 3; NaN ignored.
        assert_eq!(h.counts(), &[3, 1, 0, 3]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_index(3.99), 1);
        assert_eq!(h.bin_center(0), 1.0);
        assert_eq!(h.bin_center(3), 7.0);
        h.clear();
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn linear_percentiles_walk_the_cumulative_counts() {
        let mut h = LinearHistogram::new(0.0, 100.0, 100).unwrap();
        assert!(h.percentile(50.0).is_none());
        h.extend((0..100).map(f64::from)); // one sample per bin
        assert_eq!(h.percentile(1.0), Some(1.0));
        assert_eq!(h.percentile(50.0), Some(50.0));
        assert_eq!(h.percentile(99.0), Some(99.0));
        assert_eq!(h.percentile(100.0), Some(100.0));
        // A spike histogram reports the spike's bin edge for every p.
        let mut spike = LinearHistogram::new(0.0, 10.0, 10).unwrap();
        spike.extend(std::iter::repeat(4.5).take(1000));
        assert_eq!(spike.percentile(1.0), Some(5.0));
        assert_eq!(spike.percentile(99.9), Some(5.0));
    }

    #[test]
    fn linear_empty_histogram_has_no_percentiles() {
        // The defined empty-histogram contract: every p yields None — both
        // before any sample and again after clear() wipes the data — and
        // the argument is still validated first.
        let mut h = LinearHistogram::new(0.0, 10.0, 5).unwrap();
        assert!(h.is_empty());
        for p in [0.001, 1.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), None, "p = {p}");
        }
        h.add(4.0);
        assert!(!h.is_empty());
        assert_eq!(h.total(), 1);
        assert!(h.percentile(50.0).is_some());
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
        assert_eq!(h.percentile(50.0), None);
        // NaN samples never count toward the total, so a NaN-only history
        // is still empty.
        h.add(f64::NAN);
        assert!(h.is_empty());
        assert_eq!(h.percentile(95.0), None);
    }

    #[test]
    #[should_panic(expected = "outside (0, 100]")]
    fn linear_percentile_validates_p_even_when_empty() {
        let h = LinearHistogram::new(0.0, 1.0, 2).unwrap();
        let _ = h.percentile(0.0);
    }

    #[test]
    fn linear_display_renders_all_bins() {
        let mut h = LinearHistogram::new(0.0, 4.0, 4).unwrap();
        h.extend([0.5, 0.6, 3.2]);
        let text = h.to_string();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('#'));
    }
}
