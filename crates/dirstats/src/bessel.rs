//! Modified Bessel functions of the first kind, `I₀` and `I₁`, needed by the
//! von Mises density. Abramowitz & Stegun polynomial approximations
//! (9.8.1–9.8.4), accurate to ~1e-7 relative error over the real line.
//!
//! ```
//! use dirstats::bessel;
//! assert!((bessel::i0(0.0) - 1.0).abs() < 1e-12);
//! assert!(bessel::i0(3.0) > bessel::i1(3.0));
//! ```

/// Modified Bessel function of the first kind, order zero.
#[must_use]
pub fn i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (x / 3.75).powi(2);
        1.0 + t
            * (3.515_622_9
                + t * (3.089_942_4
                    + t * (1.206_749_2 + t * (0.265_973_2 + t * (0.036_076_8 + t * 0.004_581_3)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.398_942_28
                + t * (0.013_285_92
                    + t * (0.002_253_19
                        + t * (-0.001_575_65
                            + t * (0.009_162_81
                                + t * (-0.020_577_06
                                    + t * (0.026_355_37
                                        + t * (-0.016_476_33 + t * 0.003_923_77))))))))
    }
}

/// Modified Bessel function of the first kind, order one.
#[must_use]
pub fn i1(x: f64) -> f64 {
    let ax = x.abs();
    let result = if ax < 3.75 {
        let t = (x / 3.75).powi(2);
        ax * (0.5
            + t * (0.878_905_94
                + t * (0.514_988_69
                    + t * (0.150_849_34
                        + t * (0.026_587_33 + t * (0.003_015_32 + t * 0.000_324_11))))))
    } else {
        let t = 3.75 / ax;
        let poly = 0.398_942_28
            + t * (-0.039_880_24
                + t * (-0.003_620_18
                    + t * (0.001_638_01
                        + t * (-0.010_315_55
                            + t * (0.022_829_67
                                + t * (-0.028_953_12 + t * (0.017_876_54 - t * 0.004_200_59)))))));
        poly * ax.exp() / ax.sqrt()
    };
    if x < 0.0 {
        -result
    } else {
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from tabulated Bessel functions.
    #[test]
    fn i0_reference_values() {
        let cases = [
            (0.0, 1.0),
            (0.5, 1.063_483_4),
            (1.0, 1.266_065_88),
            (2.0, 2.279_585_3),
            (5.0, 27.239_871_8),
            (10.0, 2_815.716_628),
        ];
        for (x, want) in cases {
            let got = i0(x);
            let rel = (got - want).abs() / want;
            assert!(rel < 2e-5, "I0({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn i1_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.257_894_3),
            (1.0, 0.565_159_1),
            (2.0, 1.590_636_8),
            (5.0, 24.335_642_2),
        ];
        for (x, want) in cases {
            let got = i1(x);
            let err = if want == 0.0 {
                got.abs()
            } else {
                (got - want).abs() / want
            };
            assert!(err < 2e-5, "I1({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn symmetry() {
        assert!((i0(-2.5) - i0(2.5)).abs() < 1e-12, "I0 is even");
        assert!((i1(-2.5) + i1(2.5)).abs() < 1e-12, "I1 is odd");
    }

    #[test]
    fn series_recurrence_consistency() {
        // d/dx I0(x) = I1(x): check with a central difference.
        for x in [0.3, 1.1, 2.9, 4.2, 8.0] {
            let h = 1e-6;
            let numeric = (i0(x + h) - i0(x - h)) / (2.0 * h);
            let rel = (numeric - i1(x)).abs() / i1(x).max(1e-12);
            assert!(rel < 1e-3, "x={x}: derivative {numeric} vs I1 {}", i1(x));
        }
    }
}
