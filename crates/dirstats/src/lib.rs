//! Directional (circular) statistics.
//!
//! Circular data — angles, compass directions, times of day, phases of an
//! orbit — live on the unit circle rather than the real line, and standard
//! statistics mislead on them (the "mean" of 359° and 1° is 0°, not 180°).
//! This crate implements the core toolkit of directional statistics (Mardia
//! & Jupp; Fisher):
//!
//! * [`angles`] — wrapping, angular differences and the circular distance
//!   `ρ(α, β) = (1 − cos(α − β))/2` used by the paper (§5),
//! * [`descriptive`] — circular mean, resultant length, variance, standard
//!   deviation,
//! * [`VonMises`] — the canonical circular distribution, with density and
//!   Best–Fisher rejection sampling,
//! * [`Normal`] — Box–Muller Gaussian sampling (kept here so the workspace
//!   needs no external distribution crate),
//! * [`correlation`] — circular–linear (Mardia) and circular–circular
//!   (Jammalamadaka–SenGupta) association measures,
//! * [`uniformity`] — the Rayleigh test,
//! * [`CircularHistogram`] — binned summaries of angle samples,
//! * [`LinearHistogram`] — its bounded-range linear sibling (batch-size and
//!   latency distributions in the serving layer's metrics).
//!
//! # Example
//!
//! ```
//! use dirstats::{descriptive, VonMises};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let vm = VonMises::new(std::f64::consts::PI, 4.0)?;
//! let samples: Vec<f64> = (0..2000).map(|_| vm.sample(&mut rng)).collect();
//! let mean = descriptive::circular_mean(&samples).expect("non-empty");
//! assert!((mean - std::f64::consts::PI).abs() < 0.1);
//! # Ok::<(), dirstats::DirStatsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angles;
pub mod bessel;
pub mod correlation;
pub mod descriptive;
mod error;
mod histogram;
mod normal;
pub mod uniformity;
mod von_mises;
mod wrapped_cauchy;

pub use error::DirStatsError;
pub use histogram::{CircularHistogram, LinearHistogram};
pub use normal::Normal;
pub use von_mises::VonMises;
pub use wrapped_cauchy::WrappedCauchy;

/// Full circle in radians (`2π`).
pub const TAU: f64 = std::f64::consts::TAU;
