//! Association measures involving circular variables.
//!
//! * [`circular_linear`] — Mardia's `R²` between an angle and a real value
//!   (e.g. hour-of-day vs temperature, the structure the paper's regression
//!   experiments exploit),
//! * [`circular_circular`] — the Jammalamadaka–SenGupta correlation
//!   coefficient between two angles,
//! * [`pearson`] — the ordinary linear correlation, exposed because the
//!   circular measures are built from it.
//!
//! ```
//! use dirstats::correlation;
//!
//! // A linear variable that is a noiseless cosine of the angle has
//! // circular–linear R² = 1.
//! let thetas: Vec<f64> = (0..100).map(|i| i as f64 * 0.0628).collect();
//! let xs: Vec<f64> = thetas.iter().map(|t| t.cos()).collect();
//! let r2 = correlation::circular_linear(&thetas, &xs)?;
//! assert!(r2 > 0.999);
//! # Ok::<(), dirstats::DirStatsError>(())
//! ```

use crate::DirStatsError;

/// Pearson's linear correlation coefficient.
///
/// # Errors
///
/// Returns [`DirStatsError`] if the inputs have different lengths, fewer
/// than two elements, or either is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, DirStatsError> {
    check_paired(x, y)?;
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(DirStatsError::DegenerateData(
            "constant input in correlation",
        ));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Mardia's circular–linear correlation `R² ∈ [0, 1]` between angles
/// `theta` (radians) and a linear variable `x`:
///
/// `R² = (r_xc² + r_xs² − 2·r_xc·r_xs·r_cs) / (1 − r_cs²)`
///
/// where `r_xc = corr(x, cos θ)`, `r_xs = corr(x, sin θ)` and
/// `r_cs = corr(cos θ, sin θ)`.
///
/// # Errors
///
/// Returns [`DirStatsError`] if the inputs have different lengths, fewer
/// than three elements, or are degenerate (constant `x`, or angles
/// concentrated on a single point).
pub fn circular_linear(theta: &[f64], x: &[f64]) -> Result<f64, DirStatsError> {
    if theta.len() != x.len() {
        return Err(DirStatsError::LengthMismatch {
            left: theta.len(),
            right: x.len(),
        });
    }
    if theta.len() < 3 {
        return Err(DirStatsError::NotEnoughSamples {
            minimum: 3,
            found: theta.len(),
        });
    }
    let cosines: Vec<f64> = theta.iter().map(|t| t.cos()).collect();
    let sines: Vec<f64> = theta.iter().map(|t| t.sin()).collect();
    let r_xc = pearson(x, &cosines)?;
    let r_xs = pearson(x, &sines)?;
    let r_cs = pearson(&cosines, &sines)?;
    let denom = 1.0 - r_cs * r_cs;
    if denom <= f64::EPSILON {
        return Err(DirStatsError::DegenerateData(
            "cos θ and sin θ are collinear",
        ));
    }
    let r2 = (r_xc * r_xc + r_xs * r_xs - 2.0 * r_xc * r_xs * r_cs) / denom;
    // Clamp tiny numerical excursions outside [0, 1].
    Ok(r2.clamp(0.0, 1.0))
}

/// The Jammalamadaka–SenGupta circular–circular correlation in `[−1, 1]`:
///
/// `r = Σ sin(αᵢ − ᾱ)·sin(βᵢ − β̄) / sqrt(Σ sin²(αᵢ − ᾱ) · Σ sin²(βᵢ − β̄))`
///
/// where `ᾱ, β̄` are the circular means.
///
/// # Errors
///
/// Returns [`DirStatsError`] if the inputs have different lengths, fewer
/// than two elements, or either sample is concentrated on a single point.
pub fn circular_circular(alpha: &[f64], beta: &[f64]) -> Result<f64, DirStatsError> {
    check_paired(alpha, beta)?;
    let a_bar =
        crate::descriptive::circular_mean(alpha).ok_or(DirStatsError::NotEnoughSamples {
            minimum: 2,
            found: 0,
        })?;
    let b_bar = crate::descriptive::circular_mean(beta).ok_or(DirStatsError::NotEnoughSamples {
        minimum: 2,
        found: 0,
    })?;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (&a, &b) in alpha.iter().zip(beta) {
        let sa = (a - a_bar).sin();
        let sb = (b - b_bar).sin();
        num += sa * sb;
        da += sa * sa;
        db += sb * sb;
    }
    // Exact point masses leave only rounding noise in the deviations.
    let tiny = f64::EPSILON * alpha.len() as f64;
    if da <= tiny || db <= tiny {
        return Err(DirStatsError::DegenerateData(
            "angles concentrated on a point",
        ));
    }
    Ok(num / (da * db).sqrt())
}

fn check_paired(x: &[f64], y: &[f64]) -> Result<(), DirStatsError> {
    if x.len() != y.len() {
        return Err(DirStatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(DirStatsError::NotEnoughSamples {
            minimum: 2,
            found: x.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Normal, VonMises, TAU};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(404)
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_degenerate() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn circular_linear_detects_sinusoidal_link() {
        let mut r = rng();
        let noise = Normal::new(0.0, 0.2).unwrap();
        let thetas: Vec<f64> = (0..500).map(|_| r.random::<f64>() * TAU).collect();
        let xs: Vec<f64> = thetas
            .iter()
            .map(|t| 3.0 * (t - 1.0).cos() + noise.sample(&mut r))
            .collect();
        let r2 = circular_linear(&thetas, &xs).unwrap();
        assert!(r2 > 0.9, "R² = {r2}");
    }

    #[test]
    fn circular_linear_near_zero_for_independent_data() {
        let mut r = rng();
        let thetas: Vec<f64> = (0..800).map(|_| r.random::<f64>() * TAU).collect();
        let xs: Vec<f64> = (0..800).map(|_| r.random::<f64>()).collect();
        let r2 = circular_linear(&thetas, &xs).unwrap();
        assert!(r2 < 0.03, "R² = {r2}");
    }

    #[test]
    fn circular_linear_invariant_to_rotation() {
        let mut r = rng();
        let thetas: Vec<f64> = (0..400).map(|_| r.random::<f64>() * TAU).collect();
        let xs: Vec<f64> = thetas.iter().map(|t| t.sin() * 2.0 + 1.0).collect();
        let r2a = circular_linear(&thetas, &xs).unwrap();
        let shifted: Vec<f64> = thetas
            .iter()
            .map(|t| crate::angles::wrap(t + 2.1))
            .collect();
        let r2b = circular_linear(&shifted, &xs).unwrap();
        // Same functional relation, rotated reference: R² only changes by
        // sampling noise in the correlation estimates.
        assert!(r2a > 0.99 && r2b > 0.99, "r2a={r2a} r2b={r2b}");
    }

    #[test]
    fn circular_circular_detects_phase_lock() {
        let mut r = rng();
        let vm = VonMises::new(0.0, 1.0).unwrap();
        let alphas: Vec<f64> = vm.sample_n(600, &mut r);
        // β = α + 0.5 + small noise: strong positive association.
        let noise = Normal::new(0.0, 0.1).unwrap();
        let betas: Vec<f64> = alphas
            .iter()
            .map(|a| crate::angles::wrap(a + 0.5 + noise.sample(&mut r)))
            .collect();
        let rho = circular_circular(&alphas, &betas).unwrap();
        assert!(rho > 0.8, "rho = {rho}");
    }

    #[test]
    fn circular_circular_independent_near_zero() {
        let mut r = rng();
        let alphas: Vec<f64> = (0..800).map(|_| r.random::<f64>() * TAU).collect();
        let betas: Vec<f64> = (0..800).map(|_| r.random::<f64>() * TAU).collect();
        let rho = circular_circular(&alphas, &betas).unwrap();
        assert!(rho.abs() < 0.1, "rho = {rho}");
    }

    #[test]
    fn circular_circular_rejects_degenerate() {
        assert!(circular_circular(&[1.0, 1.0, 1.0], &[0.1, 0.2, 0.3]).is_err());
        assert!(circular_circular(&[1.0, 2.0], &[0.1]).is_err());
    }

    #[test]
    fn circular_linear_requires_three() {
        assert!(matches!(
            circular_linear(&[0.0, 1.0], &[0.0, 1.0]),
            Err(DirStatsError::NotEnoughSamples { minimum: 3, .. })
        ));
    }
}
