//! Descriptive statistics for samples of angles (radians).
//!
//! All estimators are based on the resultant vector
//! `R = (Σ cos θᵢ, Σ sin θᵢ)`: its direction is the circular mean, and its
//! normalized length `R̄ = |R|/n ∈ [0, 1]` measures concentration
//! (1 = all angles coincide, 0 = e.g. perfectly uniform).
//!
//! ```
//! use dirstats::descriptive;
//!
//! // Angles clustered around 0 crossing the wrap point.
//! let angles = [6.1, 6.2, 0.1, 0.2];
//! let mean = descriptive::circular_mean(&angles).expect("non-empty");
//! assert!(mean < 0.2 || mean > 6.0, "mean near the wrap point, got {mean}");
//! ```

use crate::angles::wrap;

/// The mean direction of a sample, in `[0, 2π)`; `None` for an empty sample.
///
/// Note the resultant may vanish (e.g. two opposite angles), in which case
/// the direction is numerically arbitrary; check
/// [`mean_resultant_length`] when that matters.
#[must_use]
pub fn circular_mean(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    Some(wrap(s.atan2(c)))
}

/// The mean resultant length `R̄ ∈ [0, 1]`; `None` for an empty sample.
#[must_use]
pub fn mean_resultant_length(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let n = angles.len() as f64;
    let (s, c) = angles
        .iter()
        .fold((0.0, 0.0), |(s, c), &a| (s + a.sin(), c + a.cos()));
    Some((s * s + c * c).sqrt() / n)
}

/// The circular variance `V = 1 − R̄ ∈ [0, 1]`; `None` for an empty sample.
#[must_use]
pub fn circular_variance(angles: &[f64]) -> Option<f64> {
    mean_resultant_length(angles).map(|r| 1.0 - r)
}

/// The circular standard deviation `σ = sqrt(−2 ln R̄)`; `None` for an empty
/// sample. Unbounded as the sample approaches uniformity (`R̄ → 0` gives
/// `σ → ∞`).
#[must_use]
pub fn circular_std(angles: &[f64]) -> Option<f64> {
    mean_resultant_length(angles).map(|r| {
        if r <= 0.0 {
            f64::INFINITY
        } else {
            (-2.0 * r.ln()).sqrt()
        }
    })
}

/// The circular median: the sample angle minimizing the mean arc distance
/// to all observations (ties resolve to the earliest sample); `None` for an
/// empty sample.
///
/// Robust to outliers where the circular mean is not; O(n²), intended for
/// descriptive analysis rather than hot loops.
#[must_use]
pub fn circular_median(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    angles
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let cost = |phi: f64| -> f64 {
                angles
                    .iter()
                    .map(|&t| crate::angles::angular_distance(phi, t))
                    .sum()
            };
            cost(a)
                .partial_cmp(&cost(b))
                .expect("arc distances are finite")
        })
        .map(wrap)
}

/// Weighted circular mean, in `[0, 2π)`; `None` if inputs are empty, lengths
/// differ, or the total weight is not positive.
#[must_use]
pub fn weighted_circular_mean(angles: &[f64], weights: &[f64]) -> Option<f64> {
    if angles.is_empty() || angles.len() != weights.len() {
        return None;
    }
    if weights.iter().sum::<f64>() <= 0.0 {
        return None;
    }
    let (s, c) = angles
        .iter()
        .zip(weights)
        .fold((0.0, 0.0), |(s, c), (&a, &w)| {
            (s + w * a.sin(), c + w * a.cos())
        });
    Some(wrap(s.atan2(c)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TAU;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn empty_sample_yields_none() {
        assert!(circular_mean(&[]).is_none());
        assert!(mean_resultant_length(&[]).is_none());
        assert!(circular_variance(&[]).is_none());
        assert!(circular_std(&[]).is_none());
        assert!(weighted_circular_mean(&[], &[]).is_none());
    }

    #[test]
    fn single_angle_is_its_own_mean() {
        for a in [0.0, 1.0, PI, 6.0] {
            assert!((circular_mean(&[a]).unwrap() - a).abs() < 1e-12);
            assert!((mean_resultant_length(&[a]).unwrap() - 1.0).abs() < 1e-12);
            assert!(circular_variance(&[a]).unwrap() < 1e-12);
        }
    }

    #[test]
    fn wrap_point_cluster_means_correctly() {
        // The arithmetic mean of {6.18, 0.1} is ~3.14 (wrong side of the
        // circle); the circular mean is near 0.
        let angles = [TAU - 0.1, 0.1];
        let mean = circular_mean(&angles).unwrap();
        assert!(!(0.01..=TAU - 0.01).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn opposite_angles_have_zero_resultant() {
        let angles = [0.0, PI];
        assert!(mean_resultant_length(&angles).unwrap() < 1e-12);
        assert!((circular_variance(&angles).unwrap() - 1.0).abs() < 1e-12);
        // R̄ underflows to rounding noise; σ = sqrt(−2 ln R̄) is enormous
        // (or infinite if R̄ reached exactly zero).
        assert!(circular_std(&angles).unwrap() > 5.0);
    }

    #[test]
    fn uniform_grid_is_maximally_dispersed() {
        let n = 16;
        let angles: Vec<f64> = (0..n).map(|i| TAU * i as f64 / n as f64).collect();
        assert!(mean_resultant_length(&angles).unwrap() < 1e-10);
    }

    #[test]
    fn weighted_mean_follows_heavy_weight() {
        let angles = [0.5, 3.0];
        let mean = weighted_circular_mean(&angles, &[100.0, 0.001]).unwrap();
        assert!((mean - 0.5).abs() < 0.01);
        // Zero or negative total weight is rejected.
        assert!(weighted_circular_mean(&angles, &[0.0, 0.0]).is_none());
        assert!(weighted_circular_mean(&angles, &[1.0]).is_none());
    }

    #[test]
    fn median_is_robust_to_outliers() {
        // A tight cluster at 0.2 plus one distant (non-antipodal) outlier:
        // the mean is dragged towards it, the median stays on the cluster.
        let angles = [0.18, 0.2, 0.22, 0.21, 0.19, 0.2 + 2.5];
        let median = circular_median(&angles).unwrap();
        assert!(
            crate::angles::angular_distance(median, 0.2) < 0.05,
            "median {median}"
        );
        let mean = circular_mean(&angles).unwrap();
        assert!(
            crate::angles::angular_distance(mean, 0.2) > 0.1,
            "mean {mean} should be visibly dragged"
        );
    }

    #[test]
    fn median_handles_wrap_cluster() {
        let angles = [TAU - 0.1, TAU - 0.05, 0.05, 0.1];
        let median = circular_median(&angles).unwrap();
        assert!(
            !(0.2..=TAU - 0.2).contains(&median),
            "median {median} should sit near the wrap point"
        );
        assert!(circular_median(&[]).is_none());
    }

    #[test]
    fn uniform_weights_match_unweighted() {
        let angles = [0.2, 0.4, 5.9, 0.05];
        let w = [1.0; 4];
        let a = circular_mean(&angles).unwrap();
        let b = weighted_circular_mean(&angles, &w).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_mean_is_rotation_equivariant(
            shift in 0.0f64..TAU,
            raw in proptest::collection::vec(0.0f64..0.5, 1..30),
        ) {
            // Concentrated samples: rotating all angles rotates the mean.
            let mean = circular_mean(&raw).unwrap();
            let shifted: Vec<f64> = raw.iter().map(|a| wrap(a + shift)).collect();
            let shifted_mean = circular_mean(&shifted).unwrap();
            let diff = crate::angles::angular_distance(shifted_mean, wrap(mean + shift));
            prop_assert!(diff < 1e-9, "diff = {}", diff);
        }

        #[test]
        fn prop_resultant_in_unit_interval(
            angles in proptest::collection::vec(0.0f64..TAU, 1..50),
        ) {
            let r = mean_resultant_length(&angles).unwrap();
            prop_assert!((0.0..=1.0 + 1e-12).contains(&r));
        }
    }
}
