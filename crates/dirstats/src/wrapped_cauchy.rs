use rand::Rng;

use crate::angles::wrap;
use crate::DirStatsError;

/// The wrapped Cauchy distribution `WC(μ, ρ)`: the Cauchy distribution
/// wrapped onto the circle, the second canonical circular family next to
/// the von Mises (heavier-tailed; closed-form density and exact sampling).
///
/// `μ` is the mean direction and `ρ ∈ [0, 1)` the mean resultant length
/// (`ρ = 0` uniform, `ρ → 1` a point mass at `μ`).
///
/// # Example
///
/// ```
/// use dirstats::{descriptive, WrappedCauchy};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(2);
/// let wc = WrappedCauchy::new(1.5, 0.8)?;
/// let xs: Vec<f64> = (0..4000).map(|_| wc.sample(&mut rng)).collect();
/// let rbar = descriptive::mean_resultant_length(&xs).unwrap();
/// assert!((rbar - 0.8).abs() < 0.05); // E[R̄] = ρ exactly for this family
/// # Ok::<(), dirstats::DirStatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WrappedCauchy {
    mu: f64,
    rho: f64,
}

impl WrappedCauchy {
    /// Creates a wrapped Cauchy distribution with mean direction `mu`
    /// (radians, wrapped) and concentration `rho ∈ [0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`DirStatsError::InvalidParameter`] if `mu` is non-finite or
    /// `rho` lies outside `[0, 1)`.
    pub fn new(mu: f64, rho: f64) -> Result<Self, DirStatsError> {
        if !mu.is_finite() {
            return Err(DirStatsError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !rho.is_finite() || !(0.0..1.0).contains(&rho) {
            return Err(DirStatsError::InvalidParameter {
                name: "rho",
                value: rho,
            });
        }
        Ok(Self { mu: wrap(mu), rho })
    }

    /// The mean direction `μ ∈ [0, 2π)`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The concentration `ρ` (which equals the mean resultant length).
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The probability density at angle `theta` (closed form):
    /// `f(θ) = (1 − ρ²) / (2π (1 + ρ² − 2ρ cos(θ − μ)))`.
    #[must_use]
    pub fn pdf(&self, theta: f64) -> f64 {
        let r = self.rho;
        (1.0 - r * r) / (crate::TAU * (1.0 + r * r - 2.0 * r * (theta - self.mu).cos()))
    }

    /// Draws one angle in `[0, 2π)` by wrapping a Cauchy draw: if
    /// `ρ = e^{−γ}`, then `μ + γ·tan(π(U − ½))` wrapped is `WC(μ, ρ)`.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        if self.rho == 0.0 {
            return rng.random::<f64>() * crate::TAU;
        }
        let gamma = -self.rho.ln();
        let u: f64 = rng.random();
        wrap(self.mu + gamma * (std::f64::consts::PI * (u - 0.5)).tan())
    }

    /// Draws `n` angles.
    pub fn sample_n(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptive::{circular_mean, mean_resultant_length};
    use crate::TAU;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(909)
    }

    #[test]
    fn pdf_integrates_to_one() {
        for rho in [0.0, 0.3, 0.7, 0.95] {
            let wc = WrappedCauchy::new(2.0, rho).unwrap();
            let n = 200_000;
            let integral: f64 = (0..n)
                .map(|i| wc.pdf(TAU * i as f64 / n as f64))
                .sum::<f64>()
                * TAU
                / n as f64;
            assert!((integral - 1.0).abs() < 1e-3, "rho={rho}: {integral}");
        }
    }

    #[test]
    fn pdf_peaks_at_mu() {
        let wc = WrappedCauchy::new(1.0, 0.6).unwrap();
        assert!(wc.pdf(1.0) > wc.pdf(2.0));
        assert!(wc.pdf(1.0) > wc.pdf(1.0 + std::f64::consts::PI));
    }

    #[test]
    fn resultant_length_equals_rho() {
        let mut r = rng();
        for rho in [0.2, 0.5, 0.85] {
            let wc = WrappedCauchy::new(0.5, rho).unwrap();
            let xs = wc.sample_n(20_000, &mut r);
            let rbar = mean_resultant_length(&xs).unwrap();
            assert!((rbar - rho).abs() < 0.02, "rho={rho} rbar={rbar}");
        }
    }

    #[test]
    fn sample_mean_matches_mu() {
        let mut r = rng();
        let wc = WrappedCauchy::new(4.0, 0.7).unwrap();
        let xs = wc.sample_n(10_000, &mut r);
        let mean = circular_mean(&xs).unwrap();
        assert!(
            crate::angles::angular_distance(mean, 4.0) < 0.05,
            "mean={mean}"
        );
    }

    #[test]
    fn zero_rho_is_uniform() {
        let mut r = rng();
        let wc = WrappedCauchy::new(0.0, 0.0).unwrap();
        let xs = wc.sample_n(10_000, &mut r);
        assert!(mean_resultant_length(&xs).unwrap() < 0.03);
        assert!((wc.pdf(0.1) - 1.0 / TAU).abs() < 1e-12);
    }

    #[test]
    fn heavier_tails_than_von_mises() {
        // Match the resultant length (ρ = I1/I0(κ)) and compare tail mass
        // at the antipode: wrapped Cauchy must carry more.
        let rho = 0.7f64;
        // κ such that I1/I0(κ) ≈ 0.7 → κ ≈ 2.87.
        let vm = crate::VonMises::new(0.0, 2.87).unwrap();
        let wc = WrappedCauchy::new(0.0, rho).unwrap();
        assert!(wc.pdf(std::f64::consts::PI) > vm.pdf(std::f64::consts::PI));
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(WrappedCauchy::new(f64::NAN, 0.5).is_err());
        assert!(WrappedCauchy::new(0.0, 1.0).is_err());
        assert!(WrappedCauchy::new(0.0, -0.1).is_err());
    }
}
