//! Tests of circular uniformity.
//!
//! The Rayleigh test rejects the null hypothesis "the sample is uniform on
//! the circle" when the mean resultant length is improbably large — the
//! standard first check before fitting a von Mises model.
//!
//! ```
//! use dirstats::uniformity::rayleigh_test;
//! use dirstats::VonMises;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(6);
//! let concentrated = VonMises::new(1.0, 5.0)?.sample_n(200, &mut rng);
//! let result = rayleigh_test(&concentrated)?;
//! assert!(result.p_value < 0.001); // clearly not uniform
//! # Ok::<(), dirstats::DirStatsError>(())
//! ```

use crate::descriptive::mean_resultant_length;
use crate::DirStatsError;

/// Outcome of the [`rayleigh_test`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayleighTest {
    /// The test statistic `z = n·R̄²`.
    pub z: f64,
    /// Approximate p-value under the uniform null (Fisher's 1995
    /// second-order approximation, accurate for `n ≳ 10`).
    pub p_value: f64,
    /// The mean resultant length `R̄` of the sample.
    pub mean_resultant_length: f64,
    /// Sample size.
    pub n: usize,
}

/// Runs the Rayleigh test of uniformity on a sample of angles (radians).
///
/// # Errors
///
/// Returns [`DirStatsError::NotEnoughSamples`] for samples with fewer than
/// two angles.
pub fn rayleigh_test(angles: &[f64]) -> Result<RayleighTest, DirStatsError> {
    if angles.len() < 2 {
        return Err(DirStatsError::NotEnoughSamples {
            minimum: 2,
            found: angles.len(),
        });
    }
    let n = angles.len();
    let nf = n as f64;
    let rbar = mean_resultant_length(angles).expect("non-empty checked above");
    let z = nf * rbar * rbar;
    // Fisher (1995) correction to the first-order e^{−z} approximation.
    let p = (-z).exp()
        * (1.0 + (2.0 * z - z * z) / (4.0 * nf)
            - (24.0 * z - 132.0 * z * z + 76.0 * z.powi(3) - 9.0 * z.powi(4)) / (288.0 * nf * nf));
    Ok(RayleighTest {
        z,
        p_value: p.clamp(0.0, 1.0),
        mean_resultant_length: rbar,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{VonMises, TAU};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(515)
    }

    #[test]
    fn uniform_sample_is_not_rejected() {
        let mut r = rng();
        let angles: Vec<f64> = (0..500).map(|_| r.random::<f64>() * TAU).collect();
        let result = rayleigh_test(&angles).unwrap();
        assert!(result.p_value > 0.01, "p = {}", result.p_value);
        assert!(result.mean_resultant_length < 0.15);
    }

    #[test]
    fn concentrated_sample_is_rejected() {
        let mut r = rng();
        let vm = VonMises::new(2.0, 3.0).unwrap();
        let angles = vm.sample_n(100, &mut r);
        let result = rayleigh_test(&angles).unwrap();
        assert!(result.p_value < 1e-6, "p = {}", result.p_value);
        assert_eq!(result.n, 100);
    }

    #[test]
    fn weakly_concentrated_needs_more_data() {
        // κ = 0.25 with n = 30 should usually fail to reject; with n = 3000
        // it must reject. Both behaviours are statistical, so use one seed
        // and sample sizes far from the decision boundary.
        let mut r = rng();
        let vm = VonMises::new(0.0, 0.25).unwrap();
        let large = vm.sample_n(3_000, &mut r);
        assert!(rayleigh_test(&large).unwrap().p_value < 1e-4);
    }

    #[test]
    fn grid_is_perfectly_uniform() {
        let angles: Vec<f64> = (0..64).map(|i| TAU * i as f64 / 64.0).collect();
        let result = rayleigh_test(&angles).unwrap();
        assert!(result.z < 1e-12);
        assert!(result.p_value > 0.99);
    }

    #[test]
    fn rejects_tiny_samples() {
        assert!(rayleigh_test(&[]).is_err());
        assert!(rayleigh_test(&[1.0]).is_err());
    }
}
