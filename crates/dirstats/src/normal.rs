use rand::Rng;

use crate::DirStatsError;

/// A univariate normal distribution sampled with the Box–Muller transform.
///
/// Implemented here (rather than importing a distributions crate) because
/// the synthetic dataset generators only need Gaussian and von Mises noise,
/// keeping the workspace's dependency footprint minimal.
///
/// # Example
///
/// ```
/// use dirstats::Normal;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(12);
/// let noise = Normal::new(0.0, 2.0)?;
/// let xs: Vec<f64> = (0..4000).map(|_| noise.sample(&mut rng)).collect();
/// let mean = xs.iter().sum::<f64>() / xs.len() as f64;
/// assert!(mean.abs() < 0.15);
/// # Ok::<(), dirstats::DirStatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`DirStatsError::InvalidParameter`] if either parameter is
    /// non-finite or `std_dev < 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DirStatsError> {
        if !mean.is_finite() {
            return Err(DirStatsError::InvalidParameter {
                name: "mean",
                value: mean,
            });
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DirStatsError::InvalidParameter {
                name: "std_dev",
                value: std_dev,
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal `N(0, 1)`.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// The distribution mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    /// Draws `n` samples.
    pub fn sample_n(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The probability density at `x`.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is degenerate (`std_dev == 0`).
    #[must_use]
    pub fn pdf(&self, x: f64) -> f64 {
        assert!(
            self.std_dev > 0.0,
            "density of a degenerate normal is undefined"
        );
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }
}

/// One standard-normal draw via Box–Muller (the cosine branch).
pub(crate) fn standard_normal(rng: &mut impl Rng) -> f64 {
    // u1 ∈ (0, 1] avoids ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (crate::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn moments_match() {
        let mut r = rng();
        let dist = Normal::new(3.0, 1.5).unwrap();
        let xs = dist.sample_n(20_000, &mut r);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 2.25).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn tail_mass_is_gaussian() {
        // ~31.7% of mass beyond 1σ, ~4.6% beyond 2σ.
        let mut r = rng();
        let dist = Normal::standard();
        let xs = dist.sample_n(50_000, &mut r);
        let beyond1 = xs.iter().filter(|x| x.abs() > 1.0).count() as f64 / xs.len() as f64;
        let beyond2 = xs.iter().filter(|x| x.abs() > 2.0).count() as f64 / xs.len() as f64;
        assert!((beyond1 - 0.3173).abs() < 0.01, "beyond1 = {beyond1}");
        assert!((beyond2 - 0.0455).abs() < 0.005, "beyond2 = {beyond2}");
    }

    #[test]
    fn pdf_peaks_at_mean() {
        let dist = Normal::new(1.0, 2.0).unwrap();
        assert!(dist.pdf(1.0) > dist.pdf(0.0));
        assert!(dist.pdf(1.0) > dist.pdf(2.0));
        // Standard normal peak value 1/sqrt(2π).
        let peak = Normal::standard().pdf(0.0);
        assert!((peak - 0.398_942_28).abs() < 1e-6);
    }

    #[test]
    fn zero_std_is_constant() {
        let mut r = rng();
        let dist = Normal::new(5.0, 0.0).unwrap();
        assert_eq!(dist.sample(&mut r), 5.0);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn accessors() {
        let dist = Normal::new(1.0, 2.0).unwrap();
        assert_eq!(dist.mean(), 1.0);
        assert_eq!(dist.std_dev(), 2.0);
    }
}
