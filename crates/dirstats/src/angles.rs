//! Angle arithmetic on the unit circle.
//!
//! All functions take radians. Angles are conventionally wrapped to
//! `[0, 2π)` and signed differences to `(−π, π]`.
//!
//! ```
//! use dirstats::angles;
//! use std::f64::consts::PI;
//!
//! // 350° and 10° are 20° apart, not 340°.
//! let a = 350_f64.to_radians();
//! let b = 10_f64.to_radians();
//! assert!((angles::angular_distance(a, b) - 20_f64.to_radians()).abs() < 1e-12);
//!
//! // The paper's circular distance ρ is 0 for equal angles, 1 for opposite.
//! assert!(angles::circular_distance(0.0, PI) > 0.999);
//! ```

use crate::TAU;

/// Wraps an angle to `[0, 2π)`.
#[must_use]
pub fn wrap(angle: f64) -> f64 {
    let w = angle.rem_euclid(TAU);
    // rem_euclid can return TAU itself for tiny negative inputs.
    if w >= TAU {
        0.0
    } else {
        w
    }
}

/// The signed difference `α − β` wrapped to `(−π, π]`.
#[must_use]
pub fn signed_difference(alpha: f64, beta: f64) -> f64 {
    let d = wrap(alpha - beta);
    if d > std::f64::consts::PI {
        d - TAU
    } else {
        d
    }
}

/// The unsigned angular (arc) distance in `[0, π]`.
#[must_use]
pub fn angular_distance(alpha: f64, beta: f64) -> f64 {
    signed_difference(alpha, beta).abs()
}

/// The paper's circular distance `ρ(α, β) = (1 − cos(α − β))/2 ∈ [0, 1]`
/// (§5, after Lund): `0` for coincident angles, `1` for diametrically
/// opposite ones.
#[must_use]
pub fn circular_distance(alpha: f64, beta: f64) -> f64 {
    0.5 * (1.0 - (alpha - beta).cos())
}

/// Maps a value from a periodic domain `[0, period)` to an angle in
/// `[0, 2π)` — e.g. hour-of-day with `period = 24`, day-of-year with
/// `period = 365.25`.
///
/// # Panics
///
/// Panics if `period` is not finite and positive.
#[must_use]
pub fn to_angle(value: f64, period: f64) -> f64 {
    assert!(
        period.is_finite() && period > 0.0,
        "period {period} must be positive and finite"
    );
    wrap(value / period * TAU)
}

/// Inverse of [`to_angle`]: maps an angle back to `[0, period)`.
///
/// # Panics
///
/// Panics if `period` is not finite and positive.
#[must_use]
pub fn from_angle(angle: f64, period: f64) -> f64 {
    assert!(
        period.is_finite() && period > 0.0,
        "period {period} must be positive and finite"
    );
    wrap(angle) / TAU * period
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn wrap_basic_cases() {
        assert_eq!(wrap(0.0), 0.0);
        assert!((wrap(TAU + 0.5) - 0.5).abs() < 1e-12);
        assert!((wrap(-0.5) - (TAU - 0.5)).abs() < 1e-12);
        assert!((wrap(-TAU)).abs() < 1e-12);
        assert!(wrap(-1e-18) < TAU);
    }

    #[test]
    fn signed_difference_is_antisymmetric() {
        let a = 0.3;
        let b = 5.9;
        assert!((signed_difference(a, b) + signed_difference(b, a)).abs() < 1e-12);
        // Wrap-around: 0.1 rad and 2π − 0.1 rad are 0.2 apart.
        let d = signed_difference(0.1, TAU - 0.1);
        assert!((d - 0.2).abs() < 1e-12);
    }

    #[test]
    fn signed_difference_half_turn_is_pi_not_minus_pi() {
        assert!((signed_difference(PI, 0.0) - PI).abs() < 1e-12);
    }

    #[test]
    fn circular_distance_endpoints() {
        assert_eq!(circular_distance(1.0, 1.0), 0.0);
        assert!((circular_distance(0.0, PI) - 1.0).abs() < 1e-12);
        assert!((circular_distance(0.0, PI / 2.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn to_from_angle_round_trip() {
        for hour in [0.0, 6.0, 12.0, 23.5] {
            let angle = to_angle(hour, 24.0);
            assert!((from_angle(angle, 24.0) - hour).abs() < 1e-9);
        }
        // Hour 24 wraps to hour 0.
        assert!(from_angle(to_angle(24.0, 24.0), 24.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn to_angle_rejects_zero_period() {
        let _ = to_angle(1.0, 0.0);
    }

    proptest! {
        #[test]
        fn prop_wrap_in_range(x in -1e6f64..1e6) {
            let w = wrap(x);
            prop_assert!((0.0..TAU).contains(&w));
        }

        #[test]
        fn prop_angular_distance_symmetric_and_bounded(a in -10.0f64..10.0, b in -10.0f64..10.0) {
            let d = angular_distance(a, b);
            prop_assert!((0.0..=PI + 1e-12).contains(&d));
            prop_assert!((d - angular_distance(b, a)).abs() < 1e-12);
        }

        #[test]
        fn prop_circular_distance_matches_arc(a in 0.0f64..TAU, b in 0.0f64..TAU) {
            // ρ = (1 − cos θ)/2 = sin²(θ/2) where θ is the arc distance.
            let arc = angular_distance(a, b);
            let rho = circular_distance(a, b);
            prop_assert!((rho - (arc / 2.0).sin().powi(2)).abs() < 1e-9);
        }
    }
}
