use std::error::Error;
use std::fmt;

/// Errors produced by directional-statistics constructors and estimators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DirStatsError {
    /// A distribution parameter was invalid (NaN, infinite or out of range).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An estimator that needs at least `minimum` observations received
    /// fewer.
    NotEnoughSamples {
        /// The minimum number of observations required.
        minimum: usize,
        /// The number actually supplied.
        found: usize,
    },
    /// Paired-sample estimators require equally long inputs.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// The input data is degenerate for the requested estimator (e.g. zero
    /// variance in a correlation).
    DegenerateData(&'static str),
}

impl fmt::Display for DirStatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DirStatsError::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            DirStatsError::NotEnoughSamples { minimum, found } => {
                write!(
                    f,
                    "estimator needs at least {minimum} samples, found {found}"
                )
            }
            DirStatsError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "paired inputs have different lengths: {left} and {right}"
                )
            }
            DirStatsError::DegenerateData(what) => write!(f, "degenerate data: {what}"),
        }
    }
}

impl Error for DirStatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = DirStatsError::InvalidParameter {
            name: "kappa",
            value: -1.0,
        };
        assert!(e.to_string().contains("kappa"));
        let e = DirStatsError::NotEnoughSamples {
            minimum: 2,
            found: 0,
        };
        assert!(e.to_string().contains('2'));
        let e = DirStatsError::LengthMismatch { left: 3, right: 4 };
        assert!(e.to_string().contains('3') && e.to_string().contains('4'));
        assert!(!DirStatsError::DegenerateData("x is constant")
            .to_string()
            .is_empty());
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync>() {}
        assert_traits::<DirStatsError>();
    }
}
