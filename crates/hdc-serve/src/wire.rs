//! The framed wire protocol of the serving front-end: length-prefixed
//! frames carrying versioned, op-coded request/response messages over any
//! `Read`/`Write` transport (in practice a `TcpStream`).
//!
//! # Framing
//!
//! Every message is one frame. All integers are big-endian.
//!
//! ```text
//! frame    := u32 length, payload[length]
//! payload  := u8 version (=3), u8 opcode, body
//! string   := u16 length, utf8 bytes
//! bytes    := u32 length, raw bytes
//! hv       := u32 dim, u64 words[dim.div_ceil(64)]   (packed LSB-first)
//! ```
//!
//! Requests and responses share the framing; opcodes are listed in
//! [`Request`] and [`Response`]. Oversized frames (> [`MAX_FRAME_BYTES`]),
//! unknown versions/opcodes and malformed bodies decode to
//! `io::ErrorKind::InvalidData` — a server answers those with
//! [`Response::Error`] rather than dying.
//!
//! Protocol version 2 (PR 5) added the regression operations
//! (`predict_value`/`fit_value`), the `ping` health probe, and the
//! `uptime_us` field in `stats`.
//!
//! Protocol version 3 (PR 6) adds the shard-cluster surface: the batched
//! regression predict (`predict_value_batch`), the shard-lifecycle
//! operations (`snapshot`/`restore` streaming the
//! [`Snapshot`](crate::Snapshot) codec over the wire so a fresh shard
//! process joins warm, `shard_join`/`shard_leave` answered by a cluster
//! router), and the shard-identity section (`name`, `ring_positions`) in
//! `stats`. Snapshot streams ride a single frame, so a shard's state must
//! fit [`MAX_SNAPSHOT_BYTES`]; a server whose state has outgrown the cap
//! answers `snapshot` with an explanatory [`Response::Error`] instead of
//! an unencodable frame (which would drop the connection and leave the
//! client staring at an EOF).

use std::io::{self, Read, Write};

use hdc_core::BinaryHypervector;

use crate::codec::{
    invalid, put_bytes, put_f64, put_hv, put_string, put_u16, put_u32, put_u64, Cursor,
};
use crate::metrics::MetricsSnapshot;
use crate::runtime::{Prediction, RuntimeStats, ValuePrediction};

/// Protocol version carried in every frame.
pub const PROTOCOL_VERSION: u8 = 3;

/// Upper bound on one frame's payload (16 MiB): a 256-row batch of
/// 100k-bit queries is ~3 MiB, so real traffic sits far below while a
/// corrupt length prefix cannot trigger a giant allocation.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Largest [`Snapshot`](crate::Snapshot) byte stream that fits one
/// `snapshot`/`restore` frame: the frame's length covers the version and
/// opcode bytes, and the stream rides behind a u32 byte-length prefix.
/// Servers check against this before encoding a snapshot reply, so an
/// oversized shard state surfaces as a [`Response::Error`] rather than a
/// dropped connection.
pub const MAX_SNAPSHOT_BYTES: usize = MAX_FRAME_BYTES - 6;

// --- opcodes -----------------------------------------------------------
//
// Every opcode is a named constant used by BOTH codec directions (the
// `write_*` encoder and the `read_*` decoder match) and pinned by
// `tests/wire_roundtrip.rs`. The `wire-opcode-exhaustive` lint in
// `hdc-analyze` enforces all three references, so adding an opcode here
// without a decoder arm or a round-trip test fails the analyze gate.

/// Request opcode: [`Request::Predict`].
pub const OP_PREDICT: u8 = 1;
/// Request opcode: [`Request::PredictBatch`].
pub const OP_PREDICT_BATCH: u8 = 2;
/// Request opcode: [`Request::Insert`].
pub const OP_INSERT: u8 = 3;
/// Request opcode: [`Request::Remove`].
pub const OP_REMOVE: u8 = 4;
/// Request opcode: [`Request::Fit`].
pub const OP_FIT: u8 = 5;
/// Request opcode: [`Request::Refresh`].
pub const OP_REFRESH: u8 = 6;
/// Request opcode: [`Request::AddShard`].
pub const OP_ADD_SHARD: u8 = 7;
/// Request opcode: [`Request::RemoveShard`].
pub const OP_REMOVE_SHARD: u8 = 8;
/// Request opcode: [`Request::Stats`].
pub const OP_STATS: u8 = 9;
/// Request opcode: [`Request::PredictValue`].
pub const OP_PREDICT_VALUE: u8 = 10;
/// Request opcode: [`Request::FitValue`].
pub const OP_FIT_VALUE: u8 = 11;
/// Request opcode: [`Request::Ping`].
pub const OP_PING: u8 = 12;
/// Request opcode: [`Request::PredictValueBatch`].
pub const OP_PREDICT_VALUE_BATCH: u8 = 13;
/// Request opcode: [`Request::Snapshot`].
pub const OP_SNAPSHOT: u8 = 14;
/// Request opcode: [`Request::Restore`].
pub const OP_RESTORE: u8 = 15;
/// Request opcode: [`Request::ShardJoin`].
pub const OP_SHARD_JOIN: u8 = 16;
/// Request opcode: [`Request::ShardLeave`].
pub const OP_SHARD_LEAVE: u8 = 17;

/// Response opcode: [`Response::Label`].
pub const RESP_LABEL: u8 = 1;
/// Response opcode: [`Response::Labels`].
pub const RESP_LABELS: u8 = 2;
/// Response opcode: [`Response::Inserted`].
pub const RESP_INSERTED: u8 = 3;
/// Response opcode: [`Response::Removed`].
pub const RESP_REMOVED: u8 = 4;
/// Response opcode: [`Response::FitAck`].
pub const RESP_FIT_ACK: u8 = 5;
/// Response opcode: [`Response::Refreshed`].
pub const RESP_REFRESHED: u8 = 6;
/// Response opcode: [`Response::ShardAdded`].
pub const RESP_SHARD_ADDED: u8 = 7;
/// Response opcode: [`Response::ShardRemoved`].
pub const RESP_SHARD_REMOVED: u8 = 8;
/// Response opcode: [`Response::Stats`].
pub const RESP_STATS: u8 = 9;
/// Response opcode: [`Response::Value`].
pub const RESP_VALUE: u8 = 10;
/// Response opcode: [`Response::Pong`]. (11 is skipped on the response
/// side: `Request::FitValue` is acknowledged by [`RESP_FIT_ACK`].)
pub const RESP_PONG: u8 = 12;
/// Response opcode: [`Response::Values`].
pub const RESP_VALUES: u8 = 13;
/// Response opcode: [`Response::Snapshot`].
pub const RESP_SNAPSHOT: u8 = 14;
/// Response opcode: [`Response::Restored`].
pub const RESP_RESTORED: u8 = 15;
/// Response opcode: [`Response::ShardJoined`].
pub const RESP_SHARD_JOINED: u8 = 16;
/// Response opcode: [`Response::ShardLeft`].
pub const RESP_SHARD_LEFT: u8 = 17;
/// Response opcode: [`Response::Error`].
pub const RESP_ERROR: u8 = 255;

/// A client → server operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Predict one keyed, encoded query (opcode 1).
    Predict {
        /// Routing key.
        key: String,
        /// Encoded query.
        hv: BinaryHypervector,
    },
    /// Predict a batch of keyed, encoded queries (opcode 2).
    PredictBatch {
        /// `(routing key, encoded query)` pairs, answered in order.
        pairs: Vec<(String, BinaryHypervector)>,
    },
    /// Store an encoded hypervector under a key (opcode 3).
    Insert {
        /// Storage key.
        key: String,
        /// Entry to store.
        hv: BinaryHypervector,
    },
    /// Remove a stored entry (opcode 4).
    Remove {
        /// Storage key.
        key: String,
    },
    /// Fold one encoded training observation into the online trainer
    /// (opcode 5).
    Fit {
        /// Class label of the observation.
        label: u32,
        /// Encoded observation.
        hv: BinaryHypervector,
    },
    /// Force-publish a new generation (opcode 6).
    Refresh,
    /// Add a shard to the fleet (opcode 7).
    AddShard,
    /// Remove a shard from the fleet (opcode 8).
    RemoveShard {
        /// Shard id to remove.
        id: u32,
    },
    /// Snapshot runtime statistics (opcode 9).
    Stats,
    /// Predict one keyed, encoded query's real-valued label (opcode 10) —
    /// the regression twin of `Predict`.
    PredictValue {
        /// Routing key.
        key: String,
        /// Encoded query.
        hv: BinaryHypervector,
    },
    /// Fold one encoded `(query, value)` training observation into the
    /// online regression trainer (opcode 11).
    FitValue {
        /// Real-valued label of the observation.
        value: f64,
        /// Encoded observation.
        hv: BinaryHypervector,
    },
    /// Liveness/health probe (opcode 12): answered directly by the
    /// connection handler — no prediction is issued and nothing enters the
    /// dispatcher queue, so load balancers can poll it at any rate.
    Ping,
    /// Predict a batch of keyed, encoded queries' real-valued labels
    /// (opcode 13) — the regression twin of `PredictBatch`.
    PredictValueBatch {
        /// `(routing key, encoded query)` pairs, answered in order.
        pairs: Vec<(String, BinaryHypervector)>,
    },
    /// Stream the serving process's full state — spec, trainer
    /// accumulators, item memories — as [`Snapshot`](crate::Snapshot)
    /// bytes (opcode 14). A cluster router issues this against a donor
    /// shard to warm-join a fresh one.
    Snapshot,
    /// Adopt a streamed [`Snapshot`](crate::Snapshot) into the live
    /// runtime (opcode 15): trainer accumulators replace the online
    /// trainer's and items merge into the fleet — the receiving half of a
    /// warm shard join.
    Restore {
        /// The snapshot's canonical byte encoding.
        snapshot: Vec<u8>,
    },
    /// Ask a cluster router to warm-join the shard process listening at
    /// `addr` (opcode 16). Shard runtimes refuse this op — membership is
    /// the router's job.
    ShardJoin {
        /// Address of the new shard process (`host:port`).
        addr: String,
    },
    /// Ask a cluster router to drain and drop shard `id` (opcode 17): its
    /// items are re-inserted through the ring before it is removed.
    ShardLeave {
        /// Cluster-assigned shard id to remove.
        id: u32,
    },
}

/// A server → client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Predict`] (opcode 1).
    Label {
        /// Predicted class label.
        label: u32,
        /// Generation that served the prediction.
        generation: u64,
    },
    /// Answer to [`Request::PredictBatch`] (opcode 2): per-query
    /// `(label, generation)` in request order.
    Labels {
        /// One `(label, generation)` per query, in order.
        predictions: Vec<(u32, u64)>,
    },
    /// Answer to [`Request::Insert`] (opcode 3).
    Inserted {
        /// `true` if a previous entry was replaced.
        replaced: bool,
    },
    /// Answer to [`Request::Remove`] (opcode 4).
    Removed {
        /// `true` if the key was stored.
        removed: bool,
    },
    /// Answer to [`Request::Fit`] and [`Request::FitValue`] (opcode 5):
    /// the observation is enqueued.
    FitAck,
    /// Answer to [`Request::Refresh`] (opcode 6).
    Refreshed {
        /// Id of the newly published generation.
        generation: u64,
    },
    /// Answer to [`Request::AddShard`] (opcode 7).
    ShardAdded {
        /// Id of the new shard.
        id: u32,
    },
    /// Answer to [`Request::RemoveShard`] (opcode 8).
    ShardRemoved {
        /// `false` for an unknown id or the last shard.
        removed: bool,
    },
    /// Answer to [`Request::Stats`] (opcode 9).
    Stats(RuntimeStats),
    /// Answer to [`Request::PredictValue`] (opcode 10).
    Value {
        /// Predicted real-valued label.
        value: f64,
        /// Generation that served the prediction.
        generation: u64,
    },
    /// Answer to [`Request::Ping`] (opcode 12).
    Pong {
        /// Currently published generation.
        generation: u64,
        /// Microseconds since the runtime spawned.
        uptime_us: u64,
    },
    /// Answer to [`Request::PredictValueBatch`] (opcode 13): per-query
    /// `(value, generation)` in request order.
    Values {
        /// One `(value, generation)` per query, in order.
        predictions: Vec<(f64, u64)>,
    },
    /// Answer to [`Request::Snapshot`] (opcode 14).
    Snapshot {
        /// The [`Snapshot`](crate::Snapshot) canonical byte encoding.
        bytes: Vec<u8>,
    },
    /// Answer to [`Request::Restore`] (opcode 15).
    Restored {
        /// Id of the generation published from the adopted state.
        generation: u64,
    },
    /// Answer to [`Request::ShardJoin`] (opcode 16).
    ShardJoined {
        /// Cluster-assigned id of the new shard.
        id: u32,
        /// Item-memory entries streamed onto the new shard.
        moved: u64,
    },
    /// Answer to [`Request::ShardLeave`] (opcode 17).
    ShardLeft {
        /// `false` for an unknown id or the last shard.
        removed: bool,
        /// Item-memory entries re-inserted through the ring.
        drained: u64,
    },
    /// Any request the server could not serve (opcode 255).
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Convenience: the `(label, generation)` pair as a [`Prediction`], if
    /// this is a `Label` response.
    #[must_use]
    pub fn as_prediction(&self) -> Option<Prediction> {
        match *self {
            Response::Label { label, generation } => Some(Prediction {
                label: label as usize,
                generation,
            }),
            _ => None,
        }
    }

    /// Convenience: the `(value, generation)` pair as a
    /// [`ValuePrediction`], if this is a `Value` response.
    #[must_use]
    pub fn as_value_prediction(&self) -> Option<ValuePrediction> {
        match *self {
            Response::Value { value, generation } => Some(ValuePrediction { value, generation }),
            _ => None,
        }
    }
}

// --- framing -----------------------------------------------------------

fn write_frame(writer: &mut impl Write, opcode: u8, body: &[u8]) -> io::Result<()> {
    let length = u32::try_from(body.len() + 2).map_err(|_| invalid("frame too large"))?;
    if length as usize > MAX_FRAME_BYTES {
        return Err(invalid("frame too large"));
    }
    let mut frame = Vec::with_capacity(4 + 2 + body.len());
    frame.extend_from_slice(&length.to_be_bytes());
    frame.push(PROTOCOL_VERSION);
    frame.push(opcode);
    frame.extend_from_slice(body);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Reads one frame, returning `(opcode, body)` — or `None` on a clean
/// end-of-stream at a frame boundary (the peer hung up between messages).
fn read_frame(reader: &mut impl Read) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match reader.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(invalid("connection closed mid-frame")),
            n => filled += n,
        }
    }
    let length = u32::from_be_bytes(header) as usize;
    if length < 2 {
        return Err(invalid("frame shorter than its version and opcode"));
    }
    if length > MAX_FRAME_BYTES {
        return Err(invalid(format!("frame of {length} bytes exceeds the cap")));
    }
    // Version and opcode are consumed separately so the body lands in its
    // final buffer directly (no shift of a multi-megabyte frame).
    let mut meta = [0u8; 2];
    reader.read_exact(&mut meta)?;
    if meta[0] != PROTOCOL_VERSION {
        return Err(invalid(format!("unsupported protocol version {}", meta[0])));
    }
    let mut body = vec![0u8; length - 2];
    reader.read_exact(&mut body)?;
    Ok(Some((meta[1], body)))
}

// --- requests ----------------------------------------------------------

/// Writes one request as a frame.
///
/// # Errors
///
/// Returns `io::Error` on transport failure or an unencodable message
/// (key over 64 KiB, frame over [`MAX_FRAME_BYTES`]).
pub fn write_request(writer: &mut impl Write, request: &Request) -> io::Result<()> {
    let mut body = Vec::new();
    let opcode = match request {
        Request::Predict { key, hv } => {
            put_string(&mut body, key)?;
            put_hv(&mut body, hv)?;
            OP_PREDICT
        }
        Request::PredictBatch { pairs } => {
            let n = u16::try_from(pairs.len())
                .map_err(|_| invalid("batch exceeds the u16 row limit"))?;
            put_u16(&mut body, n);
            for (key, hv) in pairs {
                put_string(&mut body, key)?;
                put_hv(&mut body, hv)?;
            }
            OP_PREDICT_BATCH
        }
        Request::Insert { key, hv } => {
            put_string(&mut body, key)?;
            put_hv(&mut body, hv)?;
            OP_INSERT
        }
        Request::Remove { key } => {
            put_string(&mut body, key)?;
            OP_REMOVE
        }
        Request::Fit { label, hv } => {
            put_u32(&mut body, *label);
            put_hv(&mut body, hv)?;
            OP_FIT
        }
        Request::Refresh => OP_REFRESH,
        Request::AddShard => OP_ADD_SHARD,
        Request::RemoveShard { id } => {
            put_u32(&mut body, *id);
            OP_REMOVE_SHARD
        }
        Request::Stats => OP_STATS,
        Request::PredictValue { key, hv } => {
            put_string(&mut body, key)?;
            put_hv(&mut body, hv)?;
            OP_PREDICT_VALUE
        }
        Request::FitValue { value, hv } => {
            put_f64(&mut body, *value);
            put_hv(&mut body, hv)?;
            OP_FIT_VALUE
        }
        Request::Ping => OP_PING,
        Request::PredictValueBatch { pairs } => {
            let n = u16::try_from(pairs.len())
                .map_err(|_| invalid("batch exceeds the u16 row limit"))?;
            put_u16(&mut body, n);
            for (key, hv) in pairs {
                put_string(&mut body, key)?;
                put_hv(&mut body, hv)?;
            }
            OP_PREDICT_VALUE_BATCH
        }
        Request::Snapshot => OP_SNAPSHOT,
        Request::Restore { snapshot } => {
            put_bytes(&mut body, snapshot)?;
            OP_RESTORE
        }
        Request::ShardJoin { addr } => {
            put_string(&mut body, addr)?;
            OP_SHARD_JOIN
        }
        Request::ShardLeave { id } => {
            put_u32(&mut body, *id);
            OP_SHARD_LEAVE
        }
    };
    write_frame(writer, opcode, &body)
}

/// Reads one request frame; `Ok(None)` means the peer closed the
/// connection cleanly between frames.
///
/// # Errors
///
/// Returns `io::Error` on transport failure or a malformed frame.
pub fn read_request(reader: &mut impl Read) -> io::Result<Option<Request>> {
    let Some((opcode, body)) = read_frame(reader)? else {
        return Ok(None);
    };
    let mut cursor = Cursor::new(&body);
    let request = match opcode {
        OP_PREDICT => Request::Predict {
            key: cursor.string()?,
            hv: cursor.hv()?,
        },
        OP_PREDICT_BATCH => {
            let n = cursor.u16()? as usize;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((cursor.string()?, cursor.hv()?));
            }
            Request::PredictBatch { pairs }
        }
        OP_INSERT => Request::Insert {
            key: cursor.string()?,
            hv: cursor.hv()?,
        },
        OP_REMOVE => Request::Remove {
            key: cursor.string()?,
        },
        OP_FIT => Request::Fit {
            label: cursor.u32()?,
            hv: cursor.hv()?,
        },
        OP_REFRESH => Request::Refresh,
        OP_ADD_SHARD => Request::AddShard,
        OP_REMOVE_SHARD => Request::RemoveShard { id: cursor.u32()? },
        OP_STATS => Request::Stats,
        OP_PREDICT_VALUE => Request::PredictValue {
            key: cursor.string()?,
            hv: cursor.hv()?,
        },
        OP_FIT_VALUE => Request::FitValue {
            value: cursor.f64()?,
            hv: cursor.hv()?,
        },
        OP_PING => Request::Ping,
        OP_PREDICT_VALUE_BATCH => {
            let n = cursor.u16()? as usize;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                pairs.push((cursor.string()?, cursor.hv()?));
            }
            Request::PredictValueBatch { pairs }
        }
        OP_SNAPSHOT => Request::Snapshot,
        OP_RESTORE => Request::Restore {
            snapshot: cursor.bytes()?,
        },
        OP_SHARD_JOIN => Request::ShardJoin {
            addr: cursor.string()?,
        },
        OP_SHARD_LEAVE => Request::ShardLeave { id: cursor.u32()? },
        other => return Err(invalid(format!("unknown request opcode {other}"))),
    };
    cursor.finish()?;
    Ok(Some(request))
}

// --- responses ---------------------------------------------------------

/// Writes one response as a frame.
///
/// # Errors
///
/// Returns `io::Error` on transport failure or an unencodable message.
pub fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    let mut body = Vec::new();
    let opcode = match response {
        Response::Label { label, generation } => {
            put_u32(&mut body, *label);
            put_u64(&mut body, *generation);
            RESP_LABEL
        }
        Response::Labels { predictions } => {
            let n = u16::try_from(predictions.len())
                .map_err(|_| invalid("batch exceeds the u16 row limit"))?;
            put_u16(&mut body, n);
            for (label, generation) in predictions {
                put_u32(&mut body, *label);
                put_u64(&mut body, *generation);
            }
            RESP_LABELS
        }
        Response::Inserted { replaced } => {
            body.push(u8::from(*replaced));
            RESP_INSERTED
        }
        Response::Removed { removed } => {
            body.push(u8::from(*removed));
            RESP_REMOVED
        }
        Response::FitAck => RESP_FIT_ACK,
        Response::Refreshed { generation } => {
            put_u64(&mut body, *generation);
            RESP_REFRESHED
        }
        Response::ShardAdded { id } => {
            put_u32(&mut body, *id);
            RESP_SHARD_ADDED
        }
        Response::ShardRemoved { removed } => {
            body.push(u8::from(*removed));
            RESP_SHARD_REMOVED
        }
        Response::Stats(stats) => {
            put_stats(&mut body, stats)?;
            RESP_STATS
        }
        Response::Value { value, generation } => {
            put_f64(&mut body, *value);
            put_u64(&mut body, *generation);
            RESP_VALUE
        }
        Response::Pong {
            generation,
            uptime_us,
        } => {
            put_u64(&mut body, *generation);
            put_u64(&mut body, *uptime_us);
            RESP_PONG
        }
        Response::Values { predictions } => {
            let n = u16::try_from(predictions.len())
                .map_err(|_| invalid("batch exceeds the u16 row limit"))?;
            put_u16(&mut body, n);
            for (value, generation) in predictions {
                put_f64(&mut body, *value);
                put_u64(&mut body, *generation);
            }
            RESP_VALUES
        }
        Response::Snapshot { bytes } => {
            put_bytes(&mut body, bytes)?;
            RESP_SNAPSHOT
        }
        Response::Restored { generation } => {
            put_u64(&mut body, *generation);
            RESP_RESTORED
        }
        Response::ShardJoined { id, moved } => {
            put_u32(&mut body, *id);
            put_u64(&mut body, *moved);
            RESP_SHARD_JOINED
        }
        Response::ShardLeft { removed, drained } => {
            body.push(u8::from(*removed));
            put_u64(&mut body, *drained);
            RESP_SHARD_LEFT
        }
        Response::Error { message } => {
            // Truncation keeps the byte length well under put_string's
            // u16 limit even for 4-byte code points.
            let truncated: String = message.chars().take(512).collect();
            put_string(&mut body, &truncated)?;
            RESP_ERROR
        }
    };
    write_frame(writer, opcode, &body)
}

/// Reads one response frame; `Ok(None)` means the server closed the
/// connection cleanly between frames.
///
/// # Errors
///
/// Returns `io::Error` on transport failure or a malformed frame.
pub fn read_response(reader: &mut impl Read) -> io::Result<Option<Response>> {
    let Some((opcode, body)) = read_frame(reader)? else {
        return Ok(None);
    };
    let mut cursor = Cursor::new(&body);
    let response = match opcode {
        RESP_LABEL => Response::Label {
            label: cursor.u32()?,
            generation: cursor.u64()?,
        },
        RESP_LABELS => {
            let n = cursor.u16()? as usize;
            let mut predictions = Vec::with_capacity(n);
            for _ in 0..n {
                predictions.push((cursor.u32()?, cursor.u64()?));
            }
            Response::Labels { predictions }
        }
        RESP_INSERTED => Response::Inserted {
            replaced: cursor.take(1)?[0] != 0,
        },
        RESP_REMOVED => Response::Removed {
            removed: cursor.take(1)?[0] != 0,
        },
        RESP_FIT_ACK => Response::FitAck,
        RESP_REFRESHED => Response::Refreshed {
            generation: cursor.u64()?,
        },
        RESP_SHARD_ADDED => Response::ShardAdded { id: cursor.u32()? },
        RESP_SHARD_REMOVED => Response::ShardRemoved {
            removed: cursor.take(1)?[0] != 0,
        },
        RESP_STATS => Response::Stats(read_stats(&mut cursor)?),
        RESP_VALUE => Response::Value {
            value: cursor.f64()?,
            generation: cursor.u64()?,
        },
        RESP_PONG => Response::Pong {
            generation: cursor.u64()?,
            uptime_us: cursor.u64()?,
        },
        RESP_VALUES => {
            let n = cursor.u16()? as usize;
            let mut predictions = Vec::with_capacity(n);
            for _ in 0..n {
                predictions.push((cursor.f64()?, cursor.u64()?));
            }
            Response::Values { predictions }
        }
        RESP_SNAPSHOT => Response::Snapshot {
            bytes: cursor.bytes()?,
        },
        RESP_RESTORED => Response::Restored {
            generation: cursor.u64()?,
        },
        RESP_SHARD_JOINED => Response::ShardJoined {
            id: cursor.u32()?,
            moved: cursor.u64()?,
        },
        RESP_SHARD_LEFT => Response::ShardLeft {
            removed: cursor.take(1)?[0] != 0,
            drained: cursor.u64()?,
        },
        RESP_ERROR => {
            let len = cursor.u16()? as usize;
            let bytes = cursor.take(len)?;
            Response::Error {
                message: String::from_utf8_lossy(bytes).into_owned(),
            }
        }
        other => return Err(invalid(format!("unknown response opcode {other}"))),
    };
    cursor.finish()?;
    Ok(Some(response))
}

fn put_stats(body: &mut Vec<u8>, stats: &RuntimeStats) -> io::Result<()> {
    put_u64(body, stats.generation);
    put_u64(body, stats.uptime_us);
    // Shard identity (v3): configured name + ring position count.
    put_string(body, &stats.name)?;
    put_u64(body, stats.ring_positions);
    put_u64(body, stats.dim);
    put_u64(body, stats.classes);
    let shards =
        u16::try_from(stats.shard_loads.len()).map_err(|_| invalid("shard count exceeds u16"))?;
    put_u16(body, shards);
    for (id, len) in &stats.shard_loads {
        put_u64(body, *id);
        put_u64(body, *len);
    }
    put_u64(body, stats.keys);
    match stats.last_remap_fraction {
        Some(fraction) => {
            body.push(1);
            put_f64(body, fraction);
        }
        None => body.push(0),
    }
    let metrics = &stats.metrics;
    put_u64(body, metrics.queue_depth);
    put_u64(body, metrics.requests);
    put_u64(body, metrics.batches);
    put_u64(body, metrics.inserts);
    put_u64(body, metrics.removes);
    put_u64(body, metrics.fits);
    put_f64(body, metrics.mean_batch_size);
    let bins = u16::try_from(metrics.batch_sizes.len())
        .map_err(|_| invalid("histogram bin count exceeds u16"))?;
    put_u16(body, bins);
    for count in &metrics.batch_sizes {
        put_u64(body, *count);
    }
    put_f64(body, metrics.latency_us_p50);
    put_f64(body, metrics.latency_us_p95);
    put_f64(body, metrics.latency_us_p99);
    Ok(())
}

fn read_stats(cursor: &mut Cursor<'_>) -> io::Result<RuntimeStats> {
    let generation = cursor.u64()?;
    let uptime_us = cursor.u64()?;
    let name = cursor.string()?;
    let ring_positions = cursor.u64()?;
    let dim = cursor.u64()?;
    let classes = cursor.u64()?;
    let shards = cursor.u16()? as usize;
    let mut shard_loads = Vec::with_capacity(shards);
    for _ in 0..shards {
        shard_loads.push((cursor.u64()?, cursor.u64()?));
    }
    let keys = cursor.u64()?;
    let last_remap_fraction = match cursor.take(1)?[0] {
        0 => None,
        _ => Some(cursor.f64()?),
    };
    let queue_depth = cursor.u64()?;
    let requests = cursor.u64()?;
    let batches = cursor.u64()?;
    let inserts = cursor.u64()?;
    let removes = cursor.u64()?;
    let fits = cursor.u64()?;
    let mean_batch_size = cursor.f64()?;
    let bins = cursor.u16()? as usize;
    let mut batch_sizes = Vec::with_capacity(bins);
    for _ in 0..bins {
        batch_sizes.push(cursor.u64()?);
    }
    Ok(RuntimeStats {
        generation,
        uptime_us,
        name,
        ring_positions,
        dim,
        classes,
        shard_loads,
        keys,
        last_remap_fraction,
        metrics: MetricsSnapshot {
            queue_depth,
            requests,
            batches,
            inserts,
            removes,
            fits,
            mean_batch_size,
            batch_sizes,
            latency_us_p50: cursor.f64()?,
            latency_us_p95: cursor.f64()?,
            latency_us_p99: cursor.f64()?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn hv(dim: usize, seed: u64) -> BinaryHypervector {
        let mut rng = StdRng::seed_from_u64(seed);
        BinaryHypervector::random(dim, &mut rng)
    }

    fn round_trip_request(request: Request) {
        let mut buffer = Vec::new();
        write_request(&mut buffer, &request).unwrap();
        let decoded = read_request(&mut buffer.as_slice()).unwrap().unwrap();
        assert_eq!(decoded, request);
    }

    fn round_trip_response(response: Response) {
        let mut buffer = Vec::new();
        write_response(&mut buffer, &response).unwrap();
        let decoded = read_response(&mut buffer.as_slice()).unwrap().unwrap();
        assert_eq!(decoded, response);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Predict {
            key: "user-1".into(),
            hv: hv(100, 1),
        });
        round_trip_request(Request::PredictBatch {
            pairs: (0..5).map(|i| (format!("k{i}"), hv(64, i))).collect(),
        });
        round_trip_request(Request::PredictBatch { pairs: Vec::new() });
        round_trip_request(Request::Insert {
            key: String::new(),
            hv: hv(65, 9),
        });
        round_trip_request(Request::Remove {
            key: "κλειδί".into(),
        });
        round_trip_request(Request::Fit {
            label: 3,
            hv: hv(1, 2),
        });
        round_trip_request(Request::Refresh);
        round_trip_request(Request::AddShard);
        round_trip_request(Request::RemoveShard { id: 7 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::PredictValue {
            key: "station-7".into(),
            hv: hv(100, 4),
        });
        round_trip_request(Request::FitValue {
            value: -12.75,
            hv: hv(129, 5),
        });
        round_trip_request(Request::Ping);
        round_trip_request(Request::PredictValueBatch {
            pairs: (0..5).map(|i| (format!("s{i}"), hv(64, i))).collect(),
        });
        round_trip_request(Request::PredictValueBatch { pairs: Vec::new() });
        round_trip_request(Request::Snapshot);
        round_trip_request(Request::Restore {
            snapshot: vec![0x48, 0x44, 0x43, 0x53, 0xFF],
        });
        round_trip_request(Request::Restore {
            snapshot: Vec::new(),
        });
        round_trip_request(Request::ShardJoin {
            addr: "127.0.0.1:7117".into(),
        });
        round_trip_request(Request::ShardLeave { id: 2 });
    }

    #[test]
    fn every_response_round_trips() {
        round_trip_response(Response::Label {
            label: 4,
            generation: 9,
        });
        round_trip_response(Response::Labels {
            predictions: vec![(0, 1), (3, 1), (2, 2)],
        });
        round_trip_response(Response::Inserted { replaced: true });
        round_trip_response(Response::Removed { removed: false });
        round_trip_response(Response::FitAck);
        round_trip_response(Response::Refreshed { generation: 17 });
        round_trip_response(Response::ShardAdded { id: 5 });
        round_trip_response(Response::ShardRemoved { removed: true });
        round_trip_response(Response::Value {
            value: 23.5,
            generation: 3,
        });
        round_trip_response(Response::Pong {
            generation: 12,
            uptime_us: 9_876_543,
        });
        round_trip_response(Response::Values {
            predictions: vec![(0.5, 1), (-3.25, 1), (12.0, 2)],
        });
        round_trip_response(Response::Snapshot {
            bytes: vec![0x48, 0x44, 0x43, 0x53, 0x00, 0x01],
        });
        round_trip_response(Response::Restored { generation: 4 });
        round_trip_response(Response::ShardJoined { id: 3, moved: 17 });
        round_trip_response(Response::ShardLeft {
            removed: true,
            drained: 9,
        });
        round_trip_response(Response::Error {
            message: "dimension mismatch: expected 512, found 64".into(),
        });
        round_trip_response(Response::Stats(RuntimeStats {
            generation: 3,
            uptime_us: 120_000,
            name: "shard-1".into(),
            ring_positions: 128,
            dim: 512,
            classes: 4,
            shard_loads: vec![(0, 10), (1, 0), (5, 3)],
            keys: 13,
            last_remap_fraction: Some(0.25),
            metrics: MetricsSnapshot {
                queue_depth: 2,
                requests: 100,
                batches: 9,
                inserts: 13,
                removes: 1,
                fits: 40,
                mean_batch_size: 100.0 / 9.0,
                batch_sizes: vec![1, 0, 8],
                latency_us_p50: 120.0,
                latency_us_p95: 400.0,
                latency_us_p99: 900.0,
            },
        }));
        round_trip_response(Response::Stats(RuntimeStats {
            generation: 0,
            uptime_us: 0,
            name: String::new(),
            ring_positions: 0,
            dim: 64,
            classes: 2,
            shard_loads: Vec::new(),
            keys: 0,
            last_remap_fraction: None,
            metrics: MetricsSnapshot {
                queue_depth: 0,
                requests: 0,
                batches: 0,
                inserts: 0,
                removes: 0,
                fits: 0,
                mean_batch_size: 0.0,
                batch_sizes: Vec::new(),
                latency_us_p50: 0.0,
                latency_us_p95: 0.0,
                latency_us_p99: 0.0,
            },
        }));
    }

    #[test]
    fn multiple_frames_stream_in_order() {
        let mut buffer = Vec::new();
        write_request(&mut buffer, &Request::Stats).unwrap();
        write_request(&mut buffer, &Request::Remove { key: "x".into() }).unwrap();
        let mut reader = buffer.as_slice();
        assert_eq!(read_request(&mut reader).unwrap(), Some(Request::Stats));
        assert_eq!(
            read_request(&mut reader).unwrap(),
            Some(Request::Remove { key: "x".into() })
        );
        assert_eq!(read_request(&mut reader).unwrap(), None, "clean EOF");
    }

    #[test]
    fn malformed_frames_are_rejected_not_trusted() {
        // Truncated mid-frame.
        let mut buffer = Vec::new();
        write_request(
            &mut buffer,
            &Request::Predict {
                key: "k".into(),
                hv: hv(128, 3),
            },
        )
        .unwrap();
        buffer.truncate(buffer.len() - 1);
        assert!(read_request(&mut buffer.as_slice()).is_err());

        // Oversized length prefix.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        let mut framed = huge.to_vec();
        framed.extend_from_slice(&[PROTOCOL_VERSION, 1]);
        assert!(read_request(&mut framed.as_slice()).is_err());

        // Wrong version (the old v1 framing is refused, not misread).
        let mut wrong = vec![0, 0, 0, 2, 1, 1];
        assert!(read_request(&mut wrong.as_slice()).is_err());
        wrong[4] = PROTOCOL_VERSION;
        wrong[5] = 200; // unknown opcode
        assert!(read_request(&mut wrong.as_slice()).is_err());

        // Dirty tail bits beyond the dimension.
        let mut body = Vec::new();
        put_string(&mut body, "k").unwrap();
        put_u32(&mut body, 65);
        put_u64(&mut body, 0);
        put_u64(&mut body, u64::MAX);
        let mut framed = Vec::new();
        write_frame(&mut framed, 1, &body).unwrap();
        assert!(read_request(&mut framed.as_slice()).is_err());

        // Trailing garbage after a well-formed body.
        let mut body = Vec::new();
        put_u32(&mut body, 7);
        body.push(0xAB);
        let mut framed = Vec::new();
        write_frame(&mut framed, 8, &body).unwrap();
        assert!(read_request(&mut framed.as_slice()).is_err());
    }

    /// Pins the [`MAX_SNAPSHOT_BYTES`] arithmetic: a snapshot stream at
    /// exactly the cap still encodes as one frame, one byte more does
    /// not — which is why servers must check the cap *before* encoding
    /// (an encode failure here would drop the connection).
    #[test]
    fn snapshot_frame_cap_is_exact() {
        let at_cap = Response::Snapshot {
            bytes: vec![0u8; MAX_SNAPSHOT_BYTES],
        };
        let mut buffer = Vec::new();
        write_response(&mut buffer, &at_cap).unwrap();
        assert!(matches!(
            read_response(&mut buffer.as_slice()).unwrap().unwrap(),
            Response::Snapshot { bytes } if bytes.len() == MAX_SNAPSHOT_BYTES
        ));

        let over_cap = Response::Snapshot {
            bytes: vec![0u8; MAX_SNAPSHOT_BYTES + 1],
        };
        assert!(write_response(&mut Vec::new(), &over_cap).is_err());
    }

    #[test]
    fn key_length_is_bounded() {
        let request = Request::Remove {
            key: "x".repeat(70_000),
        };
        assert!(write_request(&mut Vec::new(), &request).is_err());
    }
}
