//! Sharded serving over the hyperdimensional consistent-hash ring.
//!
//! A [`ShardedModel`] partitions the *stateful* half of a serving fleet —
//! per-key item memories — across shards placed on an
//! [`HdcHashRing`], while the *stateless* half — the finalized class
//! vectors — is replicated onto every shard. Query batches are routed by
//! key to their owning shards, predicted per shard with the batched
//! parallel `predict_rows` path, and merged back in input order.
//!
//! Because the classifier is replicated and deterministic, predictions are
//! **bit-identical** to the unsharded [`Model`](crate::Model) for *any*
//! shard count and any churn history — resharding only moves keys, never
//! answers. And because the ring's positions are circular hypervectors,
//! [`add_shard`](ShardedModel::add_shard)/[`remove_shard`](ShardedModel::remove_shard)
//! remap only the expected `1/n` fraction of keys, degrading gracefully
//! exactly as in the scheme circular hypervectors were invented for
//! (Heddes et al., DAC 2022).

use std::collections::HashMap;
use std::hash::Hash;

use hdc_core::{BinaryHypervector, HdcError, HypervectorBatch, ItemMemory};
use hdc_hash::HdcHashRing;
use hdc_learn::{CentroidClassifier, RegressionModel};
use rand::{rngs::StdRng, SeedableRng};

use crate::Model;

/// The replicated, task-specific half of a serving fleet: the finalized
/// model every shard answers queries with. Classification fleets replicate
/// a [`CentroidClassifier`]; regression fleets replicate a
/// [`RegressionModel`] (integer readout). Either way the head is
/// *stateless* at serving time — swapping it (online-learning generation
/// publishes) is one fleet-wide assignment, and routing only ever decides
/// *where* a query is answered, never *what* the answer is.
#[derive(Debug, Clone)]
pub enum Head {
    /// Nearest-class-vector classification.
    Classes(CentroidClassifier),
    /// Integer-readout associative regression.
    Values(RegressionModel),
}

impl Head {
    /// Query dimensionality `d` this head answers.
    #[must_use]
    pub fn dim(&self) -> usize {
        match self {
            Head::Classes(classifier) => classifier.class_vector(0).dim(),
            Head::Values(model) => model.label_encoder().dim(),
        }
    }

    /// The task family name, for diagnostics.
    #[must_use]
    pub fn task_name(&self) -> &'static str {
        match self {
            Head::Classes(_) => "classification",
            Head::Values(_) => "regression",
        }
    }
}

/// Ring geometry of a [`ShardedModel`]: how many sectors the consistent-
/// hash circle is quantized into, the dimensionality of the ring's own
/// (routing-only) hypervectors, and how many virtual replicas each shard
/// occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Number of ring sectors (circular basis size).
    pub positions: usize,
    /// Dimensionality of the ring's position hypervectors. Independent of
    /// the model dimensionality — routing only compares ring vectors.
    pub dim: usize,
    /// Virtual nodes per shard (more replicas smooth the load).
    pub replicas: usize,
}

impl Default for RingConfig {
    /// 128 sectors of 1,024-bit hypervectors, 4 virtual replicas per shard.
    fn default() -> Self {
        Self {
            positions: 128,
            dim: 1_024,
            replicas: 4,
        }
    }
}

/// A serving fleet for one trained classifier: replicated class vectors,
/// sharded item memories, consistent-hash routing.
///
/// `K` is the key type of the sharded item memories (stored per-key
/// hypervectors, e.g. cached encodings or per-entity profiles); routing
/// accepts any `Hash` key type.
///
/// ```
/// use hdc_serve::{Basis, Enc, Pipeline, Radians, ShardedModel};
///
/// let mut model = Pipeline::builder(4_096)
///     .seed(11)
///     .basis(Basis::Circular { m: 24, r: 0.0 })
///     .encoder(Enc::angle())
///     .build()?;
/// let hours: Vec<Radians> = (0..24).map(|h| Radians::periodic(h as f64, 24.0)).collect();
/// let labels: Vec<usize> = (0..24).map(|h| usize::from(h >= 12)).collect();
/// model.fit_batch(&hours, &labels)?;
///
/// // Serve the same classifier from three shards.
/// let fleet: ShardedModel<String> = ShardedModel::from_model(&model, 3, 0)?;
/// let keys: Vec<String> = (0..24).map(|i| format!("sensor-{i}")).collect();
/// let queries = model.encode_batch(&hours);
/// let sharded = fleet.predict_batch(&keys, &queries)?;
/// // Routing never changes answers: bit-identical to the unsharded model.
/// assert_eq!(sharded, model.predict_encoded(&queries));
/// # Ok::<(), hdc_serve::HdcError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedModel<K: Hash + Eq + Clone = u64> {
    head: Head,
    dim: usize,
    ring: HdcHashRing<usize>,
    shards: Vec<(usize, ItemMemory<K>)>,
    next_shard_id: usize,
    last_remap: Option<(usize, usize)>,
}

impl<K: Hash + Eq + Clone> ShardedModel<K> {
    /// Creates a classification fleet of `shards` shards serving
    /// `classifier` over `dim`-bit queries, with the default
    /// [`RingConfig`]. The ring's circular basis is drawn from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `shards == 0` (and
    /// propagates invalid ring geometry).
    pub fn new(
        classifier: CentroidClassifier,
        dim: usize,
        shards: usize,
        seed: u64,
    ) -> Result<Self, HdcError> {
        Self::with_head(
            Head::Classes(classifier),
            dim,
            shards,
            RingConfig::default(),
            seed,
        )
    }

    /// [`new`](Self::new) with an explicit ring geometry.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `shards == 0` or the ring geometry is
    /// invalid.
    pub fn with_ring(
        classifier: CentroidClassifier,
        dim: usize,
        shards: usize,
        config: RingConfig,
        seed: u64,
    ) -> Result<Self, HdcError> {
        Self::with_head(Head::Classes(classifier), dim, shards, config, seed)
    }

    /// The task-polymorphic constructor every other constructor funnels
    /// into: a fleet serving any [`Head`] (classification *or* regression)
    /// over `dim`-bit queries.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError`] if `shards == 0`, `dim == 0` or the ring
    /// geometry is invalid.
    pub fn with_head(
        head: Head,
        dim: usize,
        shards: usize,
        config: RingConfig,
        seed: u64,
    ) -> Result<Self, HdcError> {
        if shards == 0 {
            return Err(HdcError::InvalidBasisSize {
                requested: 0,
                minimum: 1,
            });
        }
        if dim == 0 {
            return Err(HdcError::InvalidDimension(dim));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ring =
            HdcHashRing::with_replicas(config.positions, config.dim, config.replicas, &mut rng)?;
        let mut shard_memories = Vec::with_capacity(shards);
        for id in 0..shards {
            ring.add_node(id);
            shard_memories.push((id, ItemMemory::new()));
        }
        Ok(Self {
            head,
            dim,
            ring,
            shards: shard_memories,
            next_shard_id: shards,
            last_remap: None,
        })
    }

    /// Builds a fleet straight from a trained [`Model`], replicating its
    /// finalized head (classifier or regressor, per the model's task).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidBasisSize`] if `shards == 0`.
    pub fn from_model<X: ?Sized + Sync>(
        model: &Model<X>,
        shards: usize,
        seed: u64,
    ) -> Result<Self, HdcError> {
        let head = if model.task().is_classification() {
            Head::Classes(model.classifier().clone())
        } else {
            Head::Values(model.regressor().clone())
        };
        Self::with_head(head, model.dim(), shards, RingConfig::default(), seed)
    }

    /// Number of live shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The ids of the live shards, in creation order.
    #[must_use]
    pub fn shard_ids(&self) -> Vec<usize> {
        self.shards.iter().map(|(id, _)| *id).collect()
    }

    /// Query dimensionality `d`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes of the replicated classifier.
    ///
    /// # Panics
    ///
    /// Panics on a regression fleet (which has no class set).
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classifier().classes()
    }

    /// The replicated head (classifier or regressor).
    #[must_use]
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// The replicated classifier.
    ///
    /// # Panics
    ///
    /// Panics on a regression fleet — use [`regressor`](Self::regressor).
    #[must_use]
    pub fn classifier(&self) -> &CentroidClassifier {
        match &self.head {
            Head::Classes(classifier) => classifier,
            Head::Values(_) => {
                panic!("classifier() requires a classification fleet, found regression")
            }
        }
    }

    /// The replicated regression model.
    ///
    /// # Panics
    ///
    /// Panics on a classification fleet — use
    /// [`classifier`](Self::classifier).
    #[must_use]
    pub fn regressor(&self) -> &RegressionModel {
        match &self.head {
            Head::Values(model) => model,
            Head::Classes(_) => {
                panic!("regressor() requires a regression fleet, found classification")
            }
        }
    }

    /// Swaps in a new replicated head across every shard at once — the hook
    /// versioned online learning publishes generations through. Because the
    /// head is replicated (not sharded), one swap is atomic for the whole
    /// fleet: every query batch served after this call sees the new
    /// generation, none sees a mix.
    ///
    /// The class *count* (or label table) may change between generations;
    /// the dimensionality may not.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the new head's
    /// dimensionality differs from the fleet's.
    pub fn set_head(&mut self, head: Head) -> Result<(), HdcError> {
        let found = head.dim();
        if found != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                found,
            });
        }
        self.head = head;
        Ok(())
    }

    /// [`set_head`](Self::set_head) for a classification generation.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the new class-vectors'
    /// dimensionality differs from the fleet's.
    pub fn set_classifier(&mut self, classifier: CentroidClassifier) -> Result<(), HdcError> {
        self.set_head(Head::Classes(classifier))
    }

    /// All stored `(key, hypervector)` entries across every shard, in
    /// shard-creation order — what a runtime snapshot captures before
    /// shutdown.
    pub fn entries(&self) -> impl Iterator<Item = (&K, &BinaryHypervector)> {
        self.shards.iter().flat_map(|(_, memory)| memory.iter())
    }

    /// Per-shard entry counts, in creation order — the load signal serving
    /// metrics export.
    #[must_use]
    pub fn shard_loads(&self) -> Vec<(usize, usize)> {
        self.shards
            .iter()
            .map(|(id, memory)| (*id, memory.len()))
            .collect()
    }

    /// The fraction of stored entries moved by the most recent
    /// [`add_shard`](Self::add_shard)/[`remove_shard`](Self::remove_shard)
    /// rebalance, or `None` if the fleet has never resharded (or held no
    /// entries when it did). Consistent hashing promises this stays near
    /// `1/n`; metrics surface it so a misbehaving ring is visible.
    #[must_use]
    pub fn last_remap_fraction(&self) -> Option<f64> {
        self.last_remap
            .map(|(moved, total)| moved as f64 / total.max(1) as f64)
    }

    /// Total number of stored item-memory entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|(_, memory)| memory.len()).sum()
    }

    /// `true` if no shard stores any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries stored on one shard, or `None` for an unknown id.
    #[must_use]
    pub fn shard_len(&self, id: usize) -> Option<usize> {
        self.shards
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, memory)| memory.len())
    }

    /// The shard a key routes to (most similar ring position).
    #[must_use]
    pub fn shard_of<Q: Hash>(&self, key: &Q) -> usize {
        *self
            .ring
            .lookup(key)
            .expect("a sharded model always keeps at least one shard")
    }

    /// Adds a shard, rebalancing: every stored entry whose key now routes
    /// to the new shard migrates there (and nothing else moves — the
    /// consistent-hashing guarantee). Returns the new shard's id.
    pub fn add_shard(&mut self) -> usize {
        let id = self.next_shard_id;
        self.next_shard_id += 1;
        self.ring.add_node(id);
        self.shards.push((id, ItemMemory::new()));
        let moved = self.rebalance();
        let total = self.len();
        if total > 0 {
            self.last_remap = Some((moved, total));
        }
        id
    }

    /// Removes a shard, redistributing its stored entries to their new
    /// owners. Returns `false` (and does nothing) for an unknown id or if
    /// this is the last shard — a fleet never drops its only copy of the
    /// sharded state.
    pub fn remove_shard(&mut self, id: usize) -> bool {
        if self.shards.len() <= 1 {
            return false;
        }
        let Some(position) = self.shards.iter().position(|(sid, _)| *sid == id) else {
            return false;
        };
        self.ring.remove_node(&id);
        let (_, memory) = self.shards.remove(position);
        let moved = memory.len();
        for (key, hv) in memory.into_entries() {
            self.insert(key, hv);
        }
        let total = self.len();
        if total > 0 {
            self.last_remap = Some((moved, total));
        }
        true
    }

    /// Moves every entry that no longer lives on its owning shard, returning
    /// how many moved. Called by [`add_shard`](Self::add_shard); idempotent.
    fn rebalance(&mut self) -> usize {
        let mut moves: Vec<(K, BinaryHypervector)> = Vec::new();
        for index in 0..self.shards.len() {
            let id = self.shards[index].0;
            let ring = &self.ring;
            let misplaced: Vec<K> = self.shards[index]
                .1
                .iter()
                .filter(|(key, _)| ring.lookup(*key) != Some(&id))
                .map(|(key, _)| key.clone())
                .collect();
            for key in misplaced {
                let hv = self.shards[index]
                    .1
                    .remove(&key)
                    .expect("key was just listed");
                moves.push((key, hv));
            }
        }
        let moved = moves.len();
        for (key, hv) in moves {
            self.insert(key, hv);
        }
        moved
    }

    /// Stores `hv` under `key` in the owning shard's item memory, returning
    /// the previous entry if the key was already stored (possibly on a
    /// different shard — the old copy is dropped from there).
    ///
    /// # Panics
    ///
    /// Panics if `hv`'s dimensionality differs from the fleet's.
    pub fn insert(&mut self, key: K, hv: BinaryHypervector) -> Option<BinaryHypervector> {
        assert_eq!(
            self.dim,
            hv.dim(),
            "dimension mismatch: expected {}, found {}",
            self.dim,
            hv.dim()
        );
        let owner = self.shard_of(&key);
        let mut previous = None;
        for (id, memory) in &mut self.shards {
            if *id != owner {
                if let Some(old) = memory.remove(&key) {
                    previous = Some(old);
                }
            }
        }
        let (_, memory) = self
            .shards
            .iter_mut()
            .find(|(id, _)| *id == owner)
            .expect("owner is a live shard");
        memory.insert(key, hv).or(previous)
    }

    /// Removes a stored entry from its owning shard, returning it if the
    /// key was stored.
    pub fn remove(&mut self, key: &K) -> Option<BinaryHypervector> {
        let owner = self.shard_of(key);
        self.shards
            .iter_mut()
            .find(|(id, _)| *id == owner)
            .and_then(|(_, memory)| memory.remove(key))
    }

    /// Looks up a stored entry on its owning shard.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&BinaryHypervector> {
        let owner = self.shard_of(key);
        self.shards
            .iter()
            .find(|(id, _)| *id == owner)
            .and_then(|(_, memory)| memory.get(key))
    }

    /// Predicts one encoded query (served by whichever shard — the head is
    /// replicated, so no routing is needed for a single stateless
    /// prediction).
    ///
    /// # Panics
    ///
    /// Panics on a regression fleet, or if the query's dimensionality
    /// differs from the fleet's.
    #[must_use]
    pub fn predict(&self, query: &BinaryHypervector) -> usize {
        self.classifier().predict(query)
    }

    /// Predicts one encoded query's real-valued label.
    ///
    /// # Panics
    ///
    /// Panics on a classification fleet, or if the query's dimensionality
    /// differs from the fleet's.
    #[must_use]
    pub fn predict_value(&self, query: &BinaryHypervector) -> f64 {
        self.regressor().predict(query)
    }

    /// Routes a keyed batch: for each shard (in creation order) the input
    /// row indices it serves, in input order. Empty groups are included so
    /// load imbalance is visible.
    #[must_use]
    pub fn route<Q: Hash>(&self, keys: &[Q]) -> Vec<(usize, Vec<usize>)> {
        let index_of: HashMap<usize, usize> = self
            .shards
            .iter()
            .enumerate()
            .map(|(index, (id, _))| (*id, index))
            .collect();
        let mut groups: Vec<(usize, Vec<usize>)> = self
            .shards
            .iter()
            .map(|(id, _)| (*id, Vec::new()))
            .collect();
        for (row, key) in keys.iter().enumerate() {
            let owner = self.shard_of(key);
            groups[index_of[&owner]].1.push(row);
        }
        groups
    }

    /// Serves a keyed query batch: routes each row to its owning shard,
    /// runs the batched `predict_rows` path per shard across the worker
    /// pool, and merges the labels back in input order.
    ///
    /// Bit-identical to the unsharded
    /// [`Model::predict_encoded`](crate::Model::predict_encoded) for any
    /// shard count: routing decides *where* a query is answered, never
    /// *what* the answer is.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a regression fleet,
    /// [`HdcError::BatchLengthMismatch`] if `keys` and `queries` disagree
    /// in length and [`HdcError::DimensionMismatch`] if the batch
    /// dimensionality differs from the fleet's.
    pub fn predict_batch<Q: Hash + Sync>(
        &self,
        keys: &[Q],
        queries: &HypervectorBatch,
    ) -> Result<Vec<usize>, HdcError> {
        let Head::Classes(classifier) = &self.head else {
            return Err(HdcError::TaskMismatch {
                expected: "classification",
                found: self.head.task_name(),
            });
        };
        self.predict_routed(keys, queries, |sub| classifier.predict_rows(sub))
    }

    /// Serves a keyed **value** query batch — the regression twin of
    /// [`predict_batch`](Self::predict_batch): route per shard, batched
    /// integer-readout `predict_rows` per shard on the worker pool, merge
    /// in input order. Bit-identical to the unsharded
    /// [`Model::predict_values_encoded`](crate::Model::predict_values_encoded)
    /// for any shard count.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::TaskMismatch`] on a classification fleet,
    /// [`HdcError::BatchLengthMismatch`] if `keys` and `queries` disagree
    /// in length and [`HdcError::DimensionMismatch`] if the batch
    /// dimensionality differs from the fleet's.
    pub fn predict_values<Q: Hash + Sync>(
        &self,
        keys: &[Q],
        queries: &HypervectorBatch,
    ) -> Result<Vec<f64>, HdcError> {
        let Head::Values(model) = &self.head else {
            return Err(HdcError::TaskMismatch {
                expected: "regression",
                found: self.head.task_name(),
            });
        };
        self.predict_routed(keys, queries, |sub| model.predict_rows(sub))
    }

    /// The shared routed-serving path behind both prediction types: route
    /// rows to shards, ship each shard its own contiguous sub-batch (what a
    /// real fleet would put on the wire), run the head's batched predictor
    /// per shard fanned out across the pool, and merge the answers back in
    /// input order. Workers write disjoint groups and the merge is by input
    /// order, so the output is deterministic regardless of scheduling.
    fn predict_routed<Q: Hash + Sync, T: Default + Clone + Send>(
        &self,
        keys: &[Q],
        queries: &HypervectorBatch,
        predict: impl Fn(&HypervectorBatch) -> Vec<T> + Sync,
    ) -> Result<Vec<T>, HdcError> {
        if keys.len() != queries.len() {
            return Err(HdcError::BatchLengthMismatch {
                rows: queries.len(),
                labels: keys.len(),
            });
        }
        if !queries.is_empty() && queries.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                expected: self.dim,
                found: queries.dim(),
            });
        }
        let groups = self.route(keys);
        let sub_batches: Vec<HypervectorBatch> = groups
            .iter()
            .map(|(_, rows)| {
                let mut sub = HypervectorBatch::with_capacity(self.dim, rows.len());
                for &row in rows {
                    sub.push_row(queries.row(row));
                }
                sub
            })
            .collect();
        let per_shard: Vec<Vec<T>> = minipool::par_map_indexed(&sub_batches, |_, sub| predict(sub));
        let mut merged = vec![T::default(); queries.len()];
        for ((_, rows), answers) in groups.iter().zip(&per_shard) {
            for (&row, answer) in rows.iter().zip(answers) {
                merged[row] = answer.clone();
            }
        }
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn classifier(rng: &mut StdRng, classes: usize, dim: usize) -> CentroidClassifier {
        let protos: Vec<BinaryHypervector> = (0..classes)
            .map(|_| BinaryHypervector::random(dim, rng))
            .collect();
        CentroidClassifier::from_class_vectors(protos).unwrap()
    }

    fn fleet(shards: usize) -> (ShardedModel<String>, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let model = ShardedModel::new(classifier(&mut rng, 4, 1_024), 1_024, shards, 9).unwrap();
        (model, rng)
    }

    #[test]
    fn construction_and_accessors() {
        let (fleet, _) = fleet(3);
        assert_eq!(fleet.shard_count(), 3);
        assert_eq!(fleet.shard_ids(), vec![0, 1, 2]);
        assert_eq!(fleet.dim(), 1_024);
        assert_eq!(fleet.classes(), 4);
        assert!(fleet.is_empty());
        assert_eq!(fleet.shard_len(1), Some(0));
        assert_eq!(fleet.shard_len(9), None);
        assert!(ShardedModel::<u64>::new(fleet.classifier().clone(), 1_024, 0, 0).is_err());
        assert!(ShardedModel::<u64>::new(fleet.classifier().clone(), 0, 2, 0).is_err());
    }

    #[test]
    fn predict_batch_is_bit_identical_to_replicated_classifier() {
        let (fleet, mut rng) = fleet(4);
        let queries: Vec<BinaryHypervector> = (0..50)
            .map(|_| BinaryHypervector::random(1_024, &mut rng))
            .collect();
        let keys: Vec<String> = (0..50).map(|i| format!("key-{i}")).collect();
        let batch = HypervectorBatch::from_vectors(&queries).unwrap();
        let sharded = fleet.predict_batch(&keys, &batch).unwrap();
        assert_eq!(sharded, fleet.classifier().predict_rows(&batch));
        for (query, label) in queries.iter().zip(&sharded) {
            assert_eq!(fleet.predict(query), *label);
        }
    }

    #[test]
    fn predict_batch_validates_inputs() {
        let (fleet, mut rng) = fleet(2);
        let batch =
            HypervectorBatch::from_vectors(&[BinaryHypervector::random(1_024, &mut rng)]).unwrap();
        assert!(matches!(
            fleet.predict_batch(&["a", "b"], &batch),
            Err(HdcError::BatchLengthMismatch { rows: 1, labels: 2 })
        ));
        let wrong =
            HypervectorBatch::from_vectors(&[BinaryHypervector::random(512, &mut rng)]).unwrap();
        assert!(matches!(
            fleet.predict_batch(&["a"], &wrong),
            Err(HdcError::DimensionMismatch { .. })
        ));
        let empty = HypervectorBatch::new(1_024);
        assert_eq!(
            fleet.predict_batch::<&str>(&[], &empty).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn item_memory_is_sharded_and_rebalances() {
        let (mut fleet, mut rng) = fleet(3);
        let entries: Vec<(String, BinaryHypervector)> = (0..60)
            .map(|i| {
                (
                    format!("item-{i}"),
                    BinaryHypervector::random(1_024, &mut rng),
                )
            })
            .collect();
        for (key, hv) in &entries {
            assert!(fleet.insert(key.clone(), hv.clone()).is_none());
        }
        assert_eq!(fleet.len(), 60);
        // Every entry lives exactly on its routed shard.
        for (key, hv) in &entries {
            assert_eq!(fleet.get(key), Some(hv));
            let owner = fleet.shard_of(key);
            assert!(fleet.shard_len(owner).unwrap() > 0);
        }

        // Growing the fleet moves only the keys the ring reassigns…
        let owners_before: Vec<usize> = entries.iter().map(|(k, _)| fleet.shard_of(k)).collect();
        let new_shard = fleet.add_shard();
        let mut moved = 0;
        for ((key, hv), owner_before) in entries.iter().zip(&owners_before) {
            let owner_after = fleet.shard_of(key);
            if owner_after != *owner_before {
                assert_eq!(owner_after, new_shard, "movers must land on the new shard");
                moved += 1;
            }
            // …and no entry is ever lost or stale.
            assert_eq!(fleet.get(key), Some(hv));
        }
        assert!(moved < entries.len(), "a graceful reshard moves a fraction");
        assert_eq!(fleet.len(), 60);

        // Shrinking redistributes the removed shard's entries.
        assert!(fleet.remove_shard(new_shard));
        assert!(!fleet.remove_shard(new_shard));
        assert_eq!(fleet.len(), 60);
        for ((key, hv), owner_before) in entries.iter().zip(&owners_before) {
            assert_eq!(
                fleet.shard_of(key),
                *owner_before,
                "removal restores owners"
            );
            assert_eq!(fleet.get(key), Some(hv));
        }
    }

    #[test]
    fn last_shard_cannot_be_removed() {
        let (mut fleet, mut rng) = fleet(2);
        fleet.insert(
            "only".to_string(),
            BinaryHypervector::random(1_024, &mut rng),
        );
        assert!(fleet.remove_shard(0));
        assert!(!fleet.remove_shard(1), "the last shard must survive");
        assert_eq!(fleet.shard_count(), 1);
        assert_eq!(fleet.len(), 1);
    }

    #[test]
    fn insert_replaces_across_shards() {
        let (mut fleet, mut rng) = fleet(4);
        let first = BinaryHypervector::random(1_024, &mut rng);
        let second = BinaryHypervector::random(1_024, &mut rng);
        fleet.insert("k".to_string(), first.clone());
        let old = fleet.insert("k".to_string(), second.clone());
        assert_eq!(old, Some(first));
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.get(&"k".to_string()), Some(&second));
    }

    #[test]
    fn route_covers_every_row_once() {
        let (fleet, _) = fleet(3);
        let keys: Vec<u32> = (0..40).collect();
        let groups = fleet.route(&keys);
        assert_eq!(groups.len(), 3);
        let mut seen = vec![false; keys.len()];
        for (id, rows) in &groups {
            assert!(fleet.shard_ids().contains(id));
            for &row in rows {
                assert!(!seen[row], "row {row} routed twice");
                seen[row] = true;
                assert_eq!(fleet.shard_of(&keys[row]), *id);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn set_classifier_swaps_answers_fleet_wide() {
        let (mut fleet, mut rng) = fleet(3);
        let query = BinaryHypervector::random(1_024, &mut rng);
        let before = fleet.predict(&query);
        // A replacement classifier whose class 0 is exactly the query must
        // win; the swap changes every shard's answers at once.
        let mut vectors: Vec<BinaryHypervector> = (0..4)
            .map(|_| BinaryHypervector::random(1_024, &mut rng))
            .collect();
        vectors[0] = query.clone();
        let replacement = CentroidClassifier::from_class_vectors(vectors).unwrap();
        fleet.set_classifier(replacement).unwrap();
        assert_eq!(fleet.predict(&query), 0);
        let _ = before;
        // Dimensionality is load-bearing; a mismatched generation is refused.
        let wrong = classifier(&mut rng, 2, 512);
        assert!(matches!(
            fleet.set_classifier(wrong),
            Err(HdcError::DimensionMismatch {
                expected: 1_024,
                found: 512
            })
        ));
    }

    #[test]
    fn remove_and_loads_and_remap_fraction() {
        let (mut fleet, mut rng) = fleet(3);
        assert!(fleet.last_remap_fraction().is_none());
        let hv = BinaryHypervector::random(1_024, &mut rng);
        assert!(fleet.remove(&"ghost".to_string()).is_none());
        fleet.insert("a".to_string(), hv.clone());
        assert_eq!(fleet.shard_loads().iter().map(|(_, n)| n).sum::<usize>(), 1);
        assert_eq!(fleet.remove(&"a".to_string()), Some(hv));
        assert!(fleet.is_empty());
        // Churn with no entries records no remap fraction…
        let id = fleet.add_shard();
        assert!(fleet.last_remap_fraction().is_none());
        assert!(fleet.remove_shard(id));
        // …and with entries it stays a proper fraction.
        for i in 0..50 {
            fleet.insert(format!("k{i}"), BinaryHypervector::random(1_024, &mut rng));
        }
        let id = fleet.add_shard();
        let fraction = fleet.last_remap_fraction().expect("entries were moved");
        assert!((0.0..1.0).contains(&fraction), "fraction {fraction}");
        assert!(fleet.remove_shard(id));
        assert!(fleet.last_remap_fraction().is_some());
    }

    #[test]
    fn regression_fleet_is_bit_identical_to_the_unsharded_model() {
        use crate::{Enc, Pipeline};

        let mut model = Pipeline::builder(2_048)
            .seed(13)
            .regression(0.0, 1.0, 32)
            .encoder(Enc::scalar(0.0, 1.0))
            .build()
            .unwrap();
        let xs: Vec<f64> = (0..80).map(|i| i as f64 / 79.0).collect();
        model.fit_value_batch(&xs, &xs).unwrap();
        let queries = model.encode_batch(&xs);
        let expected = model.predict_values_encoded(&queries);

        for shards in [1usize, 2, 5] {
            let fleet: ShardedModel<String> = ShardedModel::from_model(&model, shards, 3).unwrap();
            assert!(matches!(fleet.head(), Head::Values(_)));
            assert_eq!(fleet.head().task_name(), "regression");
            let keys: Vec<String> = (0..xs.len()).map(|i| format!("s{i}")).collect();
            assert_eq!(
                fleet.predict_values(&keys, &queries).unwrap(),
                expected,
                "{shards} shards"
            );
            // Single-query form agrees row by row.
            assert_eq!(
                fleet.predict_value(&queries.row(7).to_hypervector()),
                expected[7]
            );
            // The classification surface reports the task mismatch.
            assert!(matches!(
                fleet.predict_batch(&keys, &queries),
                Err(HdcError::TaskMismatch {
                    expected: "classification",
                    found: "regression"
                })
            ));
        }
        // And the other direction: a classification fleet refuses values.
        let (fleet, mut rng) = fleet(2);
        let batch =
            HypervectorBatch::from_vectors(&[BinaryHypervector::random(1_024, &mut rng)]).unwrap();
        assert!(matches!(
            fleet.predict_values(&["a"], &batch),
            Err(HdcError::TaskMismatch {
                expected: "regression",
                found: "classification"
            })
        ));
    }

    #[test]
    fn random_key_types_route_consistently() {
        let (fleet, mut rng) = fleet(5);
        for _ in 0..20 {
            let key: u64 = rng.random();
            assert_eq!(fleet.shard_of(&key), fleet.shard_of(&key));
        }
    }
}
